// Failpoints: a process-wide registry of named fault-injection sites.
//
// Durable-state code is instrumented with EVE_FAILPOINT("site.name"); in
// production the hit is a cheap counter bump. Tests (or the EVE_FAILPOINTS
// environment variable) arm a site to fire on its Nth upcoming hit with one
// of two actions:
//   kError — the instrumented function returns an injected Status error,
//            exercising the error-propagation path;
//   kCrash — a SimulatedCrash exception unwinds out of the operation,
//            modelling a process crash at exactly that point. The in-memory
//            system is torn; recovery must rebuild it from the checkpoint
//            and journal (see eve/journal.h).
//
// Every site name is declared once in the fp:: catalog below so tests can
// enumerate them (Failpoints::KnownSites) and arm each in turn.

#ifndef EVE_COMMON_FAILPOINT_H_
#define EVE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace eve {

// The catalog of instrumented sites. Keep in sync with KnownSites().
namespace fp {
inline constexpr char kApplyChangeBeforeJournal[] =
    "eve.apply_change.before_journal";
inline constexpr char kApplyChangeAfterJournal[] =
    "eve.apply_change.after_journal";
inline constexpr char kApplyChangeAfterMkbEvolve[] =
    "eve.apply_change.after_mkb_evolve";
inline constexpr char kApplyChangeBeforeCommit[] =
    "eve.apply_change.before_commit";
inline constexpr char kApplyChangesMidBatch[] = "eve.apply_changes.mid_batch";
inline constexpr char kExtendMkbAfterJournal[] = "eve.extend_mkb.after_journal";
inline constexpr char kRegisterViewAfterJournal[] =
    "eve.register_view.after_journal";
inline constexpr char kRetractConstraintAfterJournal[] =
    "eve.retract_constraint.after_journal";
inline constexpr char kSourceLeavesBetweenChanges[] =
    "eve.source_leaves.between_changes";
inline constexpr char kSourceLeavesBeforeCommit[] =
    "eve.source_leaves.before_commit";
inline constexpr char kSetMembershipAfterJournal[] =
    "eve.set_membership.after_journal";
// Cancellation safe points (see common/cancellation.h). view_start fires
// at the top of each per-view synchronization task (worker thread when
// sync parallelism > 1; a crash is parked and rethrown on the caller in
// slot order); deadline_expired fires on the caller thread, in view-name
// order, for each view whose search was stopped by its DeadlineToken, so
// an armed error converts a partial result into an explicit failure. The admission sites bracket the
// bounded sync queue (eve/eve_system.h EnqueueChange / DrainSyncQueue).
inline constexpr char kSyncViewStart[] = "eve.sync.view_start";
inline constexpr char kSyncDeadlineExpired[] = "eve.sync.deadline_expired";
inline constexpr char kAdmissionEnqueue[] = "eve.admission.enqueue";
inline constexpr char kAdmissionDrain[] = "eve.admission.drain";
// Federation probe transport (federation/transport.h). The `probe` site is
// the generic send path (error = lost probe, crash = monitor death); the
// fault-kind sites convert the Nth probe into that fault when armed with
// the error action.
inline constexpr char kFederationProbeSend[] = "federation.transport.probe";
inline constexpr char kFederationProbeTimeout[] =
    "federation.transport.timeout";
inline constexpr char kFederationProbeSlow[] = "federation.transport.slow";
inline constexpr char kFederationProbeCorrupt[] =
    "federation.transport.corrupt";
inline constexpr char kFederationProbeFlap[] = "federation.transport.flap";
inline constexpr char kJournalAppendBeforeWrite[] =
    "journal.append.before_write";
inline constexpr char kJournalAppendPartialWrite[] =
    "journal.append.partial_write";
inline constexpr char kJournalAppendBeforeFsync[] =
    "journal.append.before_fsync";
inline constexpr char kAtomicWriteAfterTemp[] = "file.atomic_write.after_temp";
inline constexpr char kAtomicWriteBeforeRename[] =
    "file.atomic_write.before_rename";
inline constexpr char kCheckpointLoadValidate[] = "checkpoint.load.validate";
inline constexpr char kViewPoolLoadValidate[] = "viewpool.load.validate";
inline constexpr char kMisdAppendParse[] = "mkb.append_misd.parse";
// Versioned-MKB sites (eve/eve_system.h PrepareChange / CommitPrepared /
// RollbackToVersion; mkb/version_store.h Scrub). prepare_change.complete
// fires at the end of the prepare phase, before anything is journaled —
// an abort there proves dry-runs have zero side effects. before_swap and
// rollback.after_journal sit between the journal append and the in-memory
// commit: an armed error there COMPLETES the commit and then surfaces the
// injected error (the response-lost model), so live memory and journal
// replay stay in agreement; an armed crash models death mid-commit and
// recovery replays to the post state.
inline constexpr char kPrepareChangeComplete[] = "eve.prepare_change.complete";
inline constexpr char kVersionBeforeSwap[] = "eve.version.before_swap";
inline constexpr char kVersionAfterSwap[] = "eve.version.after_swap";
inline constexpr char kRollbackBeforeJournal[] = "eve.rollback.before_journal";
inline constexpr char kRollbackAfterJournal[] = "eve.rollback.after_journal";
inline constexpr char kRollbackAfterRestore[] = "eve.rollback.after_restore";
inline constexpr char kVersionScrub[] = "mkb.version_store.scrub";
// Sharded-system sites (eve/sharded_system.h). commit_shard fires before
// EACH shard's commit in the cross-shard fan-out — a crash there leaves the
// change journaled on a prefix of the shard journals, and recovery's
// cross-shard barrier must truncate every shard back to the pre-change
// state. publish fires after every shard committed, before the epoch
// pointer swap: a crash there recovers to the post state (all journals
// carry the change). The checkpoint sites bracket the two crash windows of
// the multi-file checkpoint protocol: manifest fires before the manifest
// rename (old generation must win), reset fires between the per-shard
// journal resets (stale journals must be superseded by the new manifest
// generation's epoch markers).
inline constexpr char kShardedCommitShard[] = "eve.sharded.commit_shard";
inline constexpr char kShardedPublish[] = "eve.sharded.publish";
inline constexpr char kShardedCheckpointManifest[] =
    "eve.sharded.checkpoint.manifest";
inline constexpr char kShardedJournalReset[] = "eve.sharded.checkpoint.reset";
// Network front-end sites (net/server.h). accept fires per accepted
// connection (error = the connection is refused and closed, the server
// keeps serving); session_start fires after the session object is created
// but before it is registered (error = immediate eviction); frame_read /
// frame_write bracket every socket read/flush on a live session (error =
// that session is evicted as if its connection died); drain fires once
// when a graceful drain begins; shutdown fires once on server stop. A
// crash-armed site models the whole server process dying at that point:
// the listener and every session drop abruptly, and durable state must
// RECOVER from the journal. Driven by net_server_test.
inline constexpr char kNetAccept[] = "net.accept";
inline constexpr char kNetSessionStart[] = "net.session_start";
inline constexpr char kNetFrameRead[] = "net.frame_read";
inline constexpr char kNetFrameWrite[] = "net.frame_write";
inline constexpr char kNetDrain[] = "net.drain";
inline constexpr char kNetShutdown[] = "net.shutdown";
// Replication sites (net/replication.h). hello fires on the primary per
// replica subscription (error = the subscription is refused; the replica
// backs off and retries). snapshot.render fires before the primary renders
// a bootstrap checkpoint (error = that hello fails). ship.record fires per
// (record, peer) send on the primary (error = that ONE peer's stream is
// broken with a goodbye — the replica reconnects and re-syncs; later
// records are never delivered out of order). apply.record fires on the
// replica before each shipped record is journaled+applied (error = the
// replica abandons the stream and re-syncs from a fresh hello; crash =
// replica process death mid-apply, recovery resumes from its local WAL).
// ack.send fires before each replica ack (error = the ack is dropped;
// semi-sync primaries stall until the next ack). promote fires during
// candidate promotion, after the new epoch is chosen but before the node
// starts accepting writes (crash = death mid-failover; the cluster elects
// again without it).
inline constexpr char kReplHello[] = "repl.hello";
inline constexpr char kReplSnapshotRender[] = "repl.snapshot.render";
inline constexpr char kReplShipRecord[] = "repl.ship.record";
inline constexpr char kReplApplyRecord[] = "repl.apply.record";
inline constexpr char kReplAckSend[] = "repl.ack.send";
inline constexpr char kReplPromote[] = "repl.promote";
}  // namespace fp

// Thrown by an armed kCrash failpoint. The codebase is otherwise
// exception-free, so the unwind reaches the test's catch block directly —
// everything between the site and the catch is abandoned, exactly like a
// process that died there (minus the durable files already written).
class SimulatedCrash {
 public:
  explicit SimulatedCrash(std::string site) : site_(std::move(site)) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

enum class FailpointAction { kError, kCrash };

class Failpoints {
 public:
  static Failpoints& Instance();

  // Arms `site` to fire on the `on_hit`-th upcoming hit (1-based, counted
  // from now), then auto-disarm. Re-arming replaces the previous arming.
  void Arm(const std::string& site, FailpointAction action, int on_hit = 1);
  void Disarm(const std::string& site);
  // Disarms every site and resets all hit counters.
  void Reset();

  // Called by EVE_FAILPOINT at instrumented sites. Returns an injected
  // error when an armed kError site fires; throws SimulatedCrash when an
  // armed kCrash site fires; otherwise returns OK.
  Status Hit(const char* site);

  // Total times `site` was hit since the last Reset().
  uint64_t HitCount(const std::string& site) const;

  // Every site named in the fp:: catalog.
  static const std::vector<std::string>& KnownSites();

  // Parses an arming spec: "site=error,other.site=crash@3" (fire the
  // other.site crash on its 3rd hit). Used for the EVE_FAILPOINTS env var.
  Status ArmFromSpec(std::string_view spec);

 private:
  struct Arming {
    FailpointAction action = FailpointAction::kError;
    // Fires when `remaining` reaches zero on a hit.
    int remaining = 1;
  };

  Failpoints();

  mutable std::mutex mu_;
  std::map<std::string, Arming> armed_;
  std::map<std::string, uint64_t> hits_;
};

}  // namespace eve

// Instruments a fault-injection site inside a function returning Status or
// Result<T>. Disarmed cost: one registry lookup.
#define EVE_FAILPOINT(site) \
  EVE_RETURN_IF_ERROR(::eve::Failpoints::Instance().Hit(site))

#endif  // EVE_COMMON_FAILPOINT_H_
