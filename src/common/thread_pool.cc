#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <iostream>
#include <memory>
#include <utility>

#include "common/failpoint.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace eve {

namespace {

// Applies "<prefix>-<index>" as the calling thread's kernel name. Linux
// caps thread names at 15 characters + NUL; the index digits are the
// discriminating part, so the prefix is what gets truncated.
void NameCurrentThread(const std::string& prefix, size_t index) {
#if defined(__linux__)
  const std::string digits = std::to_string(index);
  constexpr size_t kMax = 15;
  std::string name;
  if (prefix.size() + 1 + digits.size() <= kMax) {
    name = prefix + "-" + digits;
  } else if (digits.size() + 1 < kMax) {
    name = prefix.substr(0, kMax - digits.size() - 1) + "-" + digits;
  } else {
    name = digits.substr(0, kMax);
  }
  pthread_setname_np(pthread_self(), name.c_str());
#else
  (void)prefix;
  (void)index;
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, std::string name_prefix) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i, name_prefix] {
      NameCurrentThread(name_prefix, i);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(/*drain=*/false); }

void ThreadPool::Submit(std::function<void()> task, std::string label) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Late submission against a stopping pool: never run, count it as
      // discarded rather than dropping it silently.
      ++discarded_;
      return;
    }
    tasks_.push(Task{std::move(task), std::move(label)});
  }
  cv_.notify_one();
}

size_t ThreadPool::Shutdown(bool drain) {
  size_t discarded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      drain_on_shutdown_ = drain;
    }
    if (!drain_on_shutdown_) {
      discarded = tasks_.size();
      discarded_ += discarded;
      while (!tasks_.empty()) tasks_.pop();
    }
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  return discarded;
}

size_t ThreadPool::discarded_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

void ThreadPool::RunTask(Task task) {
  try {
    task.fn();
  } catch (const SimulatedCrash& crash) {
    std::cerr << "ThreadPool task "
              << (task.label.empty() ? "<unlabeled>" : task.label)
              << " escaped a SimulatedCrash at failpoint " << crash.site()
              << "; tasks must park injected crashes, not rethrow them"
              << std::endl;
    throw;  // escapes the worker thread: std::terminate
  } catch (const std::exception& e) {
    std::cerr << "ThreadPool task "
              << (task.label.empty() ? "<unlabeled>" : task.label)
              << " terminated with uncaught exception: " << e.what()
              << std::endl;
    throw;
  } catch (...) {
    std::cerr << "ThreadPool task "
              << (task.label.empty() ? "<unlabeled>" : task.label)
              << " terminated with an uncaught non-std exception"
              << std::endl;
    throw;
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      // On drain shutdown the queue empties by execution; on discard
      // shutdown it was cleared under the lock, so both modes exit here.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    RunTask(std::move(task));
  }
}

void ParallelFor(ThreadPool* pool, size_t n, std::function<void(size_t)> fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call state: workers may still be draining (and finding the range
  // exhausted) after the caller returns, so everything they touch —
  // including the callable — lives behind a shared_ptr.
  struct State {
    State(size_t total, std::function<void(size_t)> fn)
        : total(total), fn(std::move(fn)) {}
    const size_t total;
    const std::function<void(size_t)> fn;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>(n, std::move(fn));

  const auto drain = [](const std::shared_ptr<State>& s) {
    while (true) {
      const size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) return;
      s->fn(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->total) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state, drain] { drain(state); }, "parallel_for");
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

}  // namespace eve
