#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace eve {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n, std::function<void(size_t)> fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call state: workers may still be draining (and finding the range
  // exhausted) after the caller returns, so everything they touch —
  // including the callable — lives behind a shared_ptr.
  struct State {
    State(size_t total, std::function<void(size_t)> fn)
        : total(total), fn(std::move(fn)) {}
    const size_t total;
    const std::function<void(size_t)> fn;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>(n, std::move(fn));

  const auto drain = [](const std::shared_ptr<State>& s) {
    while (true) {
      const size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) return;
      s->fn(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->total) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

}  // namespace eve
