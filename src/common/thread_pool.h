// A fixed-size worker pool plus a caller-participating ParallelFor. Built
// for the EVE synchronization fan-out: one capability change yields N
// independent per-view synchronizations that share read-only state (the
// SyncContext) and write disjoint result slots.

#ifndef EVE_COMMON_THREAD_POOL_H_
#define EVE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eve {

// Fixed set of worker threads draining a FIFO task queue. Tasks must not
// throw. Destruction drains nothing: queued tasks that have not started
// are discarded, so callers that need completion must track it themselves
// (ParallelFor below does).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1), distributing indices over the pool's workers
// with the calling thread participating, and returns once every call has
// finished. Safe for concurrent callers on one pool: each invocation owns
// its completion state. With a null pool (or n <= 1) it degenerates to a
// plain sequential loop on the calling thread — callers need no special
// single-threaded path. `fn` must not throw.
void ParallelFor(ThreadPool* pool, size_t n,
                 std::function<void(size_t)> fn);

}  // namespace eve

#endif  // EVE_COMMON_THREAD_POOL_H_
