// A fixed-size worker pool plus a caller-participating ParallelFor. Built
// for the EVE synchronization fan-out: one capability change yields N
// independent per-view synchronizations that share read-only state (the
// SyncContext) and write disjoint result slots.

#ifndef EVE_COMMON_THREAD_POOL_H_
#define EVE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace eve {

// Fixed set of worker threads draining a FIFO task queue. Tasks must not
// throw: an exception escaping a task is a bug, and the pool reports the
// task's provenance label on stderr before the process terminates, so the
// crash is attributable instead of an anonymous std::terminate.
//
// Shutdown semantics are explicit: Shutdown(/*drain=*/true) finishes every
// queued task first; Shutdown(false) discards tasks that have not started
// (the running ones always complete) and counts them. Destruction is
// Shutdown(false) — callers that need completion must track it themselves
// (ParallelFor below does).
class ThreadPool {
 public:
  // Workers are named "<name_prefix>-<i>" via pthread_setname_np (e.g.
  // "eve-wrk-3"), so TSan reports, perf profiles and gdb thread listings
  // attribute a stack to its pool instead of an anonymous "eve_cvs"
  // thread. Kernel thread names cap at 15 characters; longer prefixes are
  // truncated from the left of the index, never dropped entirely.
  explicit ThreadPool(size_t num_threads,
                      std::string name_prefix = "eve-wrk");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // `label` names the task in the escaped-exception report; keep it short
  // and stable (e.g. the submitting subsystem).
  void Submit(std::function<void()> task, std::string label = std::string());

  // Stops the pool and joins every worker. With drain=true the queue is
  // emptied by execution; with drain=false unstarted tasks are discarded.
  // Returns the number of tasks discarded by THIS call; idempotent (a
  // second call returns 0 and the first call's mode wins).
  size_t Shutdown(bool drain);

  // Total tasks discarded without running, over the pool's lifetime.
  size_t discarded_tasks() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::string label;
  };

  void WorkerLoop();
  // Runs `task`, reporting its label before rethrowing any escaping
  // exception (which then terminates the process).
  static void RunTask(Task task);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Task> tasks_;
  bool shutdown_ = false;
  bool drain_on_shutdown_ = false;
  size_t discarded_ = 0;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1), distributing indices over the pool's workers
// with the calling thread participating, and returns once every call has
// finished. Safe for concurrent callers on one pool: each invocation owns
// its completion state. With a null pool (or n <= 1) it degenerates to a
// plain sequential loop on the calling thread — callers need no special
// single-threaded path. `fn` must not throw.
void ParallelFor(ThreadPool* pool, size_t n,
                 std::function<void(size_t)> fn);

}  // namespace eve

#endif  // EVE_COMMON_THREAD_POOL_H_
