#include "common/str_util.h"

#include <cctype>

namespace eve {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace eve
