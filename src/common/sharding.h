// Stable view-name sharding: the hash is part of the durable format (a
// view's shard owns its journal records and checkpoint section), so it must
// never change across platforms, compilers or releases. FNV-1a over the raw
// bytes gives that stability; std::hash does not.

#ifndef EVE_COMMON_SHARDING_H_
#define EVE_COMMON_SHARDING_H_

#include <cstdint>
#include <string_view>

namespace eve {

// 64-bit FNV-1a. Deterministic across platforms; never reorder or reseed —
// per-shard journals and checkpoints address views by this hash.
constexpr uint64_t StableHash64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ull;  // FNV prime
  }
  return hash;
}

// The shard owning `view_name` among `shard_count` shards.
constexpr size_t ShardOf(std::string_view view_name, size_t shard_count) {
  return shard_count <= 1
             ? 0
             : static_cast<size_t>(StableHash64(view_name) % shard_count);
}

}  // namespace eve

#endif  // EVE_COMMON_SHARDING_H_
