// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Used to frame
// durable records (journal entries) so torn or corrupted bytes are detected
// on replay instead of being parsed as garbage.

#ifndef EVE_COMMON_CRC32_H_
#define EVE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace eve {

// One-shot CRC of `size` bytes at `data`. `seed` allows incremental
// computation: Crc32(b, Crc32(a)) == Crc32(a concat b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace eve

#endif  // EVE_COMMON_CRC32_H_
