// Small string helpers shared across modules.

#ifndef EVE_COMMON_STR_UTIL_H_
#define EVE_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace eve {

// Joins `parts` with `sep` ("a", "b" -> "a<sep>b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

// ASCII lower-casing (identifiers and keywords only).
std::string ToLower(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

}  // namespace eve

#endif  // EVE_COMMON_STR_UTIL_H_
