#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace eve {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view content, const std::string& path) {
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Best-effort fsync of the directory containing `path`, making the rename
// itself durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("cannot open", path);
  }
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("cannot read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    content.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return content;
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", temp);
  Status status = WriteAll(fd, content, temp);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("cannot fsync", temp);
  if (::close(fd) != 0 && status.ok()) status = Errno("cannot close", temp);
  if (!status.ok()) {
    ::unlink(temp.c_str());
    return status;
  }
  // A crash here leaves the fully-written temp beside the intact target.
  EVE_FAILPOINT(fp::kAtomicWriteAfterTemp);
  EVE_FAILPOINT(fp::kAtomicWriteBeforeRename);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const Status rename_status = Errno("cannot rename over", path);
    ::unlink(temp.c_str());
    return rename_status;
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace eve
