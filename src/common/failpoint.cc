#include "common/failpoint.h"

#include <cstdlib>
#include <iostream>

#include "common/str_util.h"

namespace eve {

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "EVE_FAILPOINTS ignored: " << status << std::endl;
    }
  }
}

void Failpoints::Arm(const std::string& site, FailpointAction action,
                     int on_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[site] = Arming{action, on_hit < 1 ? 1 : on_hit};
}

void Failpoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(site);
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
}

Status Failpoints::Hit(const char* site) {
  FailpointAction fired_action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[site];
    auto it = armed_.find(site);
    if (it == armed_.end()) return Status::OK();
    if (--it->second.remaining > 0) return Status::OK();
    fired_action = it->second.action;
    armed_.erase(it);  // one-shot: auto-disarm once fired
  }
  if (fired_action == FailpointAction::kCrash) throw SimulatedCrash(site);
  return Status::Internal(std::string("failpoint fired: ") + site);
}

uint64_t Failpoints::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

const std::vector<std::string>& Failpoints::KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      fp::kApplyChangeBeforeJournal,
      fp::kApplyChangeAfterJournal,
      fp::kApplyChangeAfterMkbEvolve,
      fp::kApplyChangeBeforeCommit,
      fp::kApplyChangesMidBatch,
      fp::kExtendMkbAfterJournal,
      fp::kRegisterViewAfterJournal,
      fp::kRetractConstraintAfterJournal,
      fp::kSourceLeavesBetweenChanges,
      fp::kSourceLeavesBeforeCommit,
      fp::kSetMembershipAfterJournal,
      fp::kSyncViewStart,
      fp::kSyncDeadlineExpired,
      fp::kAdmissionEnqueue,
      fp::kAdmissionDrain,
      fp::kFederationProbeSend,
      fp::kFederationProbeTimeout,
      fp::kFederationProbeSlow,
      fp::kFederationProbeCorrupt,
      fp::kFederationProbeFlap,
      fp::kJournalAppendBeforeWrite,
      fp::kJournalAppendPartialWrite,
      fp::kJournalAppendBeforeFsync,
      fp::kAtomicWriteAfterTemp,
      fp::kAtomicWriteBeforeRename,
      fp::kCheckpointLoadValidate,
      fp::kViewPoolLoadValidate,
      fp::kMisdAppendParse,
      fp::kPrepareChangeComplete,
      fp::kVersionBeforeSwap,
      fp::kVersionAfterSwap,
      fp::kRollbackBeforeJournal,
      fp::kRollbackAfterJournal,
      fp::kRollbackAfterRestore,
      fp::kVersionScrub,
      fp::kShardedCommitShard,
      fp::kShardedPublish,
      fp::kShardedCheckpointManifest,
      fp::kShardedJournalReset,
      fp::kNetAccept,
      fp::kNetSessionStart,
      fp::kNetFrameRead,
      fp::kNetFrameWrite,
      fp::kNetDrain,
      fp::kNetShutdown,
      fp::kReplHello,
      fp::kReplSnapshotRender,
      fp::kReplShipRecord,
      fp::kReplApplyRecord,
      fp::kReplAckSend,
      fp::kReplPromote,
  };
  return *sites;
}

Status Failpoints::ArmFromSpec(std::string_view spec) {
  for (const std::string& entry : Split(spec, ',')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec entry missing '=': " +
                                     std::string(trimmed));
    }
    const std::string site(Trim(trimmed.substr(0, eq)));
    std::string_view action_spec = Trim(trimmed.substr(eq + 1));
    int on_hit = 1;
    const size_t at = action_spec.find('@');
    if (at != std::string_view::npos) {
      const std::string count(Trim(action_spec.substr(at + 1)));
      char* end = nullptr;
      on_hit = static_cast<int>(std::strtol(count.c_str(), &end, 10));
      if (end == count.c_str() || *end != '\0' || on_hit < 1) {
        return Status::InvalidArgument("bad failpoint hit count: " + count);
      }
      action_spec = Trim(action_spec.substr(0, at));
    }
    FailpointAction action;
    if (EqualsIgnoreCase(action_spec, "error")) {
      action = FailpointAction::kError;
    } else if (EqualsIgnoreCase(action_spec, "crash")) {
      action = FailpointAction::kCrash;
    } else {
      return Status::InvalidArgument("bad failpoint action: " +
                                     std::string(action_spec));
    }
    Arm(site, action, on_hit);
  }
  return Status::OK();
}

}  // namespace eve
