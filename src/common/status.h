// Status: lightweight error propagation without exceptions, following the
// idiom used by Arrow and RocksDB. Functions that can fail return a Status
// (or a Result<T>, see result.h); callers chain them with the
// EVE_RETURN_IF_ERROR / EVE_ASSIGN_OR_RETURN macros.

#ifndef EVE_COMMON_STATUS_H_
#define EVE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace eve {

// Broad machine-inspectable failure categories. The human-readable detail
// lives in the Status message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kUnsupported,
  kFailedPrecondition,
  kViewDisabled,  // view synchronization failed; the view must be disabled
  kResourceExhausted,  // admission control shed the request; retry later
  kInternal,
};

// Returns a stable lower-case name for `code` (e.g. "invalid_argument").
std::string_view StatusCodeToString(StatusCode code);

// Value type carrying a StatusCode and, for non-OK codes, a message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ViewDisabled(std::string msg) {
    return Status(StatusCode::kViewDisabled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace eve

// Propagates a non-OK Status to the caller.
#define EVE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::eve::Status _eve_status = (expr);          \
    if (!_eve_status.ok()) return _eve_status;   \
  } while (false)

#endif  // EVE_COMMON_STATUS_H_
