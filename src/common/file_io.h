// Crash-safe file helpers. AtomicWriteFile is the only sanctioned way to
// overwrite durable state files (MISD dumps, view pools, checkpoints): the
// content is written to a sibling temp file, fsynced, and renamed over the
// target, so a crash at any point leaves either the old file or the new
// one — never a torn mixture.

#ifndef EVE_COMMON_FILE_IO_H_
#define EVE_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace eve {

// Reads the whole file into a string. NotFound if the file is absent.
Result<std::string> ReadFileToString(const std::string& path);

// Durably replaces `path` with `content` (write temp + fsync + rename +
// fsync directory). Failpoints: file.atomic_write.after_temp,
// file.atomic_write.before_rename.
Status AtomicWriteFile(const std::string& path, std::string_view content);

}  // namespace eve

#endif  // EVE_COMMON_FILE_IO_H_
