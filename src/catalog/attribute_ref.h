// AttributeRef: a relation-qualified attribute name ("Customer.Name").
// Relation names are unique across the federation (the paper addresses
// relations as IS.R but refers to them by relation name everywhere else;
// we keep the IS in the relation description).

#ifndef EVE_CATALOG_ATTRIBUTE_REF_H_
#define EVE_CATALOG_ATTRIBUTE_REF_H_

#include <functional>
#include <string>

namespace eve {

struct AttributeRef {
  std::string relation;
  std::string attribute;

  std::string ToString() const { return relation + "." + attribute; }

  bool operator==(const AttributeRef&) const = default;
  auto operator<=>(const AttributeRef&) const = default;
};

struct AttributeRefHash {
  size_t operator()(const AttributeRef& ref) const {
    const size_t h1 = std::hash<std::string>{}(ref.relation);
    const size_t h2 = std::hash<std::string>{}(ref.attribute);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace eve

#endif  // EVE_CATALOG_ATTRIBUTE_REF_H_
