#include "catalog/catalog.h"

#include <set>
#include <sstream>

namespace eve {

namespace {

// Enforces the paper's convention that attributes exported under the same
// name have the same type, across all relations in the catalog.
Status CheckSameNameSameType(
    const std::map<std::string, RelationDef>& relations,
    const std::string& relation, const AttributeDef& attr) {
  for (const auto& [name, def] : relations) {
    if (name == relation) continue;
    if (auto idx = def.schema.IndexOf(attr.name)) {
      const DataType existing = def.schema.attribute(*idx).type;
      if (existing != attr.type) {
        return Status::TypeError(
            "attribute '" + attr.name + "' already exported by relation '" +
            name + "' with type " + std::string(DataTypeToString(existing)) +
            ", conflicting with type " +
            std::string(DataTypeToString(attr.type)));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status Catalog::AddRelation(RelationDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (def.source.empty()) {
    return Status::InvalidArgument("information source must not be empty");
  }
  if (relations_.count(def.name) > 0) {
    return Status::AlreadyExists("relation already exists: " + def.name);
  }
  for (const AttributeDef& attr : def.schema.attributes()) {
    EVE_RETURN_IF_ERROR(CheckSameNameSameType(relations_, def.name, attr));
  }
  for (const std::string& ordered_attr : def.ordered_by) {
    if (!def.schema.Contains(ordered_attr)) {
      return Status::InvalidArgument(
          "order-integrity constraint references unknown attribute: " +
          ordered_attr);
    }
  }
  relations_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status Catalog::DropRelation(const std::string& relation) {
  if (relations_.erase(relation) == 0) {
    return Status::NotFound("relation not found: " + relation);
  }
  return Status::OK();
}

Status Catalog::RenameRelation(const std::string& relation,
                               const std::string& new_name) {
  if (new_name.empty()) {
    return Status::InvalidArgument("new relation name must not be empty");
  }
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + relation);
  }
  if (relation == new_name) return Status::OK();
  if (relations_.count(new_name) > 0) {
    return Status::AlreadyExists("relation already exists: " + new_name);
  }
  RelationDef def = std::move(it->second);
  relations_.erase(it);
  def.name = new_name;
  relations_.emplace(new_name, std::move(def));
  return Status::OK();
}

Status Catalog::AddAttribute(const std::string& relation, AttributeDef attr) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + relation);
  }
  if (it->second.schema.Contains(attr.name)) {
    return Status::AlreadyExists("attribute already exists: " + relation +
                                 "." + attr.name);
  }
  EVE_RETURN_IF_ERROR(CheckSameNameSameType(relations_, relation, attr));
  std::vector<AttributeDef> attrs = it->second.schema.attributes();
  attrs.push_back(std::move(attr));
  EVE_ASSIGN_OR_RETURN(it->second.schema, Schema::Create(std::move(attrs)));
  return Status::OK();
}

Status Catalog::DropAttribute(const std::string& relation,
                              const std::string& attribute) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + relation);
  }
  std::vector<AttributeDef> attrs = it->second.schema.attributes();
  auto pos = it->second.schema.IndexOf(attribute);
  if (!pos) {
    return Status::NotFound("attribute not found: " + relation + "." +
                            attribute);
  }
  attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*pos));
  EVE_ASSIGN_OR_RETURN(it->second.schema, Schema::Create(std::move(attrs)));
  std::erase(it->second.ordered_by, attribute);
  return Status::OK();
}

Status Catalog::RenameAttribute(const std::string& relation,
                                const std::string& attribute,
                                const std::string& new_name) {
  if (new_name.empty()) {
    return Status::InvalidArgument("new attribute name must not be empty");
  }
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + relation);
  }
  auto pos = it->second.schema.IndexOf(attribute);
  if (!pos) {
    return Status::NotFound("attribute not found: " + relation + "." +
                            attribute);
  }
  if (attribute == new_name) return Status::OK();
  if (it->second.schema.Contains(new_name)) {
    return Status::AlreadyExists("attribute already exists: " + relation +
                                 "." + new_name);
  }
  std::vector<AttributeDef> attrs = it->second.schema.attributes();
  EVE_RETURN_IF_ERROR(
      CheckSameNameSameType(relations_, relation,
                            AttributeDef{new_name, attrs[*pos].type}));
  attrs[*pos].name = new_name;
  EVE_ASSIGN_OR_RETURN(it->second.schema, Schema::Create(std::move(attrs)));
  for (std::string& ordered_attr : it->second.ordered_by) {
    if (ordered_attr == attribute) ordered_attr = new_name;
  }
  return Status::OK();
}

bool Catalog::HasRelation(const std::string& relation) const {
  return relations_.count(relation) > 0;
}

bool Catalog::HasAttribute(const AttributeRef& ref) const {
  auto it = relations_.find(ref.relation);
  return it != relations_.end() && it->second.schema.Contains(ref.attribute);
}

Result<const RelationDef*> Catalog::GetRelation(
    const std::string& relation) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + relation);
  }
  return &it->second;
}

Result<DataType> Catalog::TypeOf(const AttributeRef& ref) const {
  EVE_ASSIGN_OR_RETURN(const RelationDef* def, GetRelation(ref.relation));
  auto idx = def->schema.IndexOf(ref.attribute);
  if (!idx) {
    return Status::NotFound("attribute not found: " + ref.ToString());
  }
  return def->schema.attribute(*idx).type;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, def] : relations_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::RelationsOfSource(
    const std::string& source) const {
  std::vector<std::string> names;
  for (const auto& [name, def] : relations_) {
    if (def.source == source) names.push_back(name);
  }
  return names;
}

std::vector<std::string> Catalog::SourceNames() const {
  std::set<std::string> sources;
  for (const auto& [name, def] : relations_) sources.insert(def.source);
  return std::vector<std::string>(sources.begin(), sources.end());
}

std::string Catalog::ToString() const {
  std::ostringstream os;
  for (const auto& [name, def] : relations_) {
    os << def.QualifiedName() << def.schema.ToString() << "\n";
  }
  return os.str();
}

}  // namespace eve
