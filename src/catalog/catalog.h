// Catalog: structural descriptions of the federation — information sources
// and the relations they export (the data-structure part of MISD, Sec. 2).
// Semantic constraints (join, function-of, PC, ...) live in mkb/.

#ifndef EVE_CATALOG_CATALOG_H_
#define EVE_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/attribute_ref.h"
#include "common/result.h"
#include "types/schema.h"

namespace eve {

// One exported relation IS.R(A1, ..., An). The schema doubles as the
// MISD type-integrity constraint TC_{R,Ai} (Fig. 1): attribute Ai has
// type Type_i.
struct RelationDef {
  std::string source;    // owning information source, e.g. "IS1"
  std::string name;      // relation name, unique across the federation
  Schema schema;
  // MISD order-integrity constraint OC_R: the attributes (by name) whose
  // ordering the source guarantees; empty when unordered.
  std::vector<std::string> ordered_by;

  std::string QualifiedName() const { return source + "." + name; }
};

// Registry of information sources and relation definitions. Relation names
// are unique across sources; attribute names sharing a name across
// relations are assumed to share a type (paper, Sec. 2).
class Catalog {
 public:
  Catalog() = default;

  // Registers `def`; rejects duplicate relation names, empty names, and
  // attribute-name/type clashes with the same-name-same-type convention.
  Status AddRelation(RelationDef def);

  // Removes a relation; error if absent.
  Status DropRelation(const std::string& relation);

  // Renames a relation; error if absent or the new name clashes.
  Status RenameRelation(const std::string& relation,
                        const std::string& new_name);

  // Adds an attribute to an existing relation.
  Status AddAttribute(const std::string& relation, AttributeDef attr);

  // Drops an attribute from an existing relation.
  Status DropAttribute(const std::string& relation,
                       const std::string& attribute);

  // Renames an attribute within a relation.
  Status RenameAttribute(const std::string& relation,
                         const std::string& attribute,
                         const std::string& new_name);

  bool HasRelation(const std::string& relation) const;
  bool HasAttribute(const AttributeRef& ref) const;

  Result<const RelationDef*> GetRelation(const std::string& relation) const;

  // Type of `ref`; NotFound if the relation or attribute is unknown.
  Result<DataType> TypeOf(const AttributeRef& ref) const;

  // All relation names, sorted.
  std::vector<std::string> RelationNames() const;

  // All relations exported by `source`, sorted by name.
  std::vector<std::string> RelationsOfSource(const std::string& source) const;

  // All distinct owning sources, sorted.
  std::vector<std::string> SourceNames() const;

  size_t NumRelations() const { return relations_.size(); }

  // Multi-line dump for debugging and docs.
  std::string ToString() const;

 private:
  std::map<std::string, RelationDef> relations_;
};

}  // namespace eve

#endif  // EVE_CATALOG_CATALOG_H_
