// eved's serving loop: a multi-client TCP front end for the EVE console.
//
// Threading model
//   * ONE I/O thread owns every socket: it accepts connections, reads
//     bytes into per-session FrameDecoders, flushes per-session write
//     buffers, and is the only thread that ever closes an fd.
//   * A common/thread_pool of workers executes statements. A worker never
//     touches a socket: it renders the response frame into the session's
//     write buffer and nudges the I/O thread through an eventfd.
//   * Statement execution is guarded by one reader/writer lock on the
//     console: snapshot reads (Console::IsSnapshotRead) run concurrently
//     under the shared lock against the RCU-published ShardedSnapshot;
//     everything else serializes under the exclusive lock (the classic
//     single-writer console contract, now network-wide).
//
// Robustness
//   * Bounded buffers both ways: a session whose decoder accumulates more
//     than max_read_buffer_bytes (flooding) or whose write buffer exceeds
//     max_write_buffer_bytes (not reading its responses) is evicted.
//   * Slow-loris detection: a session holding a PARTIAL frame for longer
//     than idle_timeout_micros is evicted; an idle session BETWEEN frames
//     is fine and stays connected indefinitely.
//   * Overload: more than max_pending_per_session in-flight statements on
//     one session, or any new statement while draining, is answered
//     immediately with kResourceExhausted plus a retry-after hint — the
//     same explicit-shed contract as the admission queue.
//   * Corrupt bytes never kill a connection: the FrameDecoder resyncs to
//     the next frame boundary (counted in stats().resyncs).
//   * Graceful drain (BeginDrain, eved wires SIGTERM to it): stop
//     accepting, shed statements that have not started, finish and flush
//     the in-flight ones, say Goodbye, close. Stop() is the abrupt form.
//
// Fault injection: the net.* failpoint sites (common/failpoint.h) fire on
// accept / session start / every frame read / every frame write / drain /
// shutdown. In error mode the connection (or the one session) is refused
// or evicted and the server keeps serving; in crash mode the simulated
// process death surfaces through crashed_site() and eved exits 3, leaving
// durable state for RECOVER.

#ifndef EVE_NET_SERVER_H_
#define EVE_NET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/console.h"
#include "net/protocol.h"

namespace eve {
namespace net {

class ReplicationHub;

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port (see Server::port())
  size_t worker_threads = 4;
  // Sessions beyond this are refused at accept (0 = unlimited).
  size_t max_sessions = 0;
  // Statements in flight per session before the server sheds.
  size_t max_pending_per_session = 64;
  size_t max_read_buffer_bytes = 1u << 20;
  size_t max_write_buffer_bytes = 8u << 20;
  // Replication peers get a higher write ceiling: a bootstrap ships a full
  // checkpoint (chunked) through the session buffer, which can dwarf the
  // normal response cap. A replica that stops reading past THIS bound is
  // evicted and re-syncs from a fresh hello.
  size_t max_repl_write_buffer_bytes = 256u << 20;
  // A partial frame older than this is a slow-loris: evict.
  uint64_t idle_timeout_micros = 30'000'000;
  // Retry-after hint attached to kResourceExhausted responses.
  uint64_t retry_after_micros = 50'000;
  // BeginDrain force-closes whatever is still in flight after this.
  uint64_t drain_timeout_micros = 30'000'000;
};

// Monotonic counters since Start(); stats() returns a coherent-enough
// snapshot (each counter is individually atomic).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t refused = 0;            // at-accept rejections (capacity, fault)
  uint64_t sessions_now = 0;
  uint64_t evicted_slow_loris = 0;
  uint64_t evicted_overflow = 0;   // read or write buffer bound exceeded
  uint64_t evicted_io_error = 0;   // socket error or injected read/write fault
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t shed_overload = 0;      // kResourceExhausted answers
  uint64_t resyncs = 0;            // frame-boundary recoveries
  uint64_t crc_failures = 0;
  uint64_t goodbyes = 0;

  std::string ToString() const;
};

class Server {
 public:
  // The console must outlive the server. Statements from every session
  // execute against it under the server's reader/writer lock.
  Server(Console* console, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the I/O thread + worker pool.
  Status Start();

  // The bound port (the chosen one when options.port was 0).
  uint16_t port() const { return port_; }

  // Graceful drain: stop accepting, shed not-yet-started statements,
  // finish in-flight ones, flush, close. Returns immediately; use
  // WaitUntilStopped to block until the drain completes.
  void BeginDrain();

  // Abrupt stop: close the listener and every session now.
  void Stop();

  // Blocks until the server has fully stopped (drain finished, Stop()
  // called, or a crash-mode failpoint fired) and its threads are joined.
  void WaitUntilStopped();

  // Non-blocking probe: true once teardown has finished (or Start was
  // never called).
  bool stopped() const;

  ServerStats stats() const;

  // Non-empty when a crash-mode net.* failpoint fired: the site name.
  // The server is stopped; eved exits 3 so crash tests can RECOVER.
  std::string crashed_site() const;

  // Attaches the replication hub (net/replication.h) BEFORE Start(). With a
  // hub the server dispatches kRepl* frames to it, gates writes off
  // non-primaries (with a leader hint), enforces per-session READ STALENESS
  // bounds on snapshot reads, and holds acked commits for semi-sync.
  void SetReplicationHub(ReplicationHub* hub) { hub_ = hub; }

  // The console guard, exposed so the replication agent and the metrics
  // renderer can take it around console access from their own threads
  // (exclusive for snapshot install / role flips, shared for reads).
  std::shared_mutex& console_mutex() { return console_mu_; }

 private:
  struct Session;

  void IoLoop();
  // Body of IoLoop; a SimulatedCrash escaping it is caught by IoLoop.
  void IoLoopBody();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Session>& session);
  // Dispatches one kRepl* frame (I/O thread; hellos hop to a worker for
  // the exclusive console lock).
  void HandleReplFrame(const std::shared_ptr<Session>& session,
                       const Frame& frame);
  // True when the frame was answered inline (SHOW REPLICATION / READ
  // STALENESS — replication session controls that never hit the console).
  bool HandleReplIntercept(const std::shared_ptr<Session>& session,
                           const Request& request);
  void FlushSession(const std::shared_ptr<Session>& session);
  // Teardown-path flush (goodbyes): one synchronous attempt, no failpoints.
  void FlushBestEffort(Session* session);
  void EvictSession(uint64_t session_id, const char* reason);
  void SweepSlowLoris(uint64_t now_micros);
  // True once draining and every session has quiesced (nothing pending,
  // nothing buffered).
  bool DrainComplete();
  void CloseAllSessions();

  // Worker-side: execute one statement and queue its response.
  void ExecuteRequest(std::shared_ptr<Session> session, Request request);
  void QueueResponse(const std::shared_ptr<Session>& session,
                     const Response& response);
  // Enqueues pre-encoded frame bytes (replication stream, status replies).
  void QueueRawFrame(const std::shared_ptr<Session>& session,
                     std::string frame_bytes);
  void QueueGoodbye(const std::shared_ptr<Session>& session,
                    const std::string& reason);
  Response ShedResponse(uint64_t request_id, const std::string& why) const;
  std::string RenderServerStats() const;
  void RecordCrash(const std::string& site);
  void NudgeIo();

  Console* const console_;
  const ServerOptions options_;
  ReplicationHub* hub_ = nullptr;  // set before Start(); may stay null

  // Guards the console: shared for snapshot reads, exclusive otherwise.
  std::shared_mutex console_mu_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  mutable std::mutex mu_;                 // state below
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool draining_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  uint64_t drain_started_micros_ = 0;
  std::string crashed_site_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<uint64_t> write_ready_;     // session ids with queued output
  // Session ids double as epoll tags; 0 (listener) and 1 (wake eventfd)
  // are reserved.
  uint64_t next_session_id_ = 2;

  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_SERVER_H_
