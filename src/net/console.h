// The EVE statement console: parses and executes the ';'-terminated
// command language (LOAD/SAVE, CREATE VIEW, capability changes, admission,
// versioning, federation, journaling — see tools/evectl.cc for the full
// statement reference) against a ShardedEveSystem.
//
// Extracted from evectl so the SAME dispatch serves two front ends:
//  * evectl runs statements from a script file or stdin, writing to the
//    process's stdout/stderr;
//  * eved (net/server.h) runs statements for remote sessions, capturing
//    each statement's output into the response frame.
// Both produce byte-identical output for the same statement stream.
//
// Threading: Run() mutates system state and console-local state; callers
// with concurrent sessions must serialize it (the server holds an
// exclusive lock). RunSnapshotRead() serves the IsSnapshotRead() subset —
// reads answered entirely from the published RCU snapshot — without
// touching any console state, so any number may run concurrently with
// each other (the server holds a shared lock).

#ifndef EVE_NET_CONSOLE_H_
#define EVE_NET_CONSOLE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/sharded_system.h"
#include "federation/monitor.h"
#include "federation/transport.h"

namespace eve {
namespace net {

// One statement plus the 1-based line where it starts in the script, so
// failures can be reported as "<file>:<line>: ...".
struct Statement {
  std::string text;
  size_t line = 1;
};

// Splits a script into ';'-terminated statements, honoring single-quoted
// strings, double-quoted identifiers, and "--" comments.
std::vector<Statement> SplitStatements(const std::string& script);

class Console {
 public:
  // Executes one statement, writing its report to `out` and diagnostics
  // to `err`. Returns false when the statement failed.
  bool Run(const std::string& statement, std::ostream& out,
           std::ostream& err);

  // Like Run, but with per-request limits: a non-zero deadline/budget is
  // applied to every shard for this statement only, then the console's
  // own configured values (SET SYNC DEADLINE/WORKBUDGET) are restored.
  bool RunWithLimits(const std::string& statement, uint64_t deadline_micros,
                     uint64_t work_budget, std::ostream& out,
                     std::ostream& err);

  // True when `statement` is served read-only from the published snapshot
  // (SHOW MKB / SHOW HYPERGRAPH / SHOW VIEWS / SHOW VIEW <name>, without
  // an AT VERSION clause): safe to run as RunSnapshotRead under a shared
  // lock, concurrently with other snapshot reads.
  static bool IsSnapshotRead(const std::string& statement);

  // Runs an IsSnapshotRead() statement against the current snapshot. Does
  // not mutate console state. Returns false when the statement failed
  // (e.g. SHOW VIEW on an unknown view).
  bool RunSnapshotRead(const std::string& statement, std::ostream& out,
                       std::ostream& err) const;

  // The serving core, exposed for the server's stats/drain plumbing.
  ShardedEveSystem& sharded() { return sharded_; }
  const ShardedEveSystem& sharded() const { return sharded_; }

  // --- Replication plumbing (net/replication.h) ----------------------------
  // All of these require the caller to hold the server's exclusive console
  // lock (except CurrentVersion, which reads one atomic-ish counter and is
  // safe under the shared lock too).

  // The committed version id of shard 0 (the replication unit).
  uint64_t CurrentVersion() const { return sharded_.shard(0).current_version(); }

  // Renders the complete durable state as checkpoint text (the replication
  // bootstrap payload).
  std::string RenderSnapshotText() const;

  // Replaces the in-memory system with a parsed checkpoint and republishes
  // the snapshot. Does NOT touch durable files — the replica agent has
  // already installed them (journal reset + checkpoint write) before
  // calling this.
  Status InstallSnapshotText(const std::string& text);

  // Applies one shipped journal record through `replayer` (batch-buffering,
  // tolerant — the recovery semantics) and republishes the snapshot.
  Status ApplyReplicatedRecord(const JournalRecord& record,
                               JournalReplayer* replayer);

  // The journal opened by JOURNAL <path> (nullptr when none). Replicas
  // append shipped records to it verbatim.
  Journal* attached_journal() { return journal_.has_value() ? &*journal_ : nullptr; }

  // Detach (replica) or reattach (promotion) the journal from the serving
  // system. Detached, local mutations do NOT journal — a replica's journal
  // is written only by the agent, with the primary's exact bytes.
  void SetSystemJournalAttached(bool attached);

 private:
  bool Report(const Status& status, const std::string& context);

  // Shard 0 of a 1-shard system IS the classic single EveSystem; the
  // commands that predate sharding operate on it directly.
  EveSystem& sys() { return sharded_.shard(0); }

  // Sync tuning knobs apply uniformly to every shard replica.
  template <class Fn>
  void ForEachShard(Fn fn) {
    for (size_t i = 0; i < sharded_.shard_count(); ++i) fn(sharded_.shard(i));
  }

  // The shared implementation of the snapshot-read SHOW forms; const and
  // stream-parameterized so the server can run it under a shared lock.
  bool SnapshotShow(const std::vector<std::string>& words, std::ostream& out,
                    std::ostream& err) const;

  bool RequireSingleShard(const std::string& what);
  bool SetShards(const std::string& value);
  bool LoadMisd(const std::string& path);
  bool SaveMisd(const std::string& path);
  bool LoadViewPool(const std::string& path);
  bool SaveViewPool(const std::string& path);
  bool OpenJournal(const std::string& path);
  bool Checkpoint(const std::string& path);
  bool Recover(const std::string& checkpoint_path,
               const std::string& journal_path);
  bool SetSync(const std::string& knob, const std::string& value);
  bool SetExecutor(const std::string& value);
  bool Enqueue(const Result<CapabilityChange>& change);
  bool Drain();
  bool Show(const std::vector<std::string>& words);
  bool DryRun(std::vector<std::string> rest);
  bool Rollback(const std::string& version_word);
  bool Scrub();
  Result<CapabilityChange> MakeDelete(const std::vector<std::string>& words);
  Result<CapabilityChange> MakeRename(const std::vector<std::string>& words);
  bool ParseTicks(const std::string& word, uint64_t* out);
  federation::FederationMonitor MakeMonitor();
  bool TrackSources();
  bool ShowSources();
  bool SetSource(const std::string& source, const std::string& knob,
                 const std::string& value);
  bool FaultSource(const std::string& source, const std::string& kind_word,
                   const std::string& from_word, const std::string& to_word);
  bool Tick(const std::string& count_word);
  bool Change(const Result<CapabilityChange>& change, bool preview);

  // The statement's output streams, valid only inside Run (set on entry).
  std::ostream& Out() { return *out_; }
  std::ostream& Err() { return *err_; }
  std::ostream* out_ = nullptr;
  std::ostream* err_ = nullptr;

  // The serving core. SET SHARDS 1 (the default) delegates to shard 0,
  // which behaves exactly like the classic single EveSystem.
  ShardedEveSystem sharded_{Mkb()};
  std::optional<Journal> journal_;
  // False on a replica: journal_ stays open (the agent appends shipped
  // records) but the serving system must not journal its own replayed
  // mutations on top.
  bool system_journal_attached_ = true;
  std::optional<VersionScrubStats> last_scrub_;
  // Federation console state: one simulated transport and a logical clock
  // that persists across TICK commands (monitors are per-command).
  federation::SimulatedTransport transport_;
  uint64_t federation_now_ = 0;
  // The console-configured sync limits (SET SYNC DEADLINE/WORKBUDGET),
  // mirrored here so RunWithLimits can restore them after a per-request
  // override.
  uint64_t configured_deadline_micros_ = 0;
  uint64_t configured_work_budget_ = 0;
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_CONSOLE_H_
