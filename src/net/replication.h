// Primary/replica replication for eved: journal shipping, bounded-staleness
// reads, and automatic failover (docs/REPLICATION.md).
//
// Topology: one PRIMARY accepts writes; N REPLICAS subscribe over the
// ordinary wire protocol (new kRepl* frame types in net/protocol.h). The
// primary tails its own write-ahead journal through Journal::SetObserver —
// every record it ships was already durable and committed locally — and
// each replica appends the shipped bytes to its OWN journal before applying
// them through the same batch-buffering tolerant replay path recovery uses
// (JournalReplayer), so a replica restart recovers from local files and
// resumes the stream from its applied version.
//
// Epoch fencing: every promotion increments an fsynced epoch. A hello whose
// epoch does not match the primary's current epoch (a rejoining old
// primary, or a replica that slept through a failover) is answered with a
// full checkpoint snapshot; installing it truncates the local journal —
// which is exactly how an old primary's unreplicated suffix is discarded.
//
// Positions: replication progress is measured in journal-record sequence
// numbers within an epoch (every journaled mutation advances it — MKB
// versions only move on capability changes, so they cannot order DEFINE
// traffic). The wire structs' *_version fields carry positions for
// progress and MKB versions only where labelled.
//
// Failover: replicas track the primary with the federation membership
// state machine (heartbeat = probe success, silence/socket loss = probe
// failure, reconnects on the deterministic capped backoff schedule). When
// the lease expires the replica turns CANDIDATE, status-probes the whole
// cluster, and — if a majority is reachable and no live primary answers —
// the deterministic ChooseLeader rule (max epoch, then max position, then
// min node id) nominates the candidate that runs a VOTE ROUND: it asks
// every node to vote for (epoch, candidate), where each node persists at
// most one vote per epoch (across restarts) and grants it only to
// candidates whose (epoch, position) is at least its own. Promotion
// requires a strict majority of explicit votes — merely observing a
// majority of statuses is not enough, so two candidates with asymmetric
// views of a partition can never both promote (their vote majorities
// would have to intersect, and the common voter votes once). Semi-sync
// commits wait for max(ack_replicas, floor(cluster/2)) replica acks, so
// the commit set intersects every vote majority and the up-to-date rule
// forces every electable leader to carry every acknowledged commit.

#ifndef EVE_NET_REPLICATION_H_
#define EVE_NET_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "eve/journal.h"
#include "federation/membership.h"
#include "net/console.h"
#include "net/protocol.h"
#include "net/server.h"

namespace eve {
namespace net {

class MetricsServer;

std::string_view ReplRoleToString(ReplRole role);

struct NodeAddress {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
  bool operator==(const NodeAddress&) const = default;
};

// Parses "host:port".
Result<NodeAddress> ParseNodeAddress(const std::string& text);

// Parses a cluster spec "n1=host:port,n2=host:port,...". Node ids are
// opaque non-empty tokens without '=', ',' or whitespace.
Result<std::map<std::string, NodeAddress>> ParseCluster(
    const std::string& spec);

// The deterministic promotion rule: every candidate that sees the same
// status set picks the same winner — max epoch, then max applied_version
// (the position; so no acknowledged commit is lost), then min node_id.
// Returns the winning node id, or "" when `candidates` is empty.
std::string ChooseLeader(const std::vector<ReplStatus>& candidates);

struct ReplicationOptions {
  std::string node_id;
  std::map<std::string, NodeAddress> cluster;  // includes this node
  // Initial primary to follow (node id in `cluster`). Empty = this node
  // starts as the primary.
  std::string primary_of;
  // Directory for node_state (fsynced epoch), checkpoint and wal.
  std::string data_dir;
  // Primary-loss detection: a replica that has heard nothing (heartbeats,
  // records) from its primary for this long gives up and runs an election;
  // an isolated primary that has heard no replica (acks, hellos) for this
  // long demotes itself.
  uint64_t lease_micros = 1'000'000;
  uint64_t heartbeat_micros = 100'000;
  // Semi-sync: a committed write is acknowledged to the client only after
  // this many replicas acked its version (0 = async, acks only feed lag
  // gauges — an explicit opt-out of the zero-acked-loss guarantee).
  // Timeout turns the response into an explicit error — the client must
  // treat it as NOT committed. When non-zero the effective count is
  // clamped UP to floor(cluster_size / 2): the ack set must intersect
  // every election vote majority, or a majority excluding the most
  // advanced replica could elect a leader missing an acked commit.
  uint32_t ack_replicas = 1;
  uint64_t ack_timeout_micros = 2'000'000;
  // Records retained for resume — shipped ones on the primary, applied ones
  // on replicas (so a freshly promoted primary can serve resumes too).
  // Positions older than the ring bootstrap from a full snapshot instead.
  size_t ring_capacity = 65536;
  // Snapshot bootstraps ship the checkpoint in chunks of this many bytes:
  // checkpoints routinely outgrow the frame payload cap (kMaxPayload), so
  // a single-frame snapshot would be undeliverable. Must stay comfortably
  // under kMaxPayload. Tests shrink it to force multi-chunk transfers.
  size_t snapshot_chunk_bytes = 1u << 20;
};

// Monotonic replication counters (each individually atomic).
struct ReplicationStats {
  uint64_t records_shipped = 0;
  uint64_t snapshots_sent = 0;
  uint64_t resumes = 0;
  uint64_t acks_received = 0;
  uint64_t records_applied = 0;
  uint64_t snapshots_installed = 0;
  uint64_t stream_breaks = 0;  // replica-side resyncs (socket/epoch/fault)
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t ack_timeouts = 0;
};

// The shared replication brain of one node, attached to its Server and
// Console. On a primary it owns the shipped-record ring and the subscribed
// peer set; on a replica it owns the role/epoch/lag state the agent and
// the read path consult. Thread-safe: the journal observer runs under the
// server's exclusive console lock, acks arrive on the I/O thread, the
// agent mutates role state from its own thread.
class ReplicationHub {
 public:
  // Sends one encoded frame to a subscribed peer's session (enqueue +
  // nudge; safe from any thread).
  using PeerSender = std::function<void(std::string frame_bytes)>;

  ReplicationHub(ReplicationOptions options, Console* console);

  // Loads the fsynced epoch from data_dir/node_state and assumes the
  // initial role (primary_of empty = primary under epoch+1; otherwise
  // replica following primary_of).
  Status Initialize();

  const ReplicationOptions& options() const { return options_; }
  ReplRole role() const { return role_.load(); }
  uint64_t epoch() const { return epoch_.load(); }
  // The highest epoch this node has ever SEEN anywhere — its own, a
  // heartbeat's, a shipped record's, an election probe's. Persisted, and
  // used as the promotion fence: a new primary's epoch must exceed it, so
  // two primaries can never share an epoch even when a candidate never
  // managed to adopt the current one (e.g. its bootstrap kept failing).
  uint64_t observed_epoch() const { return observed_epoch_.load(); }
  void NoteObservedEpoch(uint64_t epoch);
  // The replication position (journal seq within the epoch): last assigned
  // on a primary, last locally-journaled on a replica.
  uint64_t position() const { return position_.load(); }
  // The MKB version the position corresponds to (display/status only).
  uint64_t applied_version() const { return applied_version_.load(); }
  size_t cluster_size() const { return options_.cluster.size(); }

  // --- Primary side ---------------------------------------------------------

  // Journal observer hook: called with every durable record the local
  // system journaled (under the exclusive console lock). No-op unless
  // primary.
  void OnJournalRecord(JournalRecordKind kind, std::string_view body);

  // Registers a replica subscription. MUST run under the exclusive console
  // lock so the snapshot/resume point and the observer stream cannot
  // leave a gap. Queues the bootstrap (snapshot or resumed records)
  // through `sender` before returning. Fails when this node is not the
  // primary or a repl.* failpoint refuses the subscription.
  Status Subscribe(const ReplHello& hello, uint64_t session_id,
                   PeerSender sender);

  void OnAck(const ReplAck& ack);
  void OnPeerGone(uint64_t session_id);

  // Broadcasts a heartbeat to every subscribed replica (primary only).
  void BroadcastHeartbeat();

  // True when committed writes must wait for replica acks (ack_replicas
  // clamped to the peers the cluster can actually have).
  bool RequiresAck() const;

  // The replica-ack count semi-sync commits actually wait for: 0 when
  // ack_replicas is 0 (explicit async opt-out) or the cluster has no
  // peers; otherwise max(ack_replicas, floor(cluster/2)) capped at the
  // peer count, so the acked set intersects every election vote majority.
  uint64_t effective_ack_replicas() const;

  // Blocks until `position` is acked by effective_ack_replicas() peers,
  // or the ack timeout elapses (returns false — the caller reports the
  // commit as NOT acknowledged).
  bool WaitForReplication(uint64_t position);

  // Micros since any replica last acked or subscribed (primary isolation
  // signal).
  uint64_t MicrosSinceReplicaContact() const;

  // --- Replica side ---------------------------------------------------------

  // Records progress: `seq` was journaled locally and fed to the replayer,
  // leaving the system at MKB version `version`.
  void SetAppliedPosition(uint64_t seq, uint64_t version);
  // Heartbeat intake: remembers the primary's tip position and renews the
  // staleness clock (tip_version field carries the position).
  void OnPrimaryHeartbeat(const ReplHeartbeat& heartbeat);
  // The address this node currently believes is the primary ("" unknown).
  std::string primary_address() const;
  void SetPrimaryAddress(const std::string& address);

  // Staleness contract: on a replica, lag = primary tip position (last
  // heartbeat or record) − applied position; a lease-stale heartbeat makes
  // the lag unknown (treated as exceeding every bound). Non-replicas
  // always pass with lag 0. Returns false when `bound` is exceeded.
  bool WithinStalenessBound(uint64_t bound, uint64_t* lag_out,
                            bool* lag_known_out) const;

  // --- Role transitions (agent thread; caller holds the exclusive console
  // lock for the journal attach/detach) ---------------------------------------

  // Becomes primary under `new_epoch`: persists the epoch, reattaches the
  // WAL to the serving system, clears the ring, accepts writes.
  Status Promote(uint64_t new_epoch);
  // Primary -> candidate (isolation) or candidate/replica bookkeeping:
  // detaches the WAL, drops subscribed peers.
  Status Demote(ReplRole to);
  // Replica adopting a freshly installed snapshot's epoch. Also drops the
  // resume ring: the install jumped the position, so the retained tail is
  // from an abandoned lineage.
  Status AdoptEpoch(uint64_t epoch);
  // Resumed replica adopting the primary's newer epoch mid-stream. Unlike
  // AdoptEpoch this KEEPS the resume ring: a resume certifies the local
  // tail as a prefix of the new lineage, not an abandoned one.
  Status RaiseEpoch(uint64_t epoch);
  // Replica-side ring maintenance: retains an applied record so that, if
  // this node is later promoted, peers one failover behind can resume from
  // its ring instead of re-bootstrapping a full snapshot.
  void RetainApplied(uint64_t seq, uint8_t kind, std::string_view body);

  // --- Elections ------------------------------------------------------------

  // Decides one vote request (any role, any thread). A vote is granted
  // only when ALL of:
  //  * the requested epoch exceeds this node's lineage epoch,
  //  * this node has not voted for a DIFFERENT candidate in that epoch
  //    (the vote is persisted in node_state before the grant is returned,
  //    so a restart cannot double-vote),
  //  * the candidate's (last_epoch, last_position) is at least this
  //    node's own (the up-to-date rule: no acked commit may be lost),
  //  * this node does not currently follow a live primary (leader
  //    stickiness: a reachable primary's replicas refuse to depose it).
  // The requested epoch is always folded into observed_epoch().
  ReplVote HandleVoteRequest(const ReplVoteReq& request);

  // --- Introspection --------------------------------------------------------

  ReplStatus SelfStatus() const;
  // SHOW REPLICATION body (primary lists per-replica applied/lag rows).
  std::string RenderStatus() const;
  // Prometheus-style gauge/counter lines (eve_repl_*).
  std::string MetricsText() const;
  ReplicationStats stats() const;

  // Counts hub-visible stream breaks (replica agent reports its resyncs).
  void CountStreamBreak() { stream_breaks_.fetch_add(1); }
  void CountSnapshotInstalled() { snapshots_installed_.fetch_add(1); }
  void CountRecordApplied() { records_applied_.fetch_add(1); }

  // Crash funnel for the agent thread: a SimulatedCrash caught outside a
  // server callback is recorded here; eved exits 3 when set.
  void RecordCrash(const std::string& site);
  std::string crashed_site() const;

 private:
  struct ShippedRecord {
    uint64_t seq = 0;
    uint8_t kind = 0;
    std::string body;
  };
  struct Peer {
    std::string node_id;
    uint64_t session_id = 0;
    PeerSender sender;
    uint64_t acked_seq = 0;
    uint64_t acked_version = 0;
    uint64_t last_contact_micros = 0;
  };

  // Writes node_state with `epoch`, the (monotonic) observed epoch, and
  // the persisted vote.
  Status PersistEpoch(uint64_t epoch);
  // Serializes every node_state write so a concurrent best-effort
  // observed-epoch write can never clobber a just-persisted vote. Caller
  // holds state_mu_.
  Status WriteNodeStateLocked(uint64_t epoch);

  const ReplicationOptions options_;
  Console* const console_;

  std::atomic<ReplRole> role_{ReplRole::kSingle};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> observed_epoch_{0};
  std::atomic<uint64_t> position_{0};
  // The position this node held when it (last) became primary. Resumes
  // from an OLDER epoch are only offered up to this base: anything past
  // it under an old epoch is a divergent suffix this primary never saw.
  std::atomic<uint64_t> promotion_base_position_{0};
  std::atomic<uint64_t> applied_version_{0};
  // Replica-side staleness clock: the primary's last-announced tip
  // position and when it was heard.
  std::atomic<uint64_t> primary_tip_position_{0};
  std::atomic<uint64_t> last_heartbeat_micros_{0};
  std::atomic<uint64_t> last_peer_contact_micros_{0};

  mutable std::mutex mu_;  // ring, peers, primary address
  std::condition_variable ack_cv_;
  std::deque<ShippedRecord> ring_;
  std::map<uint64_t, Peer> peers_;  // by session id
  std::string primary_address_;

  // Vote ledger + node_state writes (votes are decided under this lock
  // and persisted before they are returned).
  mutable std::mutex state_mu_;
  uint64_t voted_epoch_ = 0;
  std::string voted_for_;

  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<uint64_t> snapshots_sent_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> acks_received_{0};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> snapshots_installed_{0};
  std::atomic<uint64_t> stream_breaks_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> ack_timeouts_{0};

  mutable std::mutex crash_mu_;
  std::string crashed_site_;
};

// The replica-side driver thread: follows the primary (subscribe, apply,
// ack), detects its loss through the federation lease machinery, runs
// elections as a candidate, and — on a primary — emits heartbeats and the
// isolation self-demotion check. One agent runs on EVERY clustered node;
// it is dormant-but-watchful in the primary role.
class ReplicaAgent {
 public:
  ReplicaAgent(ReplicationHub* hub, Console* console, Server* server);
  ~ReplicaAgent();

  void Start();
  void Stop();  // joins the thread

 private:
  void ThreadMain();
  void PrimaryTick();
  // One subscribe/apply session against the current primary; returns when
  // the stream breaks or the role changes. Returns false when the lease
  // expired (caller turns candidate).
  bool RunReplicaSession();
  void RunElection();
  // Folds one snapshot chunk into the in-progress transfer; when the last
  // chunk lands, installs the assembled checkpoint. Chunks must arrive in
  // offset order with consistent (epoch, version, total).
  Status AcceptSnapshotChunk(const ReplSnapshot& chunk);
  // Installs a snapshot bootstrap durably (journal reset FIRST, then the
  // checkpoint file, then memory — a crash between the two recovers to a
  // stale-but-consistent state that simply re-syncs) and in memory.
  Status InstallSnapshot(const ReplSnapshot& snapshot);
  // Applies one shipped record: local WAL append (verbatim), tolerant
  // replay, position update — all under the exclusive console lock.
  Status ApplyRecord(const ReplRecord& record);
  // Turns this node into a replica of `address`, with a fresh lease.
  void BecomeReplicaOf(const std::string& address);
  // Probes `address` with kReplStatusReq; nullopt on timeout/refusal.
  std::optional<ReplStatus> ProbeNode(const NodeAddress& address);
  // Asks `address` to vote for `request`; nullopt on timeout/refusal (a
  // node that cannot answer has not voted — it counts as no vote).
  std::optional<ReplVote> RequestVote(const NodeAddress& address,
                                      const ReplVoteReq& request);
  bool Stopping() const;
  void SleepMicros(uint64_t micros);  // stop-responsive

  ReplicationHub* const hub_;
  Console* const console_;
  Server* const server_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  // The primary tracked as a federation "source": heartbeats renew the
  // lease, silence and socket loss escalate HEALTHY -> SUSPECT ->
  // QUARANTINED on the deterministic backoff schedule, lease expiry is
  // the failover trigger. Ticks are milliseconds.
  federation::SourceConfig lease_config_;
  federation::SourceMembership primary_lease_;
  uint64_t reconnect_attempt_ = 0;
  uint64_t election_attempt_ = 0;
  // True while local durable state exactly matches (epoch, position): the
  // next hello announces them and the primary resumes from the ring when
  // it can. Benign stream breaks (socket loss, goodbye, a missed record)
  // keep it — the seq check re-ships exactly what was missed. It drops on
  // a failed install/apply (state indeterminate), after a primary stint
  // (the local suffix may be unreplicated), and at process start (the
  // position is not persisted).
  bool stream_intact_ = false;
  JournalReplayer replayer_;
  // In-progress chunked snapshot transfer: header of the first chunk plus
  // the bytes assembled so far.
  std::optional<ReplSnapshot> pending_snapshot_;
};

// One fully wired replicated eved node: console + durable state (RECOVER
// from data_dir, WAL attached), server, hub, agent and optional /metrics
// endpoint. eved (--cluster), replication_test and bench_repl all run
// nodes through this, so process-level chaos and in-process tests exercise
// the same bring-up.
struct ReplicatedNodeOptions {
  ServerOptions server;
  ReplicationOptions repl;
  uint16_t metrics_port = 0;  // 0 = no metrics endpoint
  std::string metrics_host = "127.0.0.1";
};

class ReplicatedNode {
 public:
  ReplicatedNode();
  ~ReplicatedNode();

  ReplicatedNode(const ReplicatedNode&) = delete;
  ReplicatedNode& operator=(const ReplicatedNode&) = delete;

  // Recovers durable state from repl.data_dir (checkpoint + wal), attaches
  // the WAL, wires hub/server/agent and starts serving.
  Status Start(const ReplicatedNodeOptions& options);

  uint16_t port() const;
  uint16_t metrics_port() const;
  Console& console() { return console_; }
  Server& server() { return *server_; }
  ReplicationHub& hub() { return *hub_; }

  void BeginDrain();
  void Stop();
  void WaitUntilStopped();
  bool stopped() const;
  // Non-empty when a crash-mode failpoint fired anywhere in the node
  // (serving path or replication agent).
  std::string crashed_site() const;

 private:
  Console console_;
  std::unique_ptr<ReplicationHub> hub_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<ReplicaAgent> agent_;
  std::unique_ptr<MetricsServer> metrics_;
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_REPLICATION_H_
