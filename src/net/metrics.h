// A minimal plaintext /metrics endpoint for eved (satellite of the
// replication PR, but useful standalone): one accept-loop thread serves
// every HTTP request with the same Prometheus-style text document —
// server/session counters, admission accounting, federation membership
// state counts, and (when replication is configured) the eve_repl_* role,
// position and lag series. The request itself is ignored beyond reading
// one chunk: every path returns the full document, HTTP/1.0,
// connection-close, so `curl`/`wget` and any scraper work with zero
// dependencies.

#ifndef EVE_NET_METRICS_H_
#define EVE_NET_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace eve {
namespace net {

class Console;
class ReplicationHub;
class Server;

// Renders the full metrics document for one node. Takes the server's
// shared console lock internally for the federation membership walk; call
// WITHOUT holding any console lock. `hub` may be null (no replication
// configured — the eve_repl_* series are omitted).
std::string RenderMetricsText(Server& server, Console& console,
                              ReplicationHub* hub);

class MetricsServer {
 public:
  // `provider` is called once per scrape, on the metrics thread.
  using Provider = std::function<std::string()>;

  MetricsServer(std::string host, uint16_t port, Provider provider);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  // Binds and starts the accept thread. port 0 picks an ephemeral port
  // (see port()).
  Status Start();
  void Stop();  // joins the thread

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeOne(int fd);

  const std::string host_;
  const uint16_t requested_port_;
  const Provider provider_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_METRICS_H_
