#include "net/metrics.h"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <mutex>
#include <shared_mutex>
#include <sstream>

#include "eve/eve_system.h"
#include "federation/membership.h"
#include "net/console.h"
#include "net/replication.h"
#include "net/server.h"

namespace eve {
namespace net {

std::string RenderMetricsText(Server& server, Console& console,
                              ReplicationHub* hub) {
  std::ostringstream os;
  const ServerStats stats = server.stats();
  os << "eve_server_accepted_total " << stats.accepted << "\n";
  os << "eve_server_refused_total " << stats.refused << "\n";
  os << "eve_server_sessions " << stats.sessions_now << "\n";
  os << "eve_server_evicted_slow_loris_total " << stats.evicted_slow_loris
     << "\n";
  os << "eve_server_evicted_overflow_total " << stats.evicted_overflow << "\n";
  os << "eve_server_evicted_io_error_total " << stats.evicted_io_error << "\n";
  os << "eve_server_requests_total " << stats.requests << "\n";
  os << "eve_server_responses_total " << stats.responses << "\n";
  os << "eve_server_shed_overload_total " << stats.shed_overload << "\n";
  os << "eve_server_resyncs_total " << stats.resyncs << "\n";
  os << "eve_server_crc_failures_total " << stats.crc_failures << "\n";
  os << "eve_server_goodbyes_total " << stats.goodbyes << "\n";

  // admission_stats() is internally synchronized; no console lock needed.
  const AdmissionStats admission =
      console.sharded().shard(0).admission_stats();
  os << "eve_admission_submitted_total " << admission.submitted << "\n";
  os << "eve_admission_shed_total " << admission.shed << "\n";
  os << "eve_admission_completed_total " << admission.completed << "\n";
  os << "eve_admission_failed_total " << admission.failed << "\n";
  os << "eve_admission_queued " << admission.queued_now << "\n";

  {
    // The membership table is console state: walk it under the shared lock
    // (coexists with snapshot reads, excludes writers).
    std::shared_lock<std::shared_mutex> lock(server.console_mutex());
    size_t by_state[4] = {0, 0, 0, 0};
    for (const auto& [source, membership] :
         console.sharded().shard(0).source_membership()) {
      const size_t index = static_cast<size_t>(membership.state);
      if (index < 4) ++by_state[index];
    }
    os << "eve_federation_sources{state=\"healthy\"} " << by_state[0] << "\n";
    os << "eve_federation_sources{state=\"suspect\"} " << by_state[1] << "\n";
    os << "eve_federation_sources{state=\"quarantined\"} " << by_state[2]
       << "\n";
    os << "eve_federation_sources{state=\"departed\"} " << by_state[3] << "\n";
    os << "eve_mkb_version " << console.CurrentVersion() << "\n";
  }

  if (hub != nullptr) os << hub->MetricsText();
  return os.str();
}

MetricsServer::MetricsServer(std::string host, uint16_t port,
                             Provider provider)
    : host_(std::move(host)),
      requested_port_(port),
      provider_(std::move(provider)) {}

MetricsServer::~MetricsServer() { Stop(); }

Status MetricsServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("metrics socket: ") +
                            ::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(requested_port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad metrics host: " + host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string err = ::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("metrics bind/listen on " + host_ + ":" +
                            std::to_string(requested_port_) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsServer::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    ServeOne(fd);
  }
}

void MetricsServer::ServeOne(int fd) {
  // Read (and discard) one chunk of request bytes so well-behaved HTTP
  // clients do not see a reset, then answer with the document. BOTH
  // directions are bounded: a scraper that stops reading (stalled curl,
  // SIGSTOP) would otherwise block the single metrics thread in send()
  // forever, wedging the accept loop on exactly the degraded node the
  // endpoint is meant to observe.
  timeval tv{};
  tv.tv_usec = 200'000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  timeval send_tv{};
  send_tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  char buf[4096];
  (void)::read(fd, buf, sizeof(buf));
  const std::string body = provider_();
  std::ostringstream os;
  os << "HTTP/1.0 200 OK\r\n"
     << "Content-Type: text/plain; version=0.0.4\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string response = os.str();
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t n = ::send(fd, response.data() + off, response.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer gone, or the send timeout fired: give up
    off += static_cast<size_t>(n);
  }
  ::close(fd);
}

}  // namespace net
}  // namespace eve
