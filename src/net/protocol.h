// The eved wire protocol: length-prefixed, CRC-guarded frames.
//
// Every frame is
//
//   magic(4, "EVE1") | type(1) | payload_len(4, LE) | crc32(4, LE) | payload
//
// where the CRC covers the payload bytes only (the header fields are
// validated structurally: known magic, known type, bounded length). The
// frame layer is deliberately dumb — it moves opaque payload bytes — and
// the request/response structs below are encoded INTO payloads, so framing
// robustness (torn frames, corruption, resync) is testable without any
// statement semantics.
//
// Robustness contract (FrameDecoder):
//  * A partial frame is not an error: Next() returns nullopt until the
//    remaining bytes arrive (the server's slow-loris sweep, not the
//    decoder, decides when a stalled partial frame becomes an eviction).
//  * A corrupt frame (bad magic, unknown type, oversized length, CRC
//    mismatch) never kills the stream: the decoder drops one byte, scans
//    forward to the next plausible magic, and counts a resync. A client
//    that writes garbage loses frames, not the connection.
//  * Payload length is capped (kMaxPayload) so a hostile length field
//    cannot make the decoder buffer unbounded memory.
//
// Integers are little-endian on the wire, encoded byte-by-byte (the
// decoder never type-puns the input buffer).

#ifndef EVE_NET_PROTOCOL_H_
#define EVE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace eve {
namespace net {

inline constexpr char kMagic[4] = {'E', 'V', 'E', '1'};
inline constexpr size_t kHeaderSize = 13;  // magic 4 + type 1 + len 4 + crc 4
inline constexpr size_t kMaxPayload = 4u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,   // client -> server: one statement to execute
  kResponse = 2,  // server -> client: the statement's outcome
  kGoodbye = 3,   // server -> client: connection is closing (reason text)
  // Replication stream (net/replication.h). A replica subscribes with
  // kReplHello; the primary answers with either a kReplSnapshot (full
  // bootstrap) or nothing (resume), then streams kReplRecord frames —
  // one committed journal record each — plus periodic kReplHeartbeat.
  // The replica acknowledges applied state with kReplAck. kReplStatusReq/
  // kReplStatus is the connectionless health probe used for failover
  // elections and SHOW REPLICATION.
  kReplHello = 4,      // replica -> primary: subscribe (node, epoch, version)
  kReplSnapshot = 5,   // primary -> replica: full checkpoint bootstrap
  kReplRecord = 6,     // primary -> replica: one committed journal record
  kReplAck = 7,        // replica -> primary: applied-through acknowledgment
  kReplHeartbeat = 8,  // primary -> replica: lease renewal + tip version
  kReplStatusReq = 9,  // anyone -> node: report your replication status
  kReplStatus = 10,    // node -> asker: role, epoch, versions, leader hint
  kReplVoteReq = 11,   // candidate -> node: request a vote for an epoch
  kReplVote = 12,      // node -> candidate: the (persisted) vote decision
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

// CRC-32 (IEEE 802.3, reflected) over `data`.
uint32_t Crc32(std::string_view data);

// Renders a complete frame (header + payload) ready to write to a socket.
std::string EncodeFrame(FrameType type, std::string_view payload);

// Incremental frame extractor over a byte stream.
class FrameDecoder {
 public:
  // Appends raw socket bytes to the internal buffer.
  void Feed(std::string_view bytes);

  // Extracts the next complete, CRC-clean frame, or nullopt when the
  // buffer holds no complete frame (call again after more Feed()s).
  // Corrupt prefixes are skipped internally (counted in resyncs()).
  std::optional<Frame> Next();

  // True when the buffer starts with an incomplete frame (header or
  // payload still short) — the slow-loris signal when it persists.
  bool has_partial() const;

  size_t buffered_bytes() const { return buffer_.size(); }
  // Times the decoder discarded bytes to find the next frame boundary.
  uint64_t resyncs() const { return resyncs_; }
  // Structurally complete frames rejected for a CRC mismatch.
  uint64_t crc_failures() const { return crc_failures_; }

 private:
  // Drops `n` bytes, then discards everything up to the next magic.
  void Resync(size_t n);

  std::string buffer_;
  uint64_t resyncs_ = 0;
  uint64_t crc_failures_ = 0;
};

// --- Request / response payloads -------------------------------------------

// One statement, plus the client's per-request limits. A zero deadline or
// budget means "use the server's configured default" (the limits can only
// tighten a request, they never loosen server policy).
struct Request {
  uint64_t id = 0;              // echoed back verbatim in the response
  uint64_t deadline_micros = 0; // wall-clock budget for this statement
  uint64_t work_budget = 0;     // logical work units for this statement
  std::string statement;
};

// The statement's outcome. `code` is the eve::StatusCode as an integer:
// 0 = the statement succeeded (output holds what evectl would print),
// kResourceExhausted = shed by admission/overload (retry_after_micros is
// the server's backoff hint), anything else = the statement failed and
// `error` holds the diagnostic.
struct Response {
  uint64_t id = 0;
  int32_t code = 0;
  uint64_t retry_after_micros = 0;
  std::string output;  // the statement's stdout text
  std::string error;   // the statement's stderr text
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

// --- Replication payloads ---------------------------------------------------
//
// The same codec discipline as requests/responses: little-endian integers,
// length-prefixed byte strings, decoders that reject truncation and
// trailing garbage so a torn or corrupted replication stream can never
// yield a half-parsed record (the frame CRC already rejects byte flips;
// these decoders reject structurally-short payloads).

// Replica -> primary subscription. `epoch` and `applied_version` describe
// the replica's recovered state; the primary resumes the record stream
// when they match its own epoch and its retained ring, and falls back to
// a full snapshot otherwise (which is also how a rejoining old primary
// discards any unreplicated suffix).
struct ReplHello {
  std::string node_id;
  uint64_t epoch = 0;
  uint64_t applied_version = 0;
};

// Primary -> replica full-state bootstrap: the rendered checkpoint text at
// `version`, under `epoch`. The replica atomically replaces its durable
// state (checkpoint + truncated journal) before applying it.
// Checkpoints can exceed the frame payload cap, so a snapshot travels as a
// sequence of chunk frames: `checkpoint` holds the bytes at [offset,
// offset + checkpoint.size()) of a `total`-byte checkpoint. Chunks arrive
// in offset order on the session; the replica installs once it holds all
// `total` bytes. A single-frame snapshot is offset 0 with total ==
// checkpoint.size().
struct ReplSnapshot {
  uint64_t epoch = 0;
  uint64_t version = 0;
  std::string primary_node;
  uint64_t offset = 0;
  uint64_t total = 0;
  std::string checkpoint;
};

// Primary -> replica: one committed journal record, sequence-numbered in
// ship order within the primary's epoch.
struct ReplRecord {
  uint64_t epoch = 0;
  uint64_t seq = 0;
  uint8_t kind = 0;  // JournalRecordKind
  std::string body;
};

// Replica -> primary: everything through `applied_version` is applied and
// locally durable (semi-sync commits wait for these).
struct ReplAck {
  std::string node_id;
  uint64_t epoch = 0;
  uint64_t applied_seq = 0;
  uint64_t applied_version = 0;
};

// Primary -> replica lease renewal; `tip_version` lets the replica compute
// its staleness lag without a round trip.
struct ReplHeartbeat {
  uint64_t epoch = 0;
  uint64_t tip_version = 0;
  std::string primary_node;
};

// Replication role, as carried in kReplStatus frames.
enum class ReplRole : uint8_t {
  kSingle = 0,     // no cluster configured
  kPrimary = 1,
  kReplica = 2,
  kCandidate = 3,  // lost its primary; probing / electing
};

// Node -> asker: the election + discovery probe answer. `primary_hint` is
// "host:port" of the primary this node currently follows (empty when
// unknown), so a rejoining node can chase the hint to the leader.
struct ReplStatus {
  std::string node_id;
  ReplRole role = ReplRole::kSingle;
  uint64_t epoch = 0;
  uint64_t applied_version = 0;
  uint64_t tip_version = 0;
  std::string primary_hint;
};

std::string EncodeReplHello(const ReplHello& hello);
Result<ReplHello> DecodeReplHello(std::string_view payload);

std::string EncodeReplSnapshot(const ReplSnapshot& snapshot);
Result<ReplSnapshot> DecodeReplSnapshot(std::string_view payload);

std::string EncodeReplRecord(const ReplRecord& record);
Result<ReplRecord> DecodeReplRecord(std::string_view payload);

std::string EncodeReplAck(const ReplAck& ack);
Result<ReplAck> DecodeReplAck(std::string_view payload);

std::string EncodeReplHeartbeat(const ReplHeartbeat& heartbeat);
Result<ReplHeartbeat> DecodeReplHeartbeat(std::string_view payload);

// Candidate -> node: "vote for me to become primary under `epoch`".
// (last_epoch, last_position) describe the candidate's log so the voter
// can apply the up-to-date rule: a vote is granted only to candidates
// whose log is at least as advanced as the voter's own, which is what
// keeps acknowledged commits on every electable leader.
struct ReplVoteReq {
  std::string candidate;       // node id requesting the vote
  uint64_t epoch = 0;          // the epoch the candidate wants to mint
  uint64_t last_epoch = 0;     // candidate's current lineage epoch
  uint64_t last_position = 0;  // candidate's applied position
};

// Node -> candidate: the vote decision. A granted vote was persisted
// before this frame was sent — a node grants at most one vote per epoch,
// across restarts.
struct ReplVote {
  std::string voter;
  uint64_t epoch = 0;  // echo of the requested epoch
  bool granted = false;
};

std::string EncodeReplStatus(const ReplStatus& status);
Result<ReplStatus> DecodeReplStatus(std::string_view payload);

std::string EncodeReplVoteReq(const ReplVoteReq& request);
Result<ReplVoteReq> DecodeReplVoteReq(std::string_view payload);

std::string EncodeReplVote(const ReplVote& vote);
Result<ReplVote> DecodeReplVote(std::string_view payload);

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_PROTOCOL_H_
