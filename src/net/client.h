// NetClient: a blocking client for the eved wire protocol.
//
// One connection, statements executed in order. The retry policy encodes
// the shed contract from the server side: a kResourceExhausted response is
// an EXPECTED overload outcome, so Run retries it with capped exponential
// backoff, honoring the server's retry-after hint when it is longer than
// the client's own next delay. Any other outcome (success, a failed
// statement, a transport error) is returned to the caller directly —
// failures of the statement itself are not transient and never retried.

#ifndef EVE_NET_CLIENT_H_
#define EVE_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/protocol.h"

namespace eve {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Per-request limits forwarded in every request (0 = server default).
  uint64_t deadline_micros = 0;
  uint64_t work_budget = 0;
  // Backoff ladder for kResourceExhausted responses: initial delay doubles
  // per retry up to the cap; 0 retries turns shed responses into a direct
  // return.
  int max_shed_retries = 6;
  uint64_t initial_backoff_micros = 10'000;
  uint64_t max_backoff_micros = 1'000'000;
};

class NetClient {
 public:
  // Connects (blocking) and returns a ready client.
  static Result<NetClient> Connect(const ClientOptions& options);

  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient();

  // Executes one statement remotely and returns the server's response
  // (after internal shed retries). A non-OK Result means the TRANSPORT
  // failed (connection lost, protocol violation) — a failed statement is
  // an OK Result whose response carries a non-zero code and the error
  // text.
  Result<Response> Run(const std::string& statement);

  // Total shed responses absorbed by backoff since Connect.
  uint64_t sheds_retried() const { return sheds_retried_; }

  void Close();

 private:
  NetClient(int fd, ClientOptions options);

  // Sends one request frame and blocks for its response (or a goodbye).
  Result<Response> RoundTrip(const Request& request);

  int fd_ = -1;
  ClientOptions options_;
  uint64_t next_request_id_ = 1;
  uint64_t sheds_retried_ = 0;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_CLIENT_H_
