// NetClient: a blocking client for the eved wire protocol.
//
// One connection, statements executed in order. The retry policy encodes
// the shed contract from the server side: a kResourceExhausted response is
// an EXPECTED overload outcome, so Run retries it with capped exponential
// backoff, honoring the server's retry-after hint when it is longer than
// the client's own next delay. Any other outcome (success, a failed
// statement, a transport error) is returned to the caller directly —
// failures of the statement itself are not transient and never retried.
//
// Cluster awareness (opt-in, max_transport_retries > 0): a transport error
// (connect refused, EPIPE, peer reset — an eved restarting or failing
// over) is retried on the deterministic capped-jitter backoff schedule,
// reconnecting across [last leader hint, host:port, nodes...] until one
// answers. A "not primary ... leader=host:port" redirect from a replica is
// chased to the hinted leader. With the default max_transport_retries = 0
// a lost connection surfaces immediately, exactly as before.

#ifndef EVE_NET_CLIENT_H_
#define EVE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"

namespace eve {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Per-request limits forwarded in every request (0 = server default).
  uint64_t deadline_micros = 0;
  uint64_t work_budget = 0;
  // Backoff ladder for kResourceExhausted responses: initial delay doubles
  // per retry up to the cap; 0 retries turns shed responses into a direct
  // return.
  int max_shed_retries = 6;
  uint64_t initial_backoff_micros = 10'000;
  uint64_t max_backoff_micros = 1'000'000;
  // Additional "host:port" candidates beyond host:port — the rest of the
  // cluster, tried in order when reconnecting after a transport failure.
  std::vector<std::string> nodes;
  // Transport-level retries (reconnect + resend) per Run call. 0 (default)
  // = a lost connection is returned to the caller directly. NOTE: a retry
  // MAY re-execute a statement the dying server already applied — callers
  // must treat duplicate-apply outcomes (e.g. AlreadyExists) accordingly.
  int max_transport_retries = 0;
  // Socket receive/send timeout (0 = block forever). With a timeout, a
  // wedged peer (e.g. a SIGSTOPped node whose kernel still ACKs) surfaces
  // as a transport error instead of hanging the caller — essential for
  // failover clients, which then rotate to another node.
  uint64_t receive_timeout_micros = 0;
};

// The delay before transport reconnect `attempt` (1-based): capped
// exponential from initial_backoff_micros with deterministic jitter keyed
// on `key` (same key + attempt = same delay; distinct clients never
// thunder in lockstep).
uint64_t TransportBackoffMicros(const ClientOptions& options,
                                std::string_view key, uint64_t attempt);

class NetClient {
 public:
  // Connects (blocking) and returns a ready client.
  static Result<NetClient> Connect(const ClientOptions& options);

  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient();

  // Executes one statement remotely and returns the server's response
  // (after internal shed retries). A non-OK Result means the TRANSPORT
  // failed (connection lost, protocol violation) — a failed statement is
  // an OK Result whose response carries a non-zero code and the error
  // text.
  Result<Response> Run(const std::string& statement);

  // Total shed responses absorbed by backoff since Connect.
  uint64_t sheds_retried() const { return sheds_retried_; }
  // Total transport-level reconnect+resend cycles since Connect.
  uint64_t transport_retries() const { return transport_retries_; }
  // The last leader hint chased ("" when none was ever seen).
  const std::string& leader_hint() const { return leader_hint_; }

  void Close();

 private:
  NetClient(int fd, ClientOptions options);

  // Sends one request frame and blocks for its response (or a goodbye).
  Result<Response> RoundTrip(const Request& request);
  // Re-dials: the leader hint first (when set), then host:port + nodes in
  // a rotating order so repeated failures cannot pin the client to one
  // stuck candidate; false when every candidate refused.
  bool Reconnect();

  int fd_ = -1;
  ClientOptions options_;
  uint64_t next_request_id_ = 1;
  uint64_t sheds_retried_ = 0;
  uint64_t transport_retries_ = 0;
  size_t reconnect_cursor_ = 0;
  std::string leader_hint_;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace eve

#endif  // EVE_NET_CLIENT_H_
