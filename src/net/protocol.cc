#include "net/protocol.h"

#include <array>
#include <cstring>

#include "common/status.h"

namespace eve {
namespace net {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(value >> 32));
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

// Cursor over a payload; every Get checks remaining length.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* out) {
    if (data_.size() - pos_ < 4) return false;
    *out = 0;
    for (int i = 3; i >= 0; --i) {
      *out = (*out << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* out) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *out = (static_cast<uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool GetBytes(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kRequest) &&
         type <= static_cast<uint8_t>(FrameType::kReplVote);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  frame.push_back(static_cast<char>(type));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) { buffer_.append(bytes); }

void FrameDecoder::Resync(size_t n) {
  // Skip the poisoned prefix, then scan for the next plausible frame
  // start. Counted once per discard run, however many bytes it spans.
  size_t pos = n;
  while (pos + sizeof(kMagic) <= buffer_.size() &&
         std::memcmp(buffer_.data() + pos, kMagic, sizeof(kMagic)) != 0) {
    ++pos;
  }
  if (pos + sizeof(kMagic) > buffer_.size()) {
    // No full magic ahead: keep only a tail that is still a prefix of the
    // magic (it may complete on the next Feed), discard the rest.
    while (pos < buffer_.size() &&
           std::memcmp(buffer_.data() + pos, kMagic,
                       buffer_.size() - pos) != 0) {
      ++pos;
    }
  }
  buffer_.erase(0, pos);
  ++resyncs_;
}

bool FrameDecoder::has_partial() const {
  if (buffer_.empty()) return false;
  if (buffer_.size() < kHeaderSize) return true;
  uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | static_cast<uint8_t>(buffer_[5 + i]);
  }
  return buffer_.size() < kHeaderSize + len;
}

std::optional<Frame> FrameDecoder::Next() {
  while (true) {
    if (buffer_.size() < kHeaderSize) {
      // Could still be mid-header; but if what we have already cannot be
      // a magic prefix, discard it now so has_partial() means "plausible
      // frame underway", not "buffered garbage".
      if (!buffer_.empty() &&
          std::memcmp(buffer_.data(), kMagic,
                      std::min(buffer_.size(), sizeof(kMagic))) != 0) {
        Resync(1);
        continue;
      }
      return std::nullopt;
    }
    if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
      Resync(1);
      continue;
    }
    const uint8_t type = static_cast<uint8_t>(buffer_[4]);
    uint32_t len = 0;
    uint32_t crc = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<uint8_t>(buffer_[5 + i]);
      crc = (crc << 8) | static_cast<uint8_t>(buffer_[9 + i]);
    }
    if (!KnownType(type) || len > kMaxPayload) {
      Resync(1);
      continue;
    }
    if (buffer_.size() < kHeaderSize + len) return std::nullopt;
    const std::string_view payload(buffer_.data() + kHeaderSize, len);
    if (Crc32(payload) != crc) {
      ++crc_failures_;
      Resync(1);
      continue;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(payload);
    buffer_.erase(0, kHeaderSize + len);
    return frame;
  }
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  payload.reserve(28 + request.statement.size());
  PutU64(&payload, request.id);
  PutU64(&payload, request.deadline_micros);
  PutU64(&payload, request.work_budget);
  PutBytes(&payload, request.statement);
  return payload;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Request request;
  Reader reader(payload);
  if (!reader.GetU64(&request.id) ||
      !reader.GetU64(&request.deadline_micros) ||
      !reader.GetU64(&request.work_budget) ||
      !reader.GetBytes(&request.statement) || !reader.exhausted()) {
    return Status::ParseError("malformed request payload");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  payload.reserve(28 + response.output.size() + response.error.size());
  PutU64(&payload, response.id);
  PutU32(&payload, static_cast<uint32_t>(response.code));
  PutU64(&payload, response.retry_after_micros);
  PutBytes(&payload, response.output);
  PutBytes(&payload, response.error);
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Response response;
  Reader reader(payload);
  uint32_t code = 0;
  if (!reader.GetU64(&response.id) || !reader.GetU32(&code) ||
      !reader.GetU64(&response.retry_after_micros) ||
      !reader.GetBytes(&response.output) ||
      !reader.GetBytes(&response.error) || !reader.exhausted()) {
    return Status::ParseError("malformed response payload");
  }
  response.code = static_cast<int32_t>(code);
  return response;
}

std::string EncodeReplHello(const ReplHello& hello) {
  std::string payload;
  payload.reserve(24 + hello.node_id.size());
  PutBytes(&payload, hello.node_id);
  PutU64(&payload, hello.epoch);
  PutU64(&payload, hello.applied_version);
  return payload;
}

Result<ReplHello> DecodeReplHello(std::string_view payload) {
  ReplHello hello;
  Reader reader(payload);
  if (!reader.GetBytes(&hello.node_id) || !reader.GetU64(&hello.epoch) ||
      !reader.GetU64(&hello.applied_version) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-hello payload");
  }
  return hello;
}

std::string EncodeReplSnapshot(const ReplSnapshot& snapshot) {
  std::string payload;
  payload.reserve(44 + snapshot.primary_node.size() +
                  snapshot.checkpoint.size());
  PutU64(&payload, snapshot.epoch);
  PutU64(&payload, snapshot.version);
  PutBytes(&payload, snapshot.primary_node);
  PutU64(&payload, snapshot.offset);
  PutU64(&payload, snapshot.total);
  PutBytes(&payload, snapshot.checkpoint);
  return payload;
}

Result<ReplSnapshot> DecodeReplSnapshot(std::string_view payload) {
  ReplSnapshot snapshot;
  Reader reader(payload);
  if (!reader.GetU64(&snapshot.epoch) || !reader.GetU64(&snapshot.version) ||
      !reader.GetBytes(&snapshot.primary_node) ||
      !reader.GetU64(&snapshot.offset) || !reader.GetU64(&snapshot.total) ||
      !reader.GetBytes(&snapshot.checkpoint) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-snapshot payload");
  }
  if (snapshot.offset > snapshot.total ||
      snapshot.checkpoint.size() > snapshot.total - snapshot.offset) {
    return Status::ParseError("repl-snapshot chunk outside its total");
  }
  return snapshot;
}

std::string EncodeReplRecord(const ReplRecord& record) {
  std::string payload;
  payload.reserve(24 + record.body.size());
  PutU64(&payload, record.epoch);
  PutU64(&payload, record.seq);
  PutU32(&payload, record.kind);
  PutBytes(&payload, record.body);
  return payload;
}

Result<ReplRecord> DecodeReplRecord(std::string_view payload) {
  ReplRecord record;
  Reader reader(payload);
  uint32_t kind = 0;
  if (!reader.GetU64(&record.epoch) || !reader.GetU64(&record.seq) ||
      !reader.GetU32(&kind) || !reader.GetBytes(&record.body) ||
      !reader.exhausted()) {
    return Status::ParseError("malformed repl-record payload");
  }
  if (kind == 0 || kind > 0xFF) {
    return Status::ParseError("repl-record kind out of range");
  }
  record.kind = static_cast<uint8_t>(kind);
  return record;
}

std::string EncodeReplAck(const ReplAck& ack) {
  std::string payload;
  payload.reserve(32 + ack.node_id.size());
  PutBytes(&payload, ack.node_id);
  PutU64(&payload, ack.epoch);
  PutU64(&payload, ack.applied_seq);
  PutU64(&payload, ack.applied_version);
  return payload;
}

Result<ReplAck> DecodeReplAck(std::string_view payload) {
  ReplAck ack;
  Reader reader(payload);
  if (!reader.GetBytes(&ack.node_id) || !reader.GetU64(&ack.epoch) ||
      !reader.GetU64(&ack.applied_seq) ||
      !reader.GetU64(&ack.applied_version) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-ack payload");
  }
  return ack;
}

std::string EncodeReplHeartbeat(const ReplHeartbeat& heartbeat) {
  std::string payload;
  payload.reserve(24 + heartbeat.primary_node.size());
  PutU64(&payload, heartbeat.epoch);
  PutU64(&payload, heartbeat.tip_version);
  PutBytes(&payload, heartbeat.primary_node);
  return payload;
}

Result<ReplHeartbeat> DecodeReplHeartbeat(std::string_view payload) {
  ReplHeartbeat heartbeat;
  Reader reader(payload);
  if (!reader.GetU64(&heartbeat.epoch) ||
      !reader.GetU64(&heartbeat.tip_version) ||
      !reader.GetBytes(&heartbeat.primary_node) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-heartbeat payload");
  }
  return heartbeat;
}

std::string EncodeReplStatus(const ReplStatus& status) {
  std::string payload;
  payload.reserve(36 + status.node_id.size() + status.primary_hint.size());
  PutBytes(&payload, status.node_id);
  PutU32(&payload, static_cast<uint32_t>(status.role));
  PutU64(&payload, status.epoch);
  PutU64(&payload, status.applied_version);
  PutU64(&payload, status.tip_version);
  PutBytes(&payload, status.primary_hint);
  return payload;
}

Result<ReplStatus> DecodeReplStatus(std::string_view payload) {
  ReplStatus status;
  Reader reader(payload);
  uint32_t role = 0;
  if (!reader.GetBytes(&status.node_id) || !reader.GetU32(&role) ||
      !reader.GetU64(&status.epoch) ||
      !reader.GetU64(&status.applied_version) ||
      !reader.GetU64(&status.tip_version) ||
      !reader.GetBytes(&status.primary_hint) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-status payload");
  }
  if (role > static_cast<uint32_t>(ReplRole::kCandidate)) {
    return Status::ParseError("repl-status role out of range");
  }
  status.role = static_cast<ReplRole>(role);
  return status;
}

std::string EncodeReplVoteReq(const ReplVoteReq& request) {
  std::string payload;
  payload.reserve(28 + request.candidate.size());
  PutBytes(&payload, request.candidate);
  PutU64(&payload, request.epoch);
  PutU64(&payload, request.last_epoch);
  PutU64(&payload, request.last_position);
  return payload;
}

Result<ReplVoteReq> DecodeReplVoteReq(std::string_view payload) {
  ReplVoteReq request;
  Reader reader(payload);
  if (!reader.GetBytes(&request.candidate) || !reader.GetU64(&request.epoch) ||
      !reader.GetU64(&request.last_epoch) ||
      !reader.GetU64(&request.last_position) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-vote-req payload");
  }
  return request;
}

std::string EncodeReplVote(const ReplVote& vote) {
  std::string payload;
  payload.reserve(16 + vote.voter.size());
  PutBytes(&payload, vote.voter);
  PutU64(&payload, vote.epoch);
  PutU32(&payload, vote.granted ? 1 : 0);
  return payload;
}

Result<ReplVote> DecodeReplVote(std::string_view payload) {
  ReplVote vote;
  Reader reader(payload);
  uint32_t granted = 0;
  if (!reader.GetBytes(&vote.voter) || !reader.GetU64(&vote.epoch) ||
      !reader.GetU32(&granted) || !reader.exhausted()) {
    return Status::ParseError("malformed repl-vote payload");
  }
  if (granted > 1) {
    return Status::ParseError("repl-vote granted flag out of range");
  }
  vote.granted = granted == 1;
  return vote;
}

}  // namespace net
}  // namespace eve
