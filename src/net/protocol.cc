#include "net/protocol.h"

#include <array>
#include <cstring>

#include "common/status.h"

namespace eve {
namespace net {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(value >> 32));
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

// Cursor over a payload; every Get checks remaining length.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* out) {
    if (data_.size() - pos_ < 4) return false;
    *out = 0;
    for (int i = 3; i >= 0; --i) {
      *out = (*out << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* out) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *out = (static_cast<uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool GetBytes(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

bool KnownType(uint8_t type) {
  return type == static_cast<uint8_t>(FrameType::kRequest) ||
         type == static_cast<uint8_t>(FrameType::kResponse) ||
         type == static_cast<uint8_t>(FrameType::kGoodbye);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  frame.push_back(static_cast<char>(type));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) { buffer_.append(bytes); }

void FrameDecoder::Resync(size_t n) {
  // Skip the poisoned prefix, then scan for the next plausible frame
  // start. Counted once per discard run, however many bytes it spans.
  size_t pos = n;
  while (pos + sizeof(kMagic) <= buffer_.size() &&
         std::memcmp(buffer_.data() + pos, kMagic, sizeof(kMagic)) != 0) {
    ++pos;
  }
  if (pos + sizeof(kMagic) > buffer_.size()) {
    // No full magic ahead: keep only a tail that is still a prefix of the
    // magic (it may complete on the next Feed), discard the rest.
    while (pos < buffer_.size() &&
           std::memcmp(buffer_.data() + pos, kMagic,
                       buffer_.size() - pos) != 0) {
      ++pos;
    }
  }
  buffer_.erase(0, pos);
  ++resyncs_;
}

bool FrameDecoder::has_partial() const {
  if (buffer_.empty()) return false;
  if (buffer_.size() < kHeaderSize) return true;
  uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | static_cast<uint8_t>(buffer_[5 + i]);
  }
  return buffer_.size() < kHeaderSize + len;
}

std::optional<Frame> FrameDecoder::Next() {
  while (true) {
    if (buffer_.size() < kHeaderSize) {
      // Could still be mid-header; but if what we have already cannot be
      // a magic prefix, discard it now so has_partial() means "plausible
      // frame underway", not "buffered garbage".
      if (!buffer_.empty() &&
          std::memcmp(buffer_.data(), kMagic,
                      std::min(buffer_.size(), sizeof(kMagic))) != 0) {
        Resync(1);
        continue;
      }
      return std::nullopt;
    }
    if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
      Resync(1);
      continue;
    }
    const uint8_t type = static_cast<uint8_t>(buffer_[4]);
    uint32_t len = 0;
    uint32_t crc = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<uint8_t>(buffer_[5 + i]);
      crc = (crc << 8) | static_cast<uint8_t>(buffer_[9 + i]);
    }
    if (!KnownType(type) || len > kMaxPayload) {
      Resync(1);
      continue;
    }
    if (buffer_.size() < kHeaderSize + len) return std::nullopt;
    const std::string_view payload(buffer_.data() + kHeaderSize, len);
    if (Crc32(payload) != crc) {
      ++crc_failures_;
      Resync(1);
      continue;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(payload);
    buffer_.erase(0, kHeaderSize + len);
    return frame;
  }
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  payload.reserve(28 + request.statement.size());
  PutU64(&payload, request.id);
  PutU64(&payload, request.deadline_micros);
  PutU64(&payload, request.work_budget);
  PutBytes(&payload, request.statement);
  return payload;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Request request;
  Reader reader(payload);
  if (!reader.GetU64(&request.id) ||
      !reader.GetU64(&request.deadline_micros) ||
      !reader.GetU64(&request.work_budget) ||
      !reader.GetBytes(&request.statement) || !reader.exhausted()) {
    return Status::ParseError("malformed request payload");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  payload.reserve(28 + response.output.size() + response.error.size());
  PutU64(&payload, response.id);
  PutU32(&payload, static_cast<uint32_t>(response.code));
  PutU64(&payload, response.retry_after_micros);
  PutBytes(&payload, response.output);
  PutBytes(&payload, response.error);
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Response response;
  Reader reader(payload);
  uint32_t code = 0;
  if (!reader.GetU64(&response.id) || !reader.GetU32(&code) ||
      !reader.GetU64(&response.retry_after_micros) ||
      !reader.GetBytes(&response.output) ||
      !reader.GetBytes(&response.error) || !reader.exhausted()) {
    return Status::ParseError("malformed response payload");
  }
  response.code = static_cast<int32_t>(code);
  return response;
}

}  // namespace net
}  // namespace eve
