#include "net/console.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "algebra/executor.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "eve/view_pool_io.h"
#include "federation/membership.h"
#include "hypergraph/hypergraph.h"
#include "mkb/serializer.h"

namespace eve {
namespace net {

namespace {

// Splits a statement head into whitespace-separated words (enough for the
// non-SQL commands; CREATE VIEW statements go to the E-SQL parser whole).
std::vector<std::string> SplitWords(const std::string& statement) {
  std::vector<std::string> words;
  std::istringstream is(statement);
  std::string word;
  while (is >> word) words.push_back(word);
  return words;
}

// Strips surrounding single quotes from a path argument.
std::string Unquote(const std::string& word) {
  if (word.size() >= 2 && word.front() == '\'' && word.back() == '\'') {
    return word.substr(1, word.size() - 2);
  }
  return word;
}

// One view block extracted from a pinned VIEWS segment (the SaveViews
// format of view_pool_io.h): the name, the state word, and the CREATE VIEW
// statement exactly as the committing version rendered it.
struct PinnedViewBlock {
  std::string name;
  bool active = true;
  std::string definition;  // without the terminating ';'
};

// Parses the view name from "CREATE VIEW <name> ...", handling the
// printer's double-quote escaping for non-plain identifiers.
std::string PinnedViewName(std::string_view definition) {
  constexpr std::string_view kPrefix = "CREATE VIEW ";
  if (definition.substr(0, kPrefix.size()) != kPrefix) return "";
  std::string_view rest = definition.substr(kPrefix.size());
  if (!rest.empty() && rest[0] == '"') {
    std::string name;
    for (size_t i = 1; i < rest.size(); ++i) {
      if (rest[i] == '"') {
        if (i + 1 < rest.size() && rest[i + 1] == '"') {
          name += '"';
          ++i;
        } else {
          return name;
        }
      } else {
        name += rest[i];
      }
    }
    return name;
  }
  const size_t end = rest.find_first_of(" \t\n(");
  return std::string(rest.substr(0, end));
}

// Extracts the view blocks of one shard's pinned VIEWS segment. Reads only
// the snapshot's immutable bytes — no shard lock, no live-state access.
void AppendPinnedViews(const std::string& text,
                       std::vector<PinnedViewBlock>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t header = text.find("-- VIEW ", pos);
    if (header == std::string::npos) break;
    const size_t header_end = text.find('\n', header);
    if (header_end == std::string::npos) break;
    const std::string_view header_rest = Trim(std::string_view(text).substr(
        header + 8, header_end - header - 8));
    size_t next = text.find("-- VIEW ", header_end);
    if (next == std::string::npos) next = text.size();
    std::string body(Trim(std::string_view(text).substr(
        header_end + 1, next - header_end - 1)));
    if (!body.empty() && body.back() == ';') {
      body.pop_back();
      body = std::string(Trim(body));
    }
    PinnedViewBlock block;
    block.active = header_rest.substr(0, 6) != "disabl";
    block.definition = std::move(body);
    block.name = PinnedViewName(block.definition);
    if (!block.name.empty()) out->push_back(std::move(block));
    pos = next;
  }
}

}  // namespace

std::vector<Statement> SplitStatements(const std::string& script) {
  std::vector<Statement> statements;
  std::string current;
  size_t line = 1;           // current line in the script
  size_t start_line = 1;     // line of `current`'s first non-blank char
  const auto bump = [&](char c) {
    if (c == '\n') ++line;
  };
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (c == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      if (i < script.size()) bump(script[i]);
      current += ' ';
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      if (Trim(current).empty()) start_line = line;
      current += c;
      ++i;
      while (i < script.size()) {
        bump(script[i]);
        current += script[i];
        if (script[i] == quote) {
          if (quote == '\'' && i + 1 < script.size() &&
              script[i + 1] == '\'') {
            current += script[++i];
          } else {
            break;
          }
        }
        ++i;
      }
      continue;
    }
    if (c == ';') {
      if (!Trim(current).empty()) {
        statements.push_back({std::string(Trim(current)), start_line});
      }
      current.clear();
      continue;
    }
    if (Trim(current).empty() && !std::isspace(static_cast<unsigned char>(c))) {
      start_line = line;
    }
    bump(c);
    current += c;
  }
  if (!Trim(current).empty()) {
    statements.push_back({std::string(Trim(current)), start_line});
  }
  return statements;
}

bool Console::IsSnapshotRead(const std::string& statement) {
  const std::vector<std::string> words = SplitWords(statement);
  if (words.empty() || !EqualsIgnoreCase(words[0], "SHOW")) return false;
  // Exactly the forms answered from the pinned snapshot; the AT VERSION
  // variants read the single system's version chain and are excluded by
  // the size checks.
  if (words.size() == 2 && (EqualsIgnoreCase(words[1], "MKB") ||
                            EqualsIgnoreCase(words[1], "HYPERGRAPH") ||
                            EqualsIgnoreCase(words[1], "VIEWS"))) {
    return true;
  }
  return words.size() == 3 && EqualsIgnoreCase(words[1], "VIEW");
}

bool Console::RunSnapshotRead(const std::string& statement, std::ostream& out,
                              std::ostream& err) const {
  return SnapshotShow(SplitWords(statement), out, err);
}

bool Console::SnapshotShow(const std::vector<std::string>& words,
                           std::ostream& out, std::ostream& err) const {
  // MKB and hypergraph reads answer from the last published snapshot: one
  // atomic pin, no shard locks, stable against concurrent commits.
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "MKB")) {
    out << sharded_.PinPublished()->mkb->ToString();
    return true;
  }
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "HYPERGRAPH")) {
    out << Hypergraph::Build(*sharded_.PinPublished()->mkb).Summary();
    return true;
  }
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "VIEWS")) {
    // Served from the pinned snapshot: one atomic load, then only the
    // snapshot's immutable segment bytes — no shard lock is taken, and
    // the listing is byte-stable across any concurrent commit.
    const auto snapshot = sharded_.PinPublished();
    std::vector<PinnedViewBlock> views;
    for (size_t i = 0; i < sharded_.shard_count(); ++i) {
      AppendPinnedViews(snapshot->ViewsText(i), &views);
    }
    std::sort(views.begin(), views.end(),
              [](const PinnedViewBlock& a, const PinnedViewBlock& b) {
                return a.name < b.name;
              });
    for (const PinnedViewBlock& view : views) {
      out << "  [" << (view.active ? "active" : "DISABLED") << "] "
          << view.name << "\n";
    }
    return true;
  }
  if (words.size() >= 3 && EqualsIgnoreCase(words[1], "VIEW")) {
    // The definition is served from the pinned snapshot (the owning
    // shard's immutable VIEWS segment), lock-free like SHOW VIEWS.
    const auto snapshot = sharded_.PinPublished();
    const size_t shard = sharded_.ShardOfView(words[2]);
    std::vector<PinnedViewBlock> views;
    AppendPinnedViews(snapshot->ViewsText(shard), &views);
    const PinnedViewBlock* found = nullptr;
    for (const PinnedViewBlock& view : views) {
      if (view.name == words[2]) found = &view;
    }
    if (found == nullptr) {
      err << "error: not_found: view not registered: " << words[2] << "\n";
      return false;
    }
    out << found->definition << "\n";
    // History is live provenance (not part of the versioned bytes); it
    // rides along from the owning shard for the console's benefit.
    const Result<const RegisteredView*> view = sharded_.GetView(words[2]);
    if (view.ok()) {
      for (const std::string& event : view.value()->history) {
        out << "  history: " << event << "\n";
      }
    }
    return true;
  }
  err << "error: not a snapshot read\n";
  return false;
}

std::string Console::RenderSnapshotText() const {
  return RenderCheckpoint(sharded_.shard(0));
}

Status Console::InstallSnapshotText(const std::string& text) {
  Result<EveSystem> loaded = LoadCheckpoint(text);
  if (!loaded.ok()) return loaded.status();
  sys() = std::move(loaded.value());
  if (journal_.has_value() && system_journal_attached_) {
    sys().AttachJournal(&*journal_);
  }
  sharded_.PublishSnapshot();
  return Status::OK();
}

Status Console::ApplyReplicatedRecord(const JournalRecord& record,
                                      JournalReplayer* replayer) {
  replayer->Apply(&sys(), record, nullptr);
  sharded_.PublishSnapshot();
  return Status::OK();
}

void Console::SetSystemJournalAttached(bool attached) {
  system_journal_attached_ = attached;
  if (!journal_.has_value()) return;
  sys().AttachJournal(attached ? &*journal_ : nullptr);
}

bool Console::RunWithLimits(const std::string& statement,
                            uint64_t deadline_micros, uint64_t work_budget,
                            std::ostream& out, std::ostream& err) {
  const bool override_deadline = deadline_micros != 0;
  const bool override_budget = work_budget != 0;
  if (override_deadline) {
    ForEachShard([&](EveSystem& s) { s.SetSyncDeadlineMicros(deadline_micros); });
  }
  if (override_budget) {
    ForEachShard([&](EveSystem& s) { s.SetSyncWorkBudget(work_budget); });
  }
  bool ok = false;
  try {
    ok = Run(statement, out, err);
  } catch (...) {
    // A SimulatedCrash must not leave the per-request override behind:
    // the server survives error-mode injections and keeps serving.
    if (override_deadline) {
      ForEachShard(
          [&](EveSystem& s) { s.SetSyncDeadlineMicros(configured_deadline_micros_); });
    }
    if (override_budget) {
      ForEachShard([&](EveSystem& s) { s.SetSyncWorkBudget(configured_work_budget_); });
    }
    throw;
  }
  // Run may itself have executed SET SYNC DEADLINE/WORKBUDGET, updating
  // the configured values — restoring to them is still correct.
  if (override_deadline) {
    ForEachShard(
        [&](EveSystem& s) { s.SetSyncDeadlineMicros(configured_deadline_micros_); });
  }
  if (override_budget) {
    ForEachShard([&](EveSystem& s) { s.SetSyncWorkBudget(configured_work_budget_); });
  }
  return ok;
}

bool Console::Run(const std::string& statement, std::ostream& out,
                  std::ostream& err) {
  out_ = &out;
  err_ = &err;
  const std::vector<std::string> words = SplitWords(statement);
  if (words.empty()) return true;
  const std::string head = ToLower(words[0]);

  if (head == "create") {
    return Report(sharded_.RegisterViewText(statement), statement);
  }
  if (head == "retract" && words.size() >= 2) {
    return Report(sharded_.RetractConstraint(words[1]), statement);
  }
  if (head == "define") {
    const std::string body(Trim(
        std::string_view(statement).substr(std::string("define").size())));
    return Report(sharded_.ExtendMkb(body), statement);
  }
  if (head == "load" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "MISD")) {
    return LoadMisd(Unquote(words[2]));
  }
  if (head == "save" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "MISD")) {
    return SaveMisd(Unquote(words[2]));
  }
  if (head == "load" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "VIEWS")) {
    return LoadViewPool(Unquote(words[2]));
  }
  if (head == "save" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "VIEWS")) {
    return SaveViewPool(Unquote(words[2]));
  }
  if (head == "journal" && words.size() >= 2) {
    return OpenJournal(Unquote(words[1]));
  }
  if (head == "checkpoint" && words.size() >= 2) {
    return Checkpoint(Unquote(words[1]));
  }
  if (head == "recover" && words.size() >= 3) {
    return Recover(Unquote(words[1]), Unquote(words[2]));
  }
  if (head == "set" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "SHARDS")) {
    return SetShards(words[2]);
  }
  if (head == "set" && words.size() >= 4 &&
      EqualsIgnoreCase(words[1], "SYNC")) {
    return SetSync(words[2], words[3]);
  }
  if (head == "set" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "EXECUTOR")) {
    return SetExecutor(words[2]);
  }
  if (head == "set" && words.size() >= 5 &&
      EqualsIgnoreCase(words[1], "SOURCE")) {
    return SetSource(words[2], words[3], words[4]);
  }
  if (head == "track" && words.size() >= 2 &&
      EqualsIgnoreCase(words[1], "SOURCES")) {
    return TrackSources();
  }
  if (head == "fault" && words.size() >= 8 &&
      EqualsIgnoreCase(words[1], "SOURCE") &&
      EqualsIgnoreCase(words[4], "FROM") && EqualsIgnoreCase(words[6], "TO")) {
    return FaultSource(words[2], words[3], words[5], words[7]);
  }
  if (head == "tick" && words.size() >= 2) {
    return Tick(words[1]);
  }
  if (head == "show") {
    return Show(words);
  }
  if (head == "read" && words.size() >= 3 &&
      EqualsIgnoreCase(words[1], "STALENESS")) {
    // Per-session staleness bound for snapshot reads. On a replicated eved
    // the server intercepts this and gates reads against the replica's
    // lag; the local console has no lag, so the knob is accepted and
    // echoed for script compatibility.
    if (EqualsIgnoreCase(words[2], "NONE")) {
      Out() << "read staleness bound = none\n";
      return true;
    }
    uint64_t bound = 0;
    if (!ParseTicks(words[2], &bound)) return false;
    Out() << "read staleness bound = " << bound << "\n";
    return true;
  }
  if (head == "enqueue" && words.size() >= 4) {
    const std::vector<std::string> rest(words.begin() + 1, words.end());
    const std::string sub = ToLower(rest[0]);
    if (sub == "delete" && rest.size() >= 3) {
      return Enqueue(MakeDelete(rest));
    }
    if (sub == "rename" && rest.size() >= 5 &&
        EqualsIgnoreCase(rest[3], "TO")) {
      return Enqueue(MakeRename(rest));
    }
    Err() << "error: ENQUEUE expects DELETE or RENAME\n";
    return false;
  }
  if (head == "drain") {
    return Drain();
  }
  if (head == "delete" && words.size() >= 3) {
    return Change(MakeDelete(words), /*preview=*/false);
  }
  if (head == "rename" && words.size() >= 5 &&
      EqualsIgnoreCase(words[3], "TO")) {
    return Change(MakeRename(words), /*preview=*/false);
  }
  if (head == "sync" && words.size() >= 5 &&
      EqualsIgnoreCase(words[1], "DRYRUN")) {
    return DryRun(std::vector<std::string>(words.begin() + 2, words.end()));
  }
  if (head == "rollback" && words.size() >= 4 &&
      EqualsIgnoreCase(words[1], "TO") &&
      EqualsIgnoreCase(words[2], "VERSION")) {
    return Rollback(words[3]);
  }
  if (head == "scrub") {
    return Scrub();
  }
  if (head == "preview" && words.size() >= 4) {
    const std::vector<std::string> rest(words.begin() + 1, words.end());
    const std::string sub = ToLower(rest[0]);
    if (sub == "delete" && rest.size() >= 3) {
      return Change(MakeDelete(rest), /*preview=*/true);
    }
    if (sub == "rename" && rest.size() >= 5 &&
        EqualsIgnoreCase(rest[3], "TO")) {
      return Change(MakeRename(rest), /*preview=*/true);
    }
    Err() << "error: PREVIEW expects DELETE or RENAME\n";
    return false;
  }
  Err() << "error: unrecognized statement: " << statement << "\n";
  return false;
}

bool Console::Report(const Status& status, const std::string& context) {
  if (!status.ok()) {
    Err() << "error: " << status << "\n  in: " << context << "\n";
    return false;
  }
  return true;
}

bool Console::RequireSingleShard(const std::string& what) {
  if (sharded_.shard_count() == 1) return true;
  Err() << "error: " << what << " requires SET SHARDS 1 (currently "
        << sharded_.shard_count() << " shards)\n";
  return false;
}

bool Console::SetShards(const std::string& value) {
  uint64_t count = 0;
  if (!ParseTicks(value, &count)) return false;
  if (journal_.has_value()) {
    Err() << "error: SET SHARDS after JOURNAL is not allowed (journal "
             "records are placed per shard)\n";
    return false;
  }
  if (!sys().source_membership().empty()) {
    Err() << "error: SET SHARDS after TRACK SOURCES is not allowed\n";
    return false;
  }
  const Status status = sharded_.SetShardCount(static_cast<size_t>(count));
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  Out() << "shards = " << count << "\n";
  return true;
}

bool Console::LoadMisd(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Err() << "error: cannot open " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Result<Mkb> mkb = LoadMkb(buffer.str());
  if (!mkb.ok()) {
    Err() << "error: " << mkb.status() << "\n";
    return false;
  }
  // Rebuilding keeps the configured shard count: SET SHARDS n; LOAD
  // MISD ...; CREATE VIEW ... is the sharded bring-up sequence.
  sharded_ = ShardedEveSystem(mkb.value(), {}, sharded_.shard_count());
  if (journal_.has_value() && system_journal_attached_) {
    sys().AttachJournal(&*journal_);
  }
  Out() << "loaded " << mkb.value().catalog().NumRelations()
        << " relations, " << mkb.value().join_constraints().size()
        << " join constraints, "
        << mkb.value().function_of_constraints().size()
        << " function-of constraints, " << mkb.value().pc_constraints().size()
        << " PC constraints from " << path << "\n";
  return true;
}

bool Console::SaveMisd(const std::string& path) {
  // The MKB replicas agree byte-for-byte; save from the pinned snapshot.
  const Status status =
      AtomicWriteFile(path, SaveMkb(*sharded_.PinPublished()->mkb));
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  Out() << "saved MKB to " << path << "\n";
  return true;
}

bool Console::LoadViewPool(const std::string& path) {
  if (!RequireSingleShard("LOAD VIEWS")) return false;
  std::ifstream in(path);
  if (!in) {
    Err() << "error: cannot open " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Status status = LoadViews(buffer.str(), &sys());
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  sharded_.PublishSnapshot();
  Out() << "loaded " << sys().NumViews() << " views from " << path << "\n";
  return true;
}

bool Console::SaveViewPool(const std::string& path) {
  if (!RequireSingleShard("SAVE VIEWS")) return false;
  const Status status = AtomicWriteFile(path, SaveViews(sys()));
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  Out() << "saved " << sys().NumViews() << " views to " << path << "\n";
  return true;
}

bool Console::OpenJournal(const std::string& path) {
  if (!RequireSingleShard("JOURNAL")) return false;
  Result<Journal> journal = Journal::Open(path);
  if (!journal.ok()) {
    Err() << "error: " << journal.status() << "\n";
    return false;
  }
  journal_ = std::move(journal.value());
  if (system_journal_attached_) sys().AttachJournal(&*journal_);
  Out() << "journaling to " << path << "\n";
  return true;
}

bool Console::Checkpoint(const std::string& path) {
  if (!RequireSingleShard("CHECKPOINT")) return false;
  const Status status = WriteCheckpoint(sys(), path);
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  // The checkpoint subsumes the journaled history.
  if (journal_.has_value()) {
    const Status reset = journal_->Reset();
    if (!reset.ok()) {
      Err() << "error: " << reset << "\n";
      return false;
    }
  }
  Out() << "checkpointed to " << path << "\n";
  return true;
}

bool Console::Recover(const std::string& checkpoint_path,
                      const std::string& journal_path) {
  if (!RequireSingleShard("RECOVER")) return false;
  RecoveryReport report;
  Result<EveSystem> recovered =
      RecoverFromFiles(checkpoint_path, journal_path, &report);
  if (!recovered.ok()) {
    Err() << "error: " << recovered.status() << "\n";
    return false;
  }
  sys() = std::move(recovered.value());
  if (journal_.has_value() && system_journal_attached_) {
    sys().AttachJournal(&*journal_);
  }
  sharded_.PublishSnapshot();
  Out() << report.ToString();
  Out() << "recovered " << sys().NumViews() << " views, "
        << sys().mkb().catalog().NumRelations() << " relations\n";
  return true;
}

bool Console::SetSync(const std::string& knob, const std::string& value) {
  uint64_t parsed = 0;
  try {
    parsed = std::stoull(value);
  } catch (...) {
    Err() << "error: SET SYNC " << knob
          << " expects a non-negative integer, got " << value << "\n";
    return false;
  }
  // Per-shard sync knobs fan out to every replica so behavior is uniform
  // no matter which shard a view lands on.
  if (EqualsIgnoreCase(knob, "TOPK")) {
    ForEachShard(
        [&](EveSystem& s) { s.SetSyncTopK(static_cast<size_t>(parsed)); });
    Out() << "sync top-k = " << parsed << "\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "BUDGET")) {
    ForEachShard([&](EveSystem& s) {
      s.SetSyncCandidateBudget(static_cast<size_t>(parsed));
    });
    Out() << "sync candidate budget = " << parsed << "\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "PARALLELISM")) {
    sharded_.SetSyncParallelism(static_cast<size_t>(parsed));
    Out() << "sync parallelism = " << parsed << "\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "WORKBUDGET")) {
    ForEachShard([&](EveSystem& s) { s.SetSyncWorkBudget(parsed); });
    configured_work_budget_ = parsed;
    Out() << "sync work budget = " << parsed << " units/view\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "DEADLINE")) {
    ForEachShard([&](EveSystem& s) { s.SetSyncDeadlineMicros(parsed); });
    configured_deadline_micros_ = parsed;
    Out() << "sync deadline = " << parsed << " us\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "WATCHDOG")) {
    ForEachShard([&](EveSystem& s) { s.SetSyncWatchdogMicros(parsed); });
    Out() << "sync watchdog = " << parsed << " us\n";
    return true;
  }
  if (EqualsIgnoreCase(knob, "QUEUE")) {
    sharded_.SetSyncQueueLimit(static_cast<size_t>(parsed));
    Out() << "sync queue limit = " << parsed << "\n";
    return true;
  }
  Err() << "error: SET SYNC expects TOPK, BUDGET, PARALLELISM, "
           "WORKBUDGET, DEADLINE, WATCHDOG or QUEUE\n";
  return false;
}

bool Console::SetExecutor(const std::string& value) {
  const Result<JoinStrategy> strategy = ParseJoinStrategy(value);
  if (!strategy.ok()) {
    Err() << "error: " << strategy.status() << "\n";
    return false;
  }
  sharded_.SetExecutorStrategy(strategy.value());
  Out() << "executor strategy = " << JoinStrategyToString(strategy.value())
        << "\n";
  return true;
}

// A shed change is an EXPECTED admission outcome (the error is explicit,
// the counters account for it), so it does not fail the script; any
// other enqueue error does.
bool Console::Enqueue(const Result<CapabilityChange>& change) {
  if (!change.ok()) {
    Err() << "error: " << change.status() << "\n";
    return false;
  }
  const Status status = sharded_.EnqueueChange(change.value());
  if (status.ok()) {
    Out() << "enqueued (" << sharded_.queued_changes() << " queued)\n";
    return true;
  }
  // Any admission rejection (capacity or an injected fault) is counted
  // as shed by EnqueueChange, so it is an accounted-for outcome.
  Out() << "SHED: " << status << "\n";
  Out() << "admission: " << sharded_.admission_stats().ToString() << "\n";
  return true;
}

bool Console::Drain() {
  const Result<std::vector<ChangeReport>> reports = sharded_.DrainSyncQueue();
  if (!reports.ok()) {
    Err() << "error: " << reports.status() << "\n";
    return false;
  }
  for (const ChangeReport& report : reports.value()) {
    Out() << report.ToString();
  }
  Out() << "admission: " << sharded_.admission_stats().ToString() << "\n";
  return true;
}

bool Console::Show(const std::vector<std::string>& words) {
  if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SHARD") &&
      EqualsIgnoreCase(words[2], "STATS")) {
    Out() << sharded_.RenderShardStats();
    return true;
  }
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "VERSIONS")) {
    if (!RequireSingleShard("SHOW VERSIONS")) return false;
    Out() << sys().versions().Render();
    return true;
  }
  if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SCRUB") &&
      EqualsIgnoreCase(words[2], "STATS")) {
    if (!last_scrub_.has_value()) {
      Out() << "no scrub has run yet (use SCRUB)\n";
      return true;
    }
    Out() << last_scrub_->ToString() << "\n";
    return true;
  }
  if (words.size() >= 5 && EqualsIgnoreCase(words[1], "MKB") &&
      EqualsIgnoreCase(words[2], "AT") &&
      EqualsIgnoreCase(words[3], "VERSION")) {
    if (!RequireSingleShard("SHOW MKB AT VERSION")) return false;
    uint64_t version = 0;
    if (!ParseTicks(words[4], &version)) return false;
    const Result<PinnedMkb> pinned = sys().PinVersion(version);
    if (!pinned.ok()) {
      Err() << "error: " << pinned.status() << "\n";
      return false;
    }
    Out() << "-- version " << pinned.value().id() << "\n"
          << pinned.value().mkb->ToString();
    return true;
  }
  if (words.size() >= 5 && EqualsIgnoreCase(words[1], "VIEWS") &&
      EqualsIgnoreCase(words[2], "AT") &&
      EqualsIgnoreCase(words[3], "VERSION")) {
    if (!RequireSingleShard("SHOW VIEWS AT VERSION")) return false;
    uint64_t version = 0;
    if (!ParseTicks(words[4], &version)) return false;
    const Result<std::string> views = sys().ViewsTextAt(version);
    if (!views.ok()) {
      Err() << "error: " << views.status() << "\n";
      return false;
    }
    Out() << "-- view pool at version " << version << "\n" << views.value();
    return true;
  }
  if (words.size() >= 3 && EqualsIgnoreCase(words[1], "EXECUTOR") &&
      EqualsIgnoreCase(words[2], "STATS")) {
    const ExecutorCounters& counters = GlobalExecutorCounters();
    Out() << "strategy: " << JoinStrategyToString(sharded_.executor_strategy())
          << "\n"
          << "queries: nested_loop " << counters.nested_loop_queries.load()
          << ", hash " << counters.hash_queries.load() << ", vectorized "
          << counters.vectorized_queries.load() << "; cartesian fallbacks "
          << counters.cartesian_fallbacks.load() << "\n";
    return true;
  }
  if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SYNC") &&
      EqualsIgnoreCase(words[2], "STATS")) {
    Out() << "enumeration: " << sys().last_sync_stats().ToString() << "\n";
    // Per-view truncation/deadline lists and watchdog count for the last
    // change or preview (name-ordered, deterministic).
    const std::string diagnostics = sys().last_sync_diagnostics().ToString();
    if (!diagnostics.empty()) Out() << "sync: " << diagnostics << "\n";
    Out() << "admission: " << sharded_.admission_stats().ToString() << "\n";
    return true;
  }
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "SOURCES")) {
    return ShowSources();
  }
  if (words.size() >= 2 && EqualsIgnoreCase(words[1], "REPLICATION")) {
    // The replicated server intercepts this before the console; reaching
    // here means the node runs without a replication hub.
    Out() << "replication: disabled\n";
    return true;
  }
  if ((words.size() >= 2 && (EqualsIgnoreCase(words[1], "MKB") ||
                             EqualsIgnoreCase(words[1], "HYPERGRAPH") ||
                             EqualsIgnoreCase(words[1], "VIEWS"))) ||
      (words.size() >= 3 && EqualsIgnoreCase(words[1], "VIEW"))) {
    return SnapshotShow(words, Out(), Err());
  }
  Err() << "error: SHOW expects MKB, HYPERGRAPH, VIEWS, VIEW <name>, "
           "VERSIONS, MKB|VIEWS AT VERSION <n>, SHARD STATS, SCRUB "
           "STATS or SYNC STATS\n";
  return false;
}

// SYNC DRYRUN <change words> [AT VERSION n]: the full what-if pipeline.
bool Console::DryRun(std::vector<std::string> rest) {
  if (!RequireSingleShard("SYNC DRYRUN")) return false;
  std::optional<uint64_t> at_version;
  if (rest.size() >= 3 && EqualsIgnoreCase(rest[rest.size() - 3], "AT") &&
      EqualsIgnoreCase(rest[rest.size() - 2], "VERSION")) {
    uint64_t version = 0;
    if (!ParseTicks(rest.back(), &version)) return false;
    at_version = version;
    rest.resize(rest.size() - 3);
  }
  Result<CapabilityChange> change =
      Status::InvalidArgument("SYNC DRYRUN expects DELETE or RENAME");
  if (rest.size() >= 3 && EqualsIgnoreCase(rest[0], "DELETE")) {
    change = MakeDelete(rest);
  } else if (rest.size() >= 5 && EqualsIgnoreCase(rest[0], "RENAME") &&
             EqualsIgnoreCase(rest[3], "TO")) {
    change = MakeRename(rest);
  }
  if (!change.ok()) {
    Err() << "error: " << change.status() << "\n";
    return false;
  }
  const Result<DryRunReport> report =
      at_version.has_value() ? sys().DryRunChangeAt(change.value(), *at_version)
                             : sys().DryRunChange(change.value());
  if (!report.ok()) {
    Err() << "error: " << report.status() << "\n";
    return false;
  }
  Out() << report.value().ToString();
  return true;
}

bool Console::Rollback(const std::string& version_word) {
  if (!RequireSingleShard("ROLLBACK")) return false;
  uint64_t version = 0;
  if (!ParseTicks(version_word, &version)) return false;
  const Result<uint64_t> committed = sys().RollbackToVersion(version);
  if (!committed.ok()) {
    Err() << "error: " << committed.status() << "\n";
    return false;
  }
  sharded_.PublishSnapshot();
  Out() << "rolled back to version " << version << " (committed as v"
        << committed.value() << ")\n";
  return true;
}

// SCRUB fails the script on any detected corruption, so CI chaos jobs can
// gate on its exit code.
bool Console::Scrub() {
  if (!RequireSingleShard("SCRUB")) return false;
  last_scrub_ = sys().ScrubVersions();
  Out() << last_scrub_->ToString() << "\n";
  if (last_scrub_->corruptions > 0) {
    Err() << "error: scrub found " << last_scrub_->corruptions
          << " corruption(s)\n";
    return false;
  }
  return true;
}

Result<CapabilityChange> Console::MakeDelete(
    const std::vector<std::string>& words) {
  if (EqualsIgnoreCase(words[1], "RELATION")) {
    return CapabilityChange::DeleteRelation(words[2]);
  }
  if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
    const std::vector<std::string> parts = Split(words[2], '.');
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          "DELETE ATTRIBUTE expects <relation>.<attribute>");
    }
    return CapabilityChange::DeleteAttribute(parts[0], parts[1]);
  }
  return Status::InvalidArgument("DELETE expects RELATION or ATTRIBUTE");
}

Result<CapabilityChange> Console::MakeRename(
    const std::vector<std::string>& words) {
  if (EqualsIgnoreCase(words[1], "RELATION")) {
    return CapabilityChange::RenameRelation(words[2], words[4]);
  }
  if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
    const std::vector<std::string> parts = Split(words[2], '.');
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          "RENAME ATTRIBUTE expects <relation>.<attribute>");
    }
    return CapabilityChange::RenameAttribute(parts[0], parts[1], words[4]);
  }
  return Status::InvalidArgument("RENAME expects RELATION or ATTRIBUTE");
}

// Parses a non-negative integer command argument.
bool Console::ParseTicks(const std::string& word, uint64_t* out) {
  try {
    *out = std::stoull(word);
    return true;
  } catch (...) {
    Err() << "error: expected a non-negative integer, got " << word << "\n";
    return false;
  }
}

// A fresh monitor aligned to the console's federation clock. Stats are
// accumulated per command into fed_stats_.
federation::FederationMonitor Console::MakeMonitor() {
  federation::FederationMonitor monitor(&sys(), &transport_);
  monitor.SetNow(federation_now_);
  return monitor;
}

bool Console::TrackSources() {
  if (!RequireSingleShard("TRACK SOURCES")) return false;
  federation::FederationMonitor monitor = MakeMonitor();
  const Status status = monitor.TrackSources();
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  Out() << "tracking " << sys().source_membership().size()
        << " sources at tick " << federation_now_ << "\n";
  return true;
}

bool Console::ShowSources() {
  if (!RequireSingleShard("SHOW SOURCES")) return false;
  if (sys().source_membership().empty()) {
    Out() << "no tracked sources (use TRACK SOURCES)\n";
    return true;
  }
  for (const auto& [source, m] : sys().source_membership()) {
    Out() << "  " << source << "  "
          << federation::SourceStateToString(m.state)
          << "  breaker=" << federation::BreakerStateToString(m.breaker)
          << " failures=" << m.consecutive_failures;
    if (m.state == federation::SourceState::kDeparted) {
      Out() << " lease=departed";
    } else if (m.lease_expires > federation_now_) {
      Out() << " lease=+" << (m.lease_expires - federation_now_)
            << " next_probe=+"
            << (m.next_probe > federation_now_ ? m.next_probe - federation_now_
                                               : 0);
    } else {
      Out() << " lease=EXPIRED";
    }
    Out() << "\n";
  }
  return true;
}

bool Console::SetSource(const std::string& source, const std::string& knob,
                        const std::string& value) {
  if (!RequireSingleShard("SET SOURCE")) return false;
  uint64_t ticks = 0;
  if (!ParseTicks(value, &ticks)) return false;
  const std::vector<std::string> sources = sys().mkb().catalog().SourceNames();
  if (std::find(sources.begin(), sources.end(), source) == sources.end()) {
    Err() << "error: unknown source " << source << "\n";
    return false;
  }
  const auto& table = sys().source_membership();
  const auto it = table.find(source);
  federation::SourceMembership m =
      it != table.end() ? it->second
                        : federation::MakeHealthy({}, federation_now_);
  if (EqualsIgnoreCase(knob, "LEASE")) {
    m.config.lease_ticks = ticks;
    m.lease_expires = federation_now_ + ticks;
  } else if (EqualsIgnoreCase(knob, "PROBE")) {
    m.config.probe_interval_ticks = ticks;
    m.next_probe = federation_now_ + ticks;
  } else if (EqualsIgnoreCase(knob, "BREAKER")) {
    m.config.breaker_open_ticks = ticks;
  } else {
    Err() << "error: SET SOURCE expects LEASE, PROBE or BREAKER\n";
    return false;
  }
  const Status status = sys().SetSourceMembership(source, m);
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  Out() << "source " << source << " " << ToLower(knob) << " = " << ticks
        << " ticks\n";
  return true;
}

bool Console::FaultSource(const std::string& source,
                          const std::string& kind_word,
                          const std::string& from_word,
                          const std::string& to_word) {
  const Result<federation::SimulatedTransport::FaultKind> kind =
      federation::ParseFaultKind(kind_word);
  if (!kind.ok()) {
    Err() << "error: " << kind.status() << "\n";
    return false;
  }
  federation::SimulatedTransport::FaultWindow window;
  if (!ParseTicks(from_word, &window.from) ||
      !ParseTicks(to_word, &window.to)) {
    return false;
  }
  window.kind = kind.value();
  transport_.AddFault(source, window);
  Out() << "fault " << federation::FaultKindToString(window.kind) << " on "
        << source << " for ticks [" << window.from << ", " << window.to
        << ")\n";
  return true;
}

bool Console::Tick(const std::string& count_word) {
  if (!RequireSingleShard("TICK")) return false;
  uint64_t count = 0;
  if (!ParseTicks(count_word, &count)) return false;
  federation::FederationMonitor monitor = MakeMonitor();
  const Status status = monitor.AdvanceTo(federation_now_ + count);
  if (!status.ok()) {
    Err() << "error: " << status << "\n";
    return false;
  }
  federation_now_ += count;
  // Departure cascades committed capability changes on shard 0 directly;
  // republish so snapshot readers see them.
  sharded_.PublishSnapshot();
  const federation::MonitorStats& stats = monitor.stats();
  Out() << "tick " << federation_now_ << ": probes=" << stats.probes
        << " ok=" << stats.successes << " failed=" << stats.failures
        << " transitions=" << stats.state_transitions
        << " departures=" << stats.departures << "\n";
  // A departure ran the SourceLeaves cascade: show its reports.
  if (stats.departures > 0) {
    const auto& log = sys().change_log();
    const size_t shown = std::min<size_t>(log.size(), stats.departures);
    for (size_t i = log.size() - shown; i < log.size(); ++i) {
      Out() << log[i].ToString();
    }
  }
  return true;
}

bool Console::Change(const Result<CapabilityChange>& change, bool preview) {
  if (!change.ok()) {
    Err() << "error: " << change.status() << "\n";
    return false;
  }
  if (preview && !RequireSingleShard("PREVIEW")) return false;
  const Result<ChangeReport> report =
      preview ? sys().PreviewChange(change.value())
              : sharded_.ApplyChange(change.value());
  if (!report.ok()) {
    Err() << "error: " << report.status() << "\n";
    return false;
  }
  if (preview) Out() << "(preview — nothing applied)\n";
  Out() << report.value().ToString();
  // Enumeration counters ride along after the report (never inside it:
  // ChangeReport bytes are journaled/checkpointed and must not change).
  // With several shards the per-shard counters are not meaningful as a
  // single line, so they are only printed in the classic 1-shard mode.
  if (sharded_.shard_count() == 1) {
    const EnumerationStats& stats = sys().last_sync_stats();
    if (stats.combos_generated > 0 || stats.candidates_yielded > 0) {
      Out() << "enumeration: " << stats.ToString() << "\n";
    }
    const std::string diagnostics = sys().last_sync_diagnostics().ToString();
    if (!diagnostics.empty()) Out() << "sync: " << diagnostics << "\n";
  }
  return true;
}

}  // namespace net
}  // namespace eve
