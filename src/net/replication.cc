#include "net/replication.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "net/metrics.h"

namespace eve {
namespace net {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowMillis() { return NowMicros() / 1000; }

// Blocking connect to host:port; -1 on failure.
int DialBlocking(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SetSocketTimeouts(int fd, uint64_t micros) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(micros / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Sends a complete frame on a blocking socket. False on any socket error.
bool SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// What one blocking read attempt produced.
enum class ReadOutcome { kFrame, kTimeout, kClosed };

// Reads until the decoder yields a frame, the receive timeout fires, or
// the peer closes.
ReadOutcome ReadFrame(int fd, FrameDecoder* decoder, Frame* out) {
  char buf[65536];
  while (true) {
    if (std::optional<Frame> frame = decoder->Next()) {
      *out = std::move(*frame);
      return ReadOutcome::kFrame;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return ReadOutcome::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
      return ReadOutcome::kClosed;
    }
    decoder->Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

// EVE_REPL_TRACE=1 in the environment turns on stderr tracing of role
// transitions and stream breaks — the chaos harness reads these lines to
// reconstruct failover timelines across its child processes.
bool TraceEnabled() {
  static const bool enabled = std::getenv("EVE_REPL_TRACE") != nullptr;
  return enabled;
}

void Trace(const std::string& node, const std::string& message) {
  if (!TraceEnabled()) return;
  std::ostringstream os;
  os << "[repl " << node << " t=" << NowMillis() << "ms] " << message << "\n";
  std::cerr << os.str();
}

}  // namespace

std::string_view ReplRoleToString(ReplRole role) {
  switch (role) {
    case ReplRole::kSingle:
      return "single";
    case ReplRole::kPrimary:
      return "primary";
    case ReplRole::kReplica:
      return "replica";
    case ReplRole::kCandidate:
      return "candidate";
  }
  return "unknown";
}

std::string NodeAddress::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<NodeAddress> ParseNodeAddress(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return Status::InvalidArgument("expected <host>:<port>, got: " + text);
  }
  NodeAddress address;
  address.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("bad port in address: " + text);
  }
  address.port = static_cast<uint16_t>(port);
  return address;
}

Result<std::map<std::string, NodeAddress>> ParseCluster(
    const std::string& spec) {
  std::map<std::string, NodeAddress> cluster;
  for (const std::string& entry : Split(spec, ',')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "cluster entry expects <node>=<host>:<port>, got: " +
          std::string(trimmed));
    }
    const std::string node(Trim(trimmed.substr(0, eq)));
    Result<NodeAddress> address =
        ParseNodeAddress(std::string(Trim(trimmed.substr(eq + 1))));
    if (!address.ok()) return address.status();
    if (!cluster.emplace(node, address.value()).second) {
      return Status::InvalidArgument("duplicate cluster node: " + node);
    }
  }
  if (cluster.empty()) {
    return Status::InvalidArgument("empty cluster spec");
  }
  return cluster;
}

std::string ChooseLeader(const std::vector<ReplStatus>& candidates) {
  const ReplStatus* best = nullptr;
  for (const ReplStatus& candidate : candidates) {
    if (candidate.node_id.empty()) continue;
    if (best == nullptr || candidate.epoch > best->epoch ||
        (candidate.epoch == best->epoch &&
         (candidate.applied_version > best->applied_version ||
          (candidate.applied_version == best->applied_version &&
           candidate.node_id < best->node_id)))) {
      best = &candidate;
    }
  }
  return best == nullptr ? "" : best->node_id;
}

// --- ReplicationHub ---------------------------------------------------------

ReplicationHub::ReplicationHub(ReplicationOptions options, Console* console)
    : options_(std::move(options)), console_(console) {}

Status ReplicationHub::Initialize() {
  if (options_.node_id.empty()) {
    return Status::InvalidArgument("replication requires a node id");
  }
  if (options_.cluster.count(options_.node_id) == 0) {
    return Status::InvalidArgument("node " + options_.node_id +
                                   " is not in the cluster spec");
  }
  uint64_t persisted = 0;
  const Result<std::string> state =
      ReadFileToString(options_.data_dir + "/node_state");
  if (state.ok()) {
    std::istringstream is(state.value());
    std::string word;
    is >> word >> persisted;
    if (word != "epoch") {
      return Status::ParseError("bad node_state file: " + state.value());
    }
    uint64_t observed = 0;
    if (is >> word >> observed && word == "observed") {
      observed_epoch_.store(std::max(observed, persisted));
    } else {
      observed_epoch_.store(persisted);
    }
    // The vote ledger survives restarts: a node that voted, crashed and
    // came back must not vote again in the same epoch.
    uint64_t voted_epoch = 0;
    std::string voted_for;
    if (is >> word >> voted_epoch >> voted_for && word == "voted") {
      std::lock_guard<std::mutex> lock(state_mu_);
      voted_epoch_ = voted_epoch;
      voted_for_ = voted_for;
    }
  }
  if (options_.primary_of.empty()) {
    // Fresh primary: a new epoch fences out anything the previous
    // incarnation shipped but did not replicate.
    EVE_RETURN_IF_ERROR(PersistEpoch(persisted + 1));
    epoch_.store(persisted + 1);
    role_.store(ReplRole::kPrimary);
    last_peer_contact_micros_.store(NowMicros());
  } else {
    const auto it = options_.cluster.find(options_.primary_of);
    if (it == options_.cluster.end()) {
      return Status::InvalidArgument("unknown primary node: " +
                                     options_.primary_of);
    }
    epoch_.store(persisted);
    role_.store(ReplRole::kReplica);
    std::lock_guard<std::mutex> lock(mu_);
    primary_address_ = it->second.ToString();
  }
  return Status::OK();
}

Status ReplicationHub::WriteNodeStateLocked(uint64_t epoch) {
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  std::string text = "epoch " + std::to_string(epoch) + "\nobserved " +
                     std::to_string(observed_epoch_.load()) + "\n";
  if (voted_epoch_ != 0 && !voted_for_.empty()) {
    text += "voted " + std::to_string(voted_epoch_) + " " + voted_for_ + "\n";
  }
  return AtomicWriteFile(options_.data_dir + "/node_state", text);
}

Status ReplicationHub::PersistEpoch(uint64_t epoch) {
  uint64_t observed = observed_epoch_.load();
  while (observed < epoch &&
         !observed_epoch_.compare_exchange_weak(observed, epoch)) {
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  return WriteNodeStateLocked(epoch);
}

void ReplicationHub::NoteObservedEpoch(uint64_t epoch) {
  uint64_t observed = observed_epoch_.load();
  if (epoch <= observed) return;
  while (observed < epoch &&
         !observed_epoch_.compare_exchange_weak(observed, epoch)) {
  }
  // Best-effort persistence: losing this write only weakens the fence back
  // to the last persisted epoch — the election max over live statuses
  // still prevents collisions in every partition the node can see.
  std::lock_guard<std::mutex> lock(state_mu_);
  (void)WriteNodeStateLocked(epoch_.load());
}

ReplVote ReplicationHub::HandleVoteRequest(const ReplVoteReq& request) {
  ReplVote vote;
  vote.voter = options_.node_id;
  vote.epoch = request.epoch;
  vote.granted = false;
  // The requested epoch feeds the promotion fence whether or not the vote
  // is granted: this node must never later mint an epoch the candidate
  // may already be using.
  NoteObservedEpoch(request.epoch);
  if (request.candidate.empty() ||
      options_.cluster.count(request.candidate) == 0) {
    return vote;
  }
  const uint64_t own_epoch = epoch_.load();
  if (request.epoch <= own_epoch) return vote;
  // Up-to-date rule: never elect a leader whose log is behind this
  // node's — the acked-commit quorum intersects every vote majority, so
  // this check is what makes acknowledged commits survive elections.
  if (request.last_epoch < own_epoch ||
      (request.last_epoch == own_epoch &&
       request.last_position < position_.load())) {
    return vote;
  }
  // Leader stickiness: a replica still inside its primary's lease refuses
  // to depose it, so a candidate partitioned from a healthy primary (but
  // not from its replicas) cannot assemble a majority against it.
  const ReplRole role = role_.load();
  if (role == ReplRole::kPrimary || role == ReplRole::kSingle) return vote;
  if (role == ReplRole::kReplica && request.candidate != options_.node_id) {
    const uint64_t heard = last_heartbeat_micros_.load();
    if (heard != 0 && NowMicros() - heard <= options_.lease_micros) {
      return vote;
    }
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  if (request.epoch < voted_epoch_ ||
      (request.epoch == voted_epoch_ && voted_for_ != request.candidate)) {
    return vote;  // already spent this epoch's vote on someone else
  }
  const uint64_t prev_epoch = voted_epoch_;
  const std::string prev_for = voted_for_;
  voted_epoch_ = request.epoch;
  voted_for_ = request.candidate;
  // The grant is only valid once durable: an unpersisted vote could be
  // re-cast for a different candidate after a restart.
  if (!WriteNodeStateLocked(epoch_.load()).ok()) {
    voted_epoch_ = prev_epoch;
    voted_for_ = prev_for;
    return vote;
  }
  vote.granted = true;
  Trace(options_.node_id, "voted for " + request.candidate + " in epoch " +
                              std::to_string(request.epoch));
  return vote;
}

void ReplicationHub::OnJournalRecord(JournalRecordKind kind,
                                     std::string_view body) {
  if (role_.load() != ReplRole::kPrimary) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = position_.fetch_add(1) + 1;
  ShippedRecord shipped;
  shipped.seq = seq;
  shipped.kind = static_cast<uint8_t>(kind);
  shipped.body = std::string(body);
  ReplRecord wire;
  wire.epoch = epoch_.load();
  wire.seq = seq;
  wire.kind = shipped.kind;
  wire.body = shipped.body;
  const std::string frame =
      EncodeFrame(FrameType::kReplRecord, EncodeReplRecord(wire));
  ring_.push_back(std::move(shipped));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  for (auto it = peers_.begin(); it != peers_.end();) {
    // An armed ship.record fault breaks exactly ONE peer's stream: that
    // peer gets a goodbye and re-syncs from a fresh hello; the record was
    // never delivered out of order because the peer is dropped before any
    // later record could reach it.
    const Status injected = Failpoints::Instance().Hit(fp::kReplShipRecord);
    if (!injected.ok()) {
      it->second.sender(
          EncodeFrame(FrameType::kGoodbye, "replication stream fault"));
      it = peers_.erase(it);
      continue;
    }
    it->second.sender(frame);
    records_shipped_.fetch_add(1);
    ++it;
  }
}

Status ReplicationHub::Subscribe(const ReplHello& hello, uint64_t session_id,
                                 PeerSender sender) {
  EVE_RETURN_IF_ERROR(Failpoints::Instance().Hit(fp::kReplHello));
  if (role_.load() != ReplRole::kPrimary) {
    Trace(options_.node_id, "refused hello from " + hello.node_id +
                                ": not primary");
    return Status::FailedPrecondition(
        "not primary (role=" + std::string(ReplRoleToString(role_.load())) +
        ")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t pos = position_.load();
  const bool caught_up = hello.applied_version == pos;
  const bool in_ring = !ring_.empty() && hello.applied_version + 1 >=
                                             ring_.front().seq &&
                       hello.applied_version <= pos;
  // Resume is offered to any CLEAN replica position the ring still covers.
  // A non-zero hello epoch asserts "my durable state is exactly the acked
  // lineage through applied_version" — an older epoch is fine (the peer
  // slept through a failover) but ONLY up to the position this node held
  // when it was promoted: the election's up-to-date vote rule certifies
  // this primary carried every acked commit at that moment, so an
  // old-epoch position beyond the promotion base can only be a divergent
  // suffix (same seq range, different records) this primary never saw —
  // resuming it would silently merge lineages. Nodes that cannot claim a
  // clean prefix (restarts, failed installs, former primaries with an
  // unreplicated suffix) hello with epoch 0 and bootstrap. A FUTURE epoch
  // is nonsense: bootstrap it too.
  const uint64_t epoch = epoch_.load();
  const bool prefix_certain =
      hello.epoch == epoch ||
      hello.applied_version <= promotion_base_position_.load();
  const bool resumed = hello.epoch != 0 && hello.epoch <= epoch &&
                       prefix_certain && (caught_up || in_ring);
  if (resumed) {
    // Resume: replay the retained tail, then the live stream continues.
    for (const ShippedRecord& record : ring_) {
      if (record.seq <= hello.applied_version) continue;
      ReplRecord wire;
      wire.epoch = epoch_.load();
      wire.seq = record.seq;
      wire.kind = record.kind;
      wire.body = record.body;
      sender(EncodeFrame(FrameType::kReplRecord, EncodeReplRecord(wire)));
      records_shipped_.fetch_add(1);
    }
    resumes_.fetch_add(1);
    Trace(options_.node_id,
          "resumed " + hello.node_id + " from seq " +
              std::to_string(hello.applied_version) + " (tip " +
              std::to_string(pos) + ")");
  } else {
    // Bootstrap: a full checkpoint at the current position. The caller
    // holds the exclusive console lock, so the rendered state corresponds
    // exactly to `pos` — nothing can append between render and register.
    // The checkpoint ships in chunks: it routinely outgrows kMaxPayload,
    // and a frame that cannot be decoded (or queued) would strand the
    // replica in a bootstrap loop forever.
    EVE_RETURN_IF_ERROR(Failpoints::Instance().Hit(fp::kReplSnapshotRender));
    const std::string checkpoint = console_->RenderSnapshotText();
    const size_t chunk_bytes = std::max<size_t>(1, options_.snapshot_chunk_bytes);
    size_t offset = 0;
    do {
      ReplSnapshot chunk;
      chunk.epoch = epoch_.load();
      chunk.version = pos;  // the replication position of this state
      chunk.primary_node = options_.node_id;
      chunk.offset = offset;
      chunk.total = checkpoint.size();
      chunk.checkpoint =
          checkpoint.substr(offset, std::min(chunk_bytes,
                                             checkpoint.size() - offset));
      offset += chunk.checkpoint.size();
      sender(EncodeFrame(FrameType::kReplSnapshot, EncodeReplSnapshot(chunk)));
    } while (offset < checkpoint.size());
    snapshots_sent_.fetch_add(1);
    Trace(options_.node_id,
          "snapshot to " + hello.node_id + " at seq " + std::to_string(pos) +
              " (" + std::to_string(checkpoint.size()) + " bytes, " +
              std::to_string((checkpoint.size() + chunk_bytes - 1) /
                                 chunk_bytes +
                             (checkpoint.empty() ? 1 : 0)) +
              " chunks)");
  }
  Peer peer;
  peer.node_id = hello.node_id;
  peer.session_id = session_id;
  peer.sender = std::move(sender);
  // Only a RESUMED peer's claimed position counts as acked: its prefix
  // was just verified against this lineage. A bootstrapping peer starts
  // at 0 — its snapshot install is still in flight, and counting the
  // hello's unverified claim would let a semi-sync commit be acknowledged
  // against state the replica never durably held.
  peer.acked_seq = resumed ? std::min(hello.applied_version, pos) : 0;
  peer.acked_version = 0;
  peer.last_contact_micros = NowMicros();
  peers_[session_id] = std::move(peer);
  last_peer_contact_micros_.store(NowMicros());
  return Status::OK();
}

void ReplicationHub::OnAck(const ReplAck& ack) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, peer] : peers_) {
      if (peer.node_id != ack.node_id) continue;
      peer.acked_seq = std::max(peer.acked_seq, ack.applied_seq);
      peer.acked_version = std::max(peer.acked_version, ack.applied_version);
      peer.last_contact_micros = NowMicros();
    }
  }
  acks_received_.fetch_add(1);
  last_peer_contact_micros_.store(NowMicros());
  ack_cv_.notify_all();
}

void ReplicationHub::OnPeerGone(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(session_id);
}

void ReplicationHub::BroadcastHeartbeat() {
  if (role_.load() != ReplRole::kPrimary) return;
  ReplHeartbeat heartbeat;
  heartbeat.epoch = epoch_.load();
  heartbeat.tip_version = position_.load();
  heartbeat.primary_node = options_.node_id;
  const std::string frame =
      EncodeFrame(FrameType::kReplHeartbeat, EncodeReplHeartbeat(heartbeat));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, peer] : peers_) peer.sender(frame);
}

uint64_t ReplicationHub::effective_ack_replicas() const {
  const size_t cluster = options_.cluster.size();
  if (cluster <= 1 || options_.ack_replicas == 0) return 0;
  // Clamp UP to floor(cluster/2): primary + acked replicas then form a
  // majority, which intersects every election vote majority — the
  // intersection node's up-to-date vote check blocks any candidate whose
  // log is missing an acked commit. Clamp DOWN to the peer count so a
  // misconfigured count cannot make every commit unackable.
  return std::min<uint64_t>(
      cluster - 1,
      std::max<uint64_t>(options_.ack_replicas, cluster / 2));
}

bool ReplicationHub::RequiresAck() const {
  if (role_.load() != ReplRole::kPrimary) return false;
  return effective_ack_replicas() > 0;
}

bool ReplicationHub::WaitForReplication(uint64_t position) {
  const uint64_t need = effective_ack_replicas();
  if (need == 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  const bool acked = ack_cv_.wait_for(
      lock, std::chrono::microseconds(options_.ack_timeout_micros),
      [this, position, need] {
        uint64_t count = 0;
        for (const auto& [id, peer] : peers_) {
          if (peer.acked_seq >= position) ++count;
        }
        return count >= need || role_.load() != ReplRole::kPrimary;
      });
  if (!acked || role_.load() != ReplRole::kPrimary) {
    ack_timeouts_.fetch_add(1);
    return false;
  }
  return true;
}

uint64_t ReplicationHub::MicrosSinceReplicaContact() const {
  const uint64_t last = last_peer_contact_micros_.load();
  if (last == 0) return 0;
  const uint64_t now = NowMicros();
  return now > last ? now - last : 0;
}

void ReplicationHub::SetAppliedPosition(uint64_t seq, uint64_t version) {
  position_.store(seq);
  applied_version_.store(version);
}

void ReplicationHub::OnPrimaryHeartbeat(const ReplHeartbeat& heartbeat) {
  if (heartbeat.epoch < epoch_.load()) return;  // stale primary
  primary_tip_position_.store(
      std::max(primary_tip_position_.load(), heartbeat.tip_version));
  last_heartbeat_micros_.store(NowMicros());
}

std::string ReplicationHub::primary_address() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_address_;
}

void ReplicationHub::SetPrimaryAddress(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  primary_address_ = address;
}

bool ReplicationHub::WithinStalenessBound(uint64_t bound, uint64_t* lag_out,
                                          bool* lag_known_out) const {
  if (role_.load() != ReplRole::kReplica) {
    if (lag_out != nullptr) *lag_out = 0;
    if (lag_known_out != nullptr) *lag_known_out = true;
    return true;
  }
  const uint64_t heard = last_heartbeat_micros_.load();
  const bool known =
      heard != 0 && NowMicros() - heard <= options_.lease_micros;
  const uint64_t tip = primary_tip_position_.load();
  const uint64_t applied = position_.load();
  const uint64_t lag = tip > applied ? tip - applied : 0;
  if (lag_out != nullptr) *lag_out = lag;
  if (lag_known_out != nullptr) *lag_known_out = known;
  // An unknown lag (no live heartbeat) violates EVERY bound: the replica
  // cannot prove it is fresh enough.
  return known && lag <= bound;
}

Status ReplicationHub::Promote(uint64_t new_epoch) {
  EVE_RETURN_IF_ERROR(PersistEpoch(new_epoch));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep the ring: it holds the tail this node applied (or shipped) under
    // the old lineage, which the election just certified as canonical. A
    // surviving replica one failover behind resumes from it instead of
    // paying a full snapshot bootstrap.
    peers_.clear();
    primary_address_.clear();
  }
  epoch_.store(new_epoch);
  // Everything at or below this position was certified by the election
  // (the up-to-date vote rule); anything past it under an OLDER epoch is
  // someone else's divergent suffix and must bootstrap, never resume.
  promotion_base_position_.store(position_.load());
  role_.store(ReplRole::kPrimary);
  last_peer_contact_micros_.store(NowMicros());
  promotions_.fetch_add(1);
  ack_cv_.notify_all();
  return Status::OK();
}

Status ReplicationHub::Demote(ReplRole to) {
  if (role_.load() == ReplRole::kPrimary) demotions_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The ring survives demotion too: if this node later WINS an election,
    // its tail is by definition the canonical lineage (ChooseLeader picked
    // the longest log), so serving resumes from it is correct. If it instead
    // rejoins as a replica, InstallSnapshot/AdoptEpoch clears it.
    peers_.clear();
  }
  role_.store(to);
  // Wake semi-sync waiters: their commit can no longer be acked under this
  // node's authority, and the predicate re-check fails on the role.
  ack_cv_.notify_all();
  return Status::OK();
}

Status ReplicationHub::AdoptEpoch(uint64_t epoch) {
  EVE_RETURN_IF_ERROR(PersistEpoch(epoch));
  epoch_.store(epoch);
  // Only snapshot installs adopt epochs, and an install jumps the position
  // to the snapshot's version — possibly BELOW this node's old position.
  // Any retained tail is from the abandoned lineage; mixing it with records
  // applied after the jump would corrupt a later resume. Drop it.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
  }
  return Status::OK();
}

Status ReplicationHub::RaiseEpoch(uint64_t epoch) {
  if (epoch <= epoch_.load()) return Status::OK();
  EVE_RETURN_IF_ERROR(PersistEpoch(epoch));
  epoch_.store(epoch);
  return Status::OK();
}

void ReplicationHub::RetainApplied(uint64_t seq, uint8_t kind,
                                   std::string_view body) {
  std::lock_guard<std::mutex> lock(mu_);
  ShippedRecord applied;
  applied.seq = seq;
  applied.kind = kind;
  applied.body = std::string(body);
  ring_.push_back(std::move(applied));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

ReplStatus ReplicationHub::SelfStatus() const {
  ReplStatus status;
  status.node_id = options_.node_id;
  status.role = role_.load();
  status.epoch = epoch_.load();
  status.applied_version = position_.load();
  status.tip_version = status.role == ReplRole::kPrimary
                           ? position_.load()
                           : primary_tip_position_.load();
  if (status.role == ReplRole::kPrimary) {
    const auto it = options_.cluster.find(options_.node_id);
    if (it != options_.cluster.end()) status.primary_hint = it->second.ToString();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    status.primary_hint = primary_address_;
  }
  return status;
}

std::string ReplicationHub::RenderStatus() const {
  const ReplStatus self = SelfStatus();
  std::ostringstream os;
  os << "replication: node=" << self.node_id << " role="
     << ReplRoleToString(self.role) << " epoch=" << self.epoch
     << " position=" << self.applied_version
     << " version=" << applied_version_.load() << "\n";
  os << "  cluster:";
  for (const auto& [node, address] : options_.cluster) {
    os << " " << node << "=" << address.ToString();
  }
  os << "\n";
  if (self.role == ReplRole::kPrimary) {
    const uint64_t now = NowMicros();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, peer] : peers_) {
      const uint64_t pos = position_.load();
      os << "  replica " << peer.node_id << " acked_position="
         << peer.acked_seq << " acked_version=" << peer.acked_version
         << " lag=" << (pos > peer.acked_seq ? pos - peer.acked_seq : 0)
         << " last_contact_ms="
         << (now > peer.last_contact_micros
                 ? (now - peer.last_contact_micros) / 1000
                 : 0)
         << "\n";
    }
  } else {
    uint64_t lag = 0;
    bool known = false;
    WithinStalenessBound(UINT64_MAX, &lag, &known);
    os << "  primary: "
       << (self.primary_hint.empty() ? "(unknown)" : self.primary_hint)
       << "\n";
    os << "  lag: ";
    if (known) {
      os << lag;
    } else {
      os << "unknown (no live heartbeat)";
    }
    os << "\n";
  }
  return os.str();
}

std::string ReplicationHub::MetricsText() const {
  std::ostringstream os;
  os << "eve_repl_role " << static_cast<int>(role_.load()) << "\n";
  os << "eve_repl_epoch " << epoch_.load() << "\n";
  os << "eve_repl_position " << position_.load() << "\n";
  os << "eve_repl_applied_version " << applied_version_.load() << "\n";
  uint64_t lag = 0;
  bool known = false;
  WithinStalenessBound(UINT64_MAX, &lag, &known);
  os << "eve_repl_lag " << lag << "\n";
  os << "eve_repl_lag_known " << (known ? 1 : 0) << "\n";
  os << "eve_repl_records_shipped_total " << records_shipped_.load() << "\n";
  os << "eve_repl_snapshots_sent_total " << snapshots_sent_.load() << "\n";
  os << "eve_repl_resumes_total " << resumes_.load() << "\n";
  os << "eve_repl_acks_received_total " << acks_received_.load() << "\n";
  os << "eve_repl_records_applied_total " << records_applied_.load() << "\n";
  os << "eve_repl_snapshots_installed_total " << snapshots_installed_.load()
     << "\n";
  os << "eve_repl_stream_breaks_total " << stream_breaks_.load() << "\n";
  os << "eve_repl_promotions_total " << promotions_.load() << "\n";
  os << "eve_repl_demotions_total " << demotions_.load() << "\n";
  os << "eve_repl_ack_timeouts_total " << ack_timeouts_.load() << "\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, peer] : peers_) {
    const uint64_t pos = position_.load();
    os << "eve_repl_peer_lag{node=\"" << peer.node_id << "\"} "
       << (pos > peer.acked_seq ? pos - peer.acked_seq : 0) << "\n";
  }
  return os.str();
}

ReplicationStats ReplicationHub::stats() const {
  ReplicationStats s;
  s.records_shipped = records_shipped_.load();
  s.snapshots_sent = snapshots_sent_.load();
  s.resumes = resumes_.load();
  s.acks_received = acks_received_.load();
  s.records_applied = records_applied_.load();
  s.snapshots_installed = snapshots_installed_.load();
  s.stream_breaks = stream_breaks_.load();
  s.promotions = promotions_.load();
  s.demotions = demotions_.load();
  s.ack_timeouts = ack_timeouts_.load();
  return s;
}

void ReplicationHub::RecordCrash(const std::string& site) {
  std::lock_guard<std::mutex> lock(crash_mu_);
  if (crashed_site_.empty()) crashed_site_ = site;
}

std::string ReplicationHub::crashed_site() const {
  std::lock_guard<std::mutex> lock(crash_mu_);
  return crashed_site_;
}

// --- ReplicaAgent -----------------------------------------------------------

ReplicaAgent::ReplicaAgent(ReplicationHub* hub, Console* console,
                           Server* server)
    : hub_(hub), console_(console), server_(server) {
  const ReplicationOptions& options = hub_->options();
  lease_config_.lease_ticks = std::max<uint64_t>(1, options.lease_micros / 1000);
  lease_config_.probe_interval_ticks =
      std::max<uint64_t>(1, options.heartbeat_micros / 1000);
  lease_config_.backoff_base_ticks = 5;
  lease_config_.backoff_cap_ticks =
      std::max<uint64_t>(10, lease_config_.lease_ticks / 8);
  lease_config_.jitter_ticks = 3;
}

ReplicaAgent::~ReplicaAgent() { Stop(); }

void ReplicaAgent::Start() {
  primary_lease_ = federation::MakeHealthy(lease_config_, NowMillis());
  thread_ = std::thread([this] { ThreadMain(); });
}

void ReplicaAgent::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

bool ReplicaAgent::Stopping() const { return stop_.load(); }

void ReplicaAgent::SleepMicros(uint64_t micros) {
  const uint64_t deadline = NowMicros() + micros;
  while (!Stopping() && NowMicros() < deadline) {
    const uint64_t left = deadline - NowMicros();
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min<uint64_t>(left, 10'000)));
  }
}

void ReplicaAgent::ThreadMain() {
  try {
    while (!Stopping()) {
      switch (hub_->role()) {
        case ReplRole::kSingle:
        case ReplRole::kPrimary:
          PrimaryTick();
          break;
        case ReplRole::kReplica:
          if (!RunReplicaSession() && !Stopping()) {
            hub_->Demote(ReplRole::kCandidate);
          }
          break;
        case ReplRole::kCandidate:
          RunElection();
          break;
      }
    }
  } catch (const SimulatedCrash& crash) {
    // A crash-armed repl.* site on the agent thread models this whole
    // node's process dying there: record the site and tear the node down
    // abruptly so eved exits 3 and recovery runs from local files.
    hub_->RecordCrash(crash.site());
    server_->Stop();
  }
}

void ReplicaAgent::PrimaryTick() {
  SleepMicros(hub_->options().heartbeat_micros);
  if (Stopping() || hub_->role() != ReplRole::kPrimary) return;
  hub_->BroadcastHeartbeat();
  // Isolation self-demotion: a primary that cannot reach ANY replica for a
  // full lease cannot get commits acked; it steps down so a healed
  // partition cannot produce two nodes accepting writes under live leases.
  if (hub_->cluster_size() > 1 &&
      hub_->MicrosSinceReplicaContact() > hub_->options().lease_micros) {
    Trace(hub_->options().node_id,
          "isolation self-demotion: no replica contact for " +
              std::to_string(hub_->MicrosSinceReplicaContact() / 1000) + "ms");
    std::unique_lock<std::shared_mutex> lock(server_->console_mutex());
    console_->SetSystemJournalAttached(false);
    hub_->Demote(ReplRole::kCandidate);
    // The primary stint may have journaled an unreplicated suffix: the
    // local position is no longer a resumable point on anyone's stream.
    stream_intact_ = false;
  }
}

Status ReplicaAgent::AcceptSnapshotChunk(const ReplSnapshot& chunk) {
  if (chunk.offset == 0) {
    pending_snapshot_ = chunk;
  } else {
    if (!pending_snapshot_.has_value() ||
        pending_snapshot_->epoch != chunk.epoch ||
        pending_snapshot_->version != chunk.version ||
        pending_snapshot_->total != chunk.total ||
        pending_snapshot_->checkpoint.size() != chunk.offset) {
      pending_snapshot_.reset();
      return Status::ParseError("snapshot chunk out of sequence");
    }
    pending_snapshot_->checkpoint.append(chunk.checkpoint);
  }
  if (pending_snapshot_->checkpoint.size() < pending_snapshot_->total) {
    return Status::OK();  // more chunks coming
  }
  const ReplSnapshot assembled = std::move(*pending_snapshot_);
  pending_snapshot_.reset();
  return InstallSnapshot(assembled);
}

Status ReplicaAgent::InstallSnapshot(const ReplSnapshot& snapshot) {
  std::unique_lock<std::shared_mutex> lock(server_->console_mutex());
  // Durable install order matters: reset the journal FIRST, then write the
  // checkpoint. A crash between the two leaves old-checkpoint + empty
  // journal — stale but consistent, and the next hello re-syncs. The
  // reverse order could recover new-checkpoint + old-journal: wrong state.
  // This is also the moment a rejoining old primary's unreplicated journal
  // suffix is discarded.
  Journal* journal = console_->attached_journal();
  if (journal != nullptr) {
    EVE_RETURN_IF_ERROR(journal->Reset());
  }
  EVE_RETURN_IF_ERROR(AtomicWriteFile(
      hub_->options().data_dir + "/checkpoint", snapshot.checkpoint));
  EVE_RETURN_IF_ERROR(console_->InstallSnapshotText(snapshot.checkpoint));
  EVE_RETURN_IF_ERROR(hub_->AdoptEpoch(snapshot.epoch));
  hub_->SetAppliedPosition(snapshot.version, console_->CurrentVersion());
  replayer_ = JournalReplayer();
  stream_intact_ = true;
  hub_->CountSnapshotInstalled();
  Trace(hub_->options().node_id,
        "installed snapshot epoch=" + std::to_string(snapshot.epoch) +
            " seq=" + std::to_string(snapshot.version));
  return Status::OK();
}

Status ReplicaAgent::ApplyRecord(const ReplRecord& record) {
  // error = this record could not be applied; the stream is abandoned and
  // re-synced from a fresh hello. crash = the replica process dies here
  // (thrown, caught in ThreadMain).
  EVE_RETURN_IF_ERROR(Failpoints::Instance().Hit(fp::kReplApplyRecord));
  std::unique_lock<std::shared_mutex> lock(server_->console_mutex());
  JournalRecord local;
  local.kind = static_cast<JournalRecordKind>(record.kind);
  local.body = record.body;
  // WAL first, with the primary's exact bytes: after a restart this
  // replica recovers from checkpoint + wal to exactly the state it acked.
  Journal* journal = console_->attached_journal();
  if (journal != nullptr) {
    EVE_RETURN_IF_ERROR(journal->Append(local.kind, local.body));
  }
  EVE_RETURN_IF_ERROR(console_->ApplyReplicatedRecord(local, &replayer_));
  hub_->SetAppliedPosition(record.seq, console_->CurrentVersion());
  hub_->RetainApplied(record.seq, record.kind, record.body);
  hub_->CountRecordApplied();
  return Status::OK();
}

bool ReplicaAgent::RunReplicaSession() {
  const std::string primary = hub_->primary_address();
  if (primary.empty()) return false;
  const Result<NodeAddress> address = ParseNodeAddress(primary);
  if (!address.ok()) return false;

  const int fd = DialBlocking(address.value().host, address.value().port);
  if (fd < 0) {
    const uint64_t now_ms = NowMillis();
    primary_lease_ =
        federation::OnProbeFailure(primary_lease_, "primary", now_ms);
    if (federation::LeaseExpired(primary_lease_, now_ms)) return false;
    SleepMicros(federation::BackoffDelay(lease_config_, hub_->options().node_id,
                                         ++reconnect_attempt_) *
                1000);
    return true;
  }
  reconnect_attempt_ = 0;
  SetSocketTimeouts(fd, std::max<uint64_t>(hub_->options().heartbeat_micros,
                                           10'000));

  pending_snapshot_.reset();  // a torn transfer never spans sessions
  ReplHello hello;
  hello.node_id = hub_->options().node_id;
  hello.epoch = stream_intact_ ? hub_->epoch() : 0;
  hello.applied_version = stream_intact_ ? hub_->position() : 0;
  if (!SendAll(fd, EncodeFrame(FrameType::kReplHello, EncodeReplHello(hello)))) {
    ::close(fd);
    return true;
  }

  FrameDecoder decoder;
  bool lease_expired = false;
  while (!Stopping() && hub_->role() == ReplRole::kReplica) {
    Frame frame;
    const ReadOutcome outcome = ReadFrame(fd, &decoder, &frame);
    const uint64_t now_ms = NowMillis();
    if (outcome == ReadOutcome::kClosed) {
      // Socket loss alone does not invalidate local state: the next hello
      // announces (epoch, position) and the primary re-ships the gap.
      Trace(hub_->options().node_id, "stream closed by primary");
      primary_lease_ =
          federation::OnProbeFailure(primary_lease_, "primary", now_ms);
      hub_->CountStreamBreak();
      break;
    }
    if (outcome == ReadOutcome::kTimeout) {
      // Silence for a receive-timeout window: one probe failure. The lease
      // decides when silence becomes a failover.
      primary_lease_ =
          federation::OnProbeFailure(primary_lease_, "primary", now_ms);
      if (federation::LeaseExpired(primary_lease_, now_ms)) {
        Trace(hub_->options().node_id, "primary lease expired (silence)");
        lease_expired = true;
        break;
      }
      continue;
    }
    if (frame.type == FrameType::kGoodbye) {
      // The primary dropped us (fault injection, demotion, shutdown). The
      // break itself does not invalidate local state; if records were lost
      // in between, the next resume's seq check catches it and the primary
      // re-ships from our position.
      Trace(hub_->options().node_id, "goodbye from primary: " + frame.payload);
      hub_->CountStreamBreak();
      break;
    }
    if (frame.type == FrameType::kReplSnapshot) {
      Result<ReplSnapshot> chunk = DecodeReplSnapshot(frame.payload);
      if (!chunk.ok() || !AcceptSnapshotChunk(chunk.value()).ok()) {
        // A failed install leaves durable state indeterminate (the journal
        // may already be reset): only a fresh full bootstrap recovers.
        Trace(hub_->options().node_id, "snapshot install failed");
        stream_intact_ = false;
        hub_->CountStreamBreak();
        break;
      }
      primary_lease_ =
          federation::OnProbeSuccess(primary_lease_, "primary", now_ms);
      if (pending_snapshot_.has_value()) continue;  // mid-transfer: no ack yet
    } else if (frame.type == FrameType::kReplRecord) {
      Result<ReplRecord> record = DecodeReplRecord(frame.payload);
      if (record.ok()) hub_->NoteObservedEpoch(record.value().epoch);
      // A primary that accepted our resume streams under its (possibly
      // newer) epoch. The seq check proves our tail is a prefix of its
      // lineage, so adopting the epoch here is what makes cross-failover
      // resume work: acks start carrying the new epoch and the stream
      // continues without a bootstrap.
      if (record.ok() && stream_intact_ && !pending_snapshot_.has_value() &&
          record.value().epoch > hub_->epoch() &&
          record.value().seq == hub_->position() + 1) {
        if (hub_->RaiseEpoch(record.value().epoch).ok()) {
          Trace(hub_->options().node_id,
                "adopted epoch " + std::to_string(record.value().epoch) +
                    " from resumed stream");
        }
      }
      if (!record.ok() || pending_snapshot_.has_value() ||
          record.value().epoch != hub_->epoch() ||
          record.value().seq != hub_->position() + 1) {
        // The stream skipped (or interleaved into a snapshot transfer):
        // local state is still exactly (epoch, position) — resume re-ships
        // the gap, or bootstraps if the primary's epoch moved on.
        Trace(hub_->options().node_id,
              "record break: got " +
                  (record.ok() ? "epoch " + std::to_string(record.value().epoch) +
                                     " seq " + std::to_string(record.value().seq)
                               : std::string("undecodable")) +
                  " at epoch " + std::to_string(hub_->epoch()) + " position " +
                  std::to_string(hub_->position()));
        pending_snapshot_.reset();
        hub_->CountStreamBreak();
        break;
      }
      if (!ApplyRecord(record.value()).ok()) {
        // The WAL may hold the record without it being applied: durable
        // state no longer matches the position, so force a bootstrap.
        Trace(hub_->options().node_id, "record apply failed");
        stream_intact_ = false;
        hub_->CountStreamBreak();
        break;
      }
      primary_lease_ =
          federation::OnProbeSuccess(primary_lease_, "primary", now_ms);
    } else if (frame.type == FrameType::kReplHeartbeat) {
      Result<ReplHeartbeat> heartbeat = DecodeReplHeartbeat(frame.payload);
      if (!heartbeat.ok()) continue;
      hub_->NoteObservedEpoch(heartbeat.value().epoch);
      // Heartbeats only reach subscribed peers, so a newer epoch here means
      // the primary accepted this node's hello under the new lineage —
      // adopt it (unless a bootstrap is mid-flight; the install will).
      if (stream_intact_ && !pending_snapshot_.has_value() &&
          heartbeat.value().epoch > hub_->epoch()) {
        (void)hub_->RaiseEpoch(heartbeat.value().epoch);
      }
      if (heartbeat.value().epoch >= hub_->epoch()) {
        hub_->OnPrimaryHeartbeat(heartbeat.value());
        primary_lease_ =
            federation::OnProbeSuccess(primary_lease_, "primary", now_ms);
      }
    } else {
      continue;  // not a replication frame: ignore
    }
    // Acknowledge applied-through state. A dropped ack (armed fault) stalls
    // semi-sync commits until the next ack carries the position forward.
    const Status ack_fault = Failpoints::Instance().Hit(fp::kReplAckSend);
    if (!ack_fault.ok()) continue;
    ReplAck ack;
    ack.node_id = hub_->options().node_id;
    ack.epoch = hub_->epoch();
    ack.applied_seq = hub_->position();
    ack.applied_version = hub_->applied_version();
    if (!SendAll(fd, EncodeFrame(FrameType::kReplAck, EncodeReplAck(ack)))) {
      hub_->CountStreamBreak();
      break;
    }
  }
  ::close(fd);
  if (lease_expired) return false;
  if (!Stopping() && hub_->role() == ReplRole::kReplica) {
    const uint64_t now_ms = NowMillis();
    if (federation::LeaseExpired(primary_lease_, now_ms)) return false;
    SleepMicros(federation::BackoffDelay(lease_config_, hub_->options().node_id,
                                         ++reconnect_attempt_) *
                1000);
  }
  return true;
}

void ReplicaAgent::BecomeReplicaOf(const std::string& address) {
  Trace(hub_->options().node_id, "becoming replica of " + address);
  std::unique_lock<std::shared_mutex> lock(server_->console_mutex());
  console_->SetSystemJournalAttached(false);
  hub_->SetPrimaryAddress(address);
  hub_->Demote(ReplRole::kReplica);
  // Fresh lease: the (new or recovering) primary gets one full window to
  // start serving before this node considers another election.
  primary_lease_ = federation::MakeHealthy(lease_config_, NowMillis());
  reconnect_attempt_ = 0;
  // stream_intact_ is deliberately KEPT: a clean replica switching (or
  // re-electing) primaries resumes from its position when the epochs still
  // match; the hello's epoch check forces a bootstrap whenever they don't.
}

std::optional<ReplVote> ReplicaAgent::RequestVote(const NodeAddress& address,
                                                  const ReplVoteReq& request) {
  const int fd = DialBlocking(address.host, address.port);
  if (fd < 0) return std::nullopt;
  SetSocketTimeouts(
      fd, std::max<uint64_t>(hub_->options().heartbeat_micros * 2, 100'000));
  if (!SendAll(fd, EncodeFrame(FrameType::kReplVoteReq,
                               EncodeReplVoteReq(request)))) {
    ::close(fd);
    return std::nullopt;
  }
  FrameDecoder decoder;
  while (true) {
    Frame frame;
    if (ReadFrame(fd, &decoder, &frame) != ReadOutcome::kFrame) {
      ::close(fd);
      return std::nullopt;
    }
    if (frame.type != FrameType::kReplVote) continue;
    ::close(fd);
    Result<ReplVote> vote = DecodeReplVote(frame.payload);
    if (!vote.ok()) return std::nullopt;
    return vote.value();
  }
}

std::optional<ReplStatus> ReplicaAgent::ProbeNode(const NodeAddress& address) {
  const int fd = DialBlocking(address.host, address.port);
  if (fd < 0) return std::nullopt;
  SetSocketTimeouts(
      fd, std::max<uint64_t>(hub_->options().heartbeat_micros * 2, 100'000));
  if (!SendAll(fd, EncodeFrame(FrameType::kReplStatusReq, ""))) {
    ::close(fd);
    return std::nullopt;
  }
  FrameDecoder decoder;
  while (true) {
    Frame frame;
    if (ReadFrame(fd, &decoder, &frame) != ReadOutcome::kFrame) {
      ::close(fd);
      return std::nullopt;
    }
    if (frame.type != FrameType::kReplStatus) continue;
    ::close(fd);
    Result<ReplStatus> status = DecodeReplStatus(frame.payload);
    if (!status.ok()) return std::nullopt;
    return status.value();
  }
}

void ReplicaAgent::RunElection() {
  const ReplicationOptions& options = hub_->options();
  std::vector<ReplStatus> statuses;
  statuses.push_back(hub_->SelfStatus());
  size_t reachable = 1;
  for (const auto& [node, address] : options.cluster) {
    if (node == options.node_id || Stopping()) continue;
    std::optional<ReplStatus> status = ProbeNode(address);
    if (!status.has_value()) continue;
    hub_->NoteObservedEpoch(status->epoch);
    ++reachable;
    statuses.push_back(*status);
  }
  if (Stopping()) return;
  if (TraceEnabled()) {
    std::ostringstream view;
    view << "election view:";
    for (const ReplStatus& status : statuses) {
      view << " " << status.node_id << "=" << ReplRoleToString(status.role)
           << "/e" << status.epoch << "/p" << status.applied_version;
    }
    Trace(options.node_id, view.str());
  }
  // The promotion fence: above every epoch in the live view AND every
  // epoch this node has ever heard of. A candidate that could never adopt
  // the current epoch (say, its bootstrap kept failing while the primary
  // is now unreachable) must still not mint a colliding one.
  uint64_t max_epoch = hub_->observed_epoch();
  for (const ReplStatus& status : statuses) {
    max_epoch = std::max(max_epoch, status.epoch);
  }
  // A live primary with a current-or-newer epoch wins outright: rejoin it.
  for (const ReplStatus& status : statuses) {
    if (status.role != ReplRole::kPrimary ||
        status.node_id == options.node_id || status.epoch < hub_->epoch()) {
      continue;
    }
    const auto it = options.cluster.find(status.node_id);
    if (it == options.cluster.end()) continue;
    BecomeReplicaOf(it->second.ToString());
    return;
  }
  // No live primary: with a strict majority reachable, the deterministic
  // rule NOMINATES (everyone who sees the same quorum nominates the same
  // node), but nomination alone is not authority — under asymmetric
  // reachability two candidates can each see a different "majority" and
  // nominate themselves. Promotion additionally requires an explicit vote
  // majority: every node persists at most one vote per epoch, and any two
  // majorities share a voter, so two candidates can never both win the
  // same epoch.
  if (reachable * 2 > options.cluster.size()) {
    const std::string winner = ChooseLeader(statuses);
    if (winner == options.node_id) {
      const uint64_t target_epoch = max_epoch + 1;
      ReplVoteReq ballot;
      ballot.candidate = options.node_id;
      ballot.epoch = target_epoch;
      ballot.last_epoch = hub_->epoch();
      ballot.last_position = hub_->position();
      // Vote for self first (persisted — this epoch's vote is now spent,
      // even across a crash) …
      size_t votes = hub_->HandleVoteRequest(ballot).granted ? 1 : 0;
      // … then canvass the cluster. Unreachable nodes are NOT votes.
      for (const auto& [node, address] : options.cluster) {
        if (node == options.node_id || Stopping()) continue;
        const std::optional<ReplVote> vote = RequestVote(address, ballot);
        if (vote.has_value() && vote->granted &&
            vote->epoch == target_epoch) {
          ++votes;
        }
      }
      if (Stopping()) return;
      if (TraceEnabled()) {
        Trace(options.node_id,
              "vote round for epoch " + std::to_string(target_epoch) + ": " +
                  std::to_string(votes) + "/" +
                  std::to_string(options.cluster.size()));
      }
      // promote fires after the votes are counted, before writes are
      // accepted. error = this round is abandoned (the cluster re-elects);
      // crash = death mid-failover, thrown to ThreadMain.
      if (votes * 2 > options.cluster.size()) {
        const Status injected = Failpoints::Instance().Hit(fp::kReplPromote);
        if (injected.ok()) {
          std::unique_lock<std::shared_mutex> lock(server_->console_mutex());
          console_->SetSystemJournalAttached(true);
          const Status promoted = hub_->Promote(target_epoch);
          Trace(hub_->options().node_id,
                "promoting to epoch " + std::to_string(target_epoch) + ": " +
                    (promoted.ok() ? "ok" : promoted.message()));
          if (promoted.ok()) {
            // Any later replica stint starts from a bootstrap: this node's
            // journal may grow a suffix nobody replicated.
            stream_intact_ = false;
            return;
          }
        }
      }
    } else if (!winner.empty()) {
      // The winner promotes shortly; follow it with a fresh lease. If it
      // dies mid-promotion the lease expires and the survivors re-elect
      // without it.
      const auto it = options.cluster.find(winner);
      if (it != options.cluster.end()) {
        BecomeReplicaOf(it->second.ToString());
        return;
      }
    }
  }
  SleepMicros(federation::BackoffDelay(lease_config_, options.node_id,
                                       ++election_attempt_) *
              1000);
}

// --- ReplicatedNode ---------------------------------------------------------

ReplicatedNode::ReplicatedNode() = default;

ReplicatedNode::~ReplicatedNode() {
  if (agent_ != nullptr) agent_->Stop();
  if (metrics_ != nullptr) metrics_->Stop();
  if (server_ != nullptr) {
    server_->Stop();
    server_->WaitUntilStopped();
  }
}

Status ReplicatedNode::Start(const ReplicatedNodeOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(options.repl.data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " +
                            options.repl.data_dir + ": " + ec.message());
  }
  const std::string checkpoint = options.repl.data_dir + "/checkpoint";
  const std::string wal = options.repl.data_dir + "/wal";
  std::ostringstream out;
  std::ostringstream err;
  if (!console_.Run("RECOVER '" + checkpoint + "' '" + wal + "'", out, err)) {
    return Status::Internal("recover failed: " + err.str());
  }
  if (!console_.Run("JOURNAL '" + wal + "'", out, err)) {
    return Status::Internal("journal failed: " + err.str());
  }
  hub_ = std::make_unique<ReplicationHub>(options.repl, &console_);
  EVE_RETURN_IF_ERROR(hub_->Initialize());
  if (hub_->role() == ReplRole::kReplica) {
    console_.SetSystemJournalAttached(false);
  }
  // Tail the WAL into the hub: every durable local append ships (primary)
  // or no-ops (replica — the agent wrote it, the observer sees role).
  console_.attached_journal()->SetObserver(
      [hub = hub_.get()](JournalRecordKind kind, std::string_view body) {
        hub->OnJournalRecord(kind, body);
      });
  server_ = std::make_unique<Server>(&console_, options.server);
  server_->SetReplicationHub(hub_.get());
  EVE_RETURN_IF_ERROR(server_->Start());
  if (options.metrics_port != 0) {
    metrics_ = std::make_unique<MetricsServer>(
        options.metrics_host, options.metrics_port,
        [this] { return RenderMetricsText(*server_, console_, hub_.get()); });
    EVE_RETURN_IF_ERROR(metrics_->Start());
  }
  agent_ = std::make_unique<ReplicaAgent>(hub_.get(), &console_, server_.get());
  agent_->Start();
  return Status::OK();
}

uint16_t ReplicatedNode::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

uint16_t ReplicatedNode::metrics_port() const {
  return metrics_ != nullptr ? metrics_->port() : 0;
}

void ReplicatedNode::BeginDrain() {
  if (agent_ != nullptr) agent_->Stop();
  if (server_ != nullptr) server_->BeginDrain();
}

void ReplicatedNode::Stop() {
  if (agent_ != nullptr) agent_->Stop();
  if (metrics_ != nullptr) metrics_->Stop();
  if (server_ != nullptr) server_->Stop();
}

void ReplicatedNode::WaitUntilStopped() {
  if (server_ != nullptr) server_->WaitUntilStopped();
}

bool ReplicatedNode::stopped() const {
  return server_ == nullptr || server_->stopped();
}

std::string ReplicatedNode::crashed_site() const {
  if (server_ != nullptr && !server_->crashed_site().empty()) {
    return server_->crashed_site();
  }
  return hub_ != nullptr ? hub_->crashed_site() : "";
}

}  // namespace net
}  // namespace eve
