#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <sstream>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "net/replication.h"

namespace eve {
namespace net {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsServerStatsStatement(const std::string& statement) {
  std::istringstream is(statement);
  std::string a;
  std::string b;
  std::string c;
  std::string rest;
  is >> a >> b >> c;
  return !(is >> rest) && EqualsIgnoreCase(a, "SHOW") &&
         EqualsIgnoreCase(b, "SERVER") && EqualsIgnoreCase(c, "STATS");
}

bool IsShowReplicationStatement(const std::string& statement) {
  std::istringstream is(statement);
  std::string a;
  std::string b;
  std::string rest;
  is >> a >> b;
  return !(is >> rest) && EqualsIgnoreCase(a, "SHOW") &&
         EqualsIgnoreCase(b, "REPLICATION");
}

// READ STALENESS <bound>|NONE — yields the bound word, or nullopt when the
// statement is something else.
std::optional<std::string> ReadStalenessWord(const std::string& statement) {
  std::istringstream is(statement);
  std::string a;
  std::string b;
  std::string c;
  std::string rest;
  is >> a >> b >> c;
  if ((is >> rest) || !EqualsIgnoreCase(a, "READ") ||
      !EqualsIgnoreCase(b, "STALENESS") || c.empty()) {
    return std::nullopt;
  }
  return c;
}

// Statements a non-primary may execute: the read-only SHOW family. Every
// mutation is redirected to the leader.
bool AllowedOnReplica(const std::string& statement) {
  std::istringstream is(statement);
  std::string head;
  is >> head;
  // SHOW variants plus SCRUB: the integrity scan reads the version chain
  // and mutates nothing durable, and operators need it on every node.
  return EqualsIgnoreCase(head, "SHOW") || EqualsIgnoreCase(head, "SCRUB");
}

}  // namespace

std::string ServerStats::ToString() const {
  std::ostringstream os;
  os << "accepted=" << accepted << " refused=" << refused
     << " sessions_now=" << sessions_now << " requests=" << requests
     << " responses=" << responses << " shed_overload=" << shed_overload
     << " evicted_slow_loris=" << evicted_slow_loris
     << " evicted_overflow=" << evicted_overflow
     << " evicted_io_error=" << evicted_io_error << " resyncs=" << resyncs
     << " crc_failures=" << crc_failures << " goodbyes=" << goodbyes;
  return os.str();
}

// All counters the I/O thread and workers bump concurrently.
struct Server::Counters {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> sessions_now{0};
  std::atomic<uint64_t> evicted_slow_loris{0};
  std::atomic<uint64_t> evicted_overflow{0};
  std::atomic<uint64_t> evicted_io_error{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> shed_overload{0};
  std::atomic<uint64_t> resyncs{0};
  std::atomic<uint64_t> crc_failures{0};
  std::atomic<uint64_t> goodbyes{0};
};

// Per-connection state. The I/O thread owns fd, decoder and the timestamps;
// write_buffer and pending are shared with workers under w_mu. Lifetime is
// shared_ptr: a worker may finish a statement after its session was
// evicted (closed == true) — the response is simply dropped.
struct Server::Session {
  int fd = -1;
  uint64_t id = 0;

  FrameDecoder decoder;            // I/O thread only
  uint64_t partial_since_micros = 0;
  uint64_t reported_resyncs = 0;   // deltas already folded into counters
  uint64_t reported_crc = 0;

  std::mutex w_mu;
  std::string write_buffer;        // encoded frames awaiting the socket
  size_t pending = 0;              // statements handed to workers
  bool overflowed = false;         // write bound exceeded: evict on flush

  std::atomic<bool> closed{false};

  // READ STALENESS bound for this session's snapshot reads (positions
  // behind the primary tip; UINT64_MAX = unbounded, the default).
  std::atomic<uint64_t> staleness_bound{UINT64_MAX};
  // True once a kReplHello registered this session as a replica
  // subscription: eviction must unsubscribe it from the hub.
  std::atomic<bool> is_repl_peer{false};
};

Server::Server(Console* console, ServerOptions options)
    : console_(console),
      options_(std::move(options)),
      counters_(std::make_unique<Counters>()) {}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;  // no failpoint on the destructor path: must not throw
  }
  NudgeIo();
  WaitUntilStopped();
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    return Status::Internal(std::string("listen: ") + strerror(errno));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 = the listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.u64 = 1;  // 1 = the wake eventfd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake);

  workers_ = std::make_unique<ThreadPool>(
      options_.worker_threads == 0 ? 1 : options_.worker_threads, "eved-wrk");
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::BeginDrain() {
  // Crash mode models the process dying as the drain begins (abrupt
  // teardown, crashed_site() set, no goodbyes); error mode is absorbed —
  // a drain cannot be refused.
  try {
    (void)Failpoints::Instance().Hit(fp::kNetDrain);
  } catch (const SimulatedCrash& crash) {
    RecordCrash(crash.site());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopping_) return;
    draining_ = true;
    drain_started_micros_ = NowMicros();
  }
  NudgeIo();
}

void Server::Stop() {
  try {
    (void)Failpoints::Instance().Hit(fp::kNetShutdown);
  } catch (const SimulatedCrash& crash) {
    RecordCrash(crash.site());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  NudgeIo();
}

bool Server::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_ || !started_;
}

void Server::WaitUntilStopped() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopped_cv_.wait(lock, [this] { return stopped_ || !started_; });
  }
  if (io_thread_.joinable()) io_thread_.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = counters_->accepted.load();
  s.refused = counters_->refused.load();
  s.sessions_now = counters_->sessions_now.load();
  s.evicted_slow_loris = counters_->evicted_slow_loris.load();
  s.evicted_overflow = counters_->evicted_overflow.load();
  s.evicted_io_error = counters_->evicted_io_error.load();
  s.requests = counters_->requests.load();
  s.responses = counters_->responses.load();
  s.shed_overload = counters_->shed_overload.load();
  s.resyncs = counters_->resyncs.load();
  s.crc_failures = counters_->crc_failures.load();
  s.goodbyes = counters_->goodbyes.load();
  return s;
}

std::string Server::crashed_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_site_;
}

void Server::RecordCrash(const std::string& site) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_site_.empty()) crashed_site_ = site;
    stopping_ = true;
  }
  NudgeIo();
}

void Server::NudgeIo() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void Server::IoLoop() {
  try {
    IoLoopBody();
  } catch (const SimulatedCrash& crash) {
    // The armed site modeled the whole process dying here. Record it and
    // fall through to the abrupt-teardown path: sessions drop with no
    // goodbye, exactly like a real crash as seen from the clients.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (crashed_site_.empty()) crashed_site_ = crash.site();
      stopping_ = true;
    }
  }
  // Teardown: stop the workers (running statements finish; queued ones are
  // discarded — on a graceful drain the loop only exits once nothing is
  // pending, so there is nothing to discard), then close every socket.
  if (workers_ != nullptr) workers_->Shutdown(/*drain=*/false);
  bool graceful = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    graceful = draining_ && crashed_site_.empty();
  }
  if (graceful) {
    for (auto& [id, session] : sessions_) {
      QueueGoodbye(session, "server draining");
      FlushBestEffort(session.get());
    }
  }
  CloseAllSessions();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::IoLoopBody() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  bool listener_armed = true;
  while (true) {
    bool draining = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      draining = draining_;
      if (draining && drain_started_micros_ != 0 &&
          NowMicros() - drain_started_micros_ > options_.drain_timeout_micros) {
        // Drain overstayed its budget: give up on stragglers.
        return;
      }
    }
    if (draining) {
      if (listener_armed) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listener_armed = false;
      }
      if (DrainComplete()) return;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        HandleAccept();
        continue;
      }
      if (tag == 1) {
        uint64_t drainval = 0;
        while (::read(wake_fd_, &drainval, sizeof(drainval)) > 0) {
        }
        std::vector<uint64_t> ready;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ready.swap(write_ready_);
        }
        for (const uint64_t id : ready) {
          const auto it = sessions_.find(id);
          if (it != sessions_.end()) FlushSession(it->second);
        }
        continue;
      }
      const auto it = sessions_.find(tag);
      if (it == sessions_.end()) continue;
      std::shared_ptr<Session> session = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        EvictSession(session->id, "io_error");
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(session);
      if (sessions_.count(tag) == 0) continue;  // evicted while reading
      if ((events[i].events & EPOLLOUT) != 0) FlushSession(session);
    }
    SweepSlowLoris(NowMicros());
  }
}

void Server::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    const Status injected = Failpoints::Instance().Hit(fp::kNetAccept);
    if (!injected.ok()) {
      // The injected fault refuses THIS connection; the listener lives on.
      ::close(fd);
      counters_->refused.fetch_add(1);
      continue;
    }
    bool refuse = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      refuse = draining_ || stopping_;
    }
    if (!refuse && options_.max_sessions != 0 &&
        sessions_.size() >= options_.max_sessions) {
      refuse = true;
    }
    if (refuse) {
      ::close(fd);
      counters_->refused.fetch_add(1);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    const Status start = Failpoints::Instance().Hit(fp::kNetSessionStart);
    if (!start.ok()) {
      // Immediate eviction: created but never registered.
      ::close(fd);
      counters_->refused.fetch_add(1);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = session->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      counters_->refused.fetch_add(1);
      continue;
    }
    sessions_.emplace(session->id, std::move(session));
    counters_->accepted.fetch_add(1);
    counters_->sessions_now.store(sessions_.size());
  }
}

void Server::HandleReadable(const std::shared_ptr<Session>& session) {
  const Status injected = Failpoints::Instance().Hit(fp::kNetFrameRead);
  if (!injected.ok()) {
    // The injected fault is THIS session's connection dying mid-read.
    EvictSession(session->id, "io_error");
    return;
  }
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(session->fd, buf, sizeof(buf));
    if (n == 0) {
      EvictSession(session->id, "peer_closed");
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      EvictSession(session->id, "io_error");
      return;
    }
    session->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (session->decoder.buffered_bytes() > options_.max_read_buffer_bytes) {
      // Flooding: the peer outruns frame extraction by more than the
      // bound. (A well-formed burst is drained below before this trips.)
      EvictSession(session->id, "overflow");
      return;
    }
    while (std::optional<Frame> frame = session->decoder.Next()) {
      if (frame->type == FrameType::kGoodbye) {
        EvictSession(session->id, "peer_closed");
        return;
      }
      if (frame->type == FrameType::kReplStatusReq ||
          frame->type == FrameType::kReplVoteReq ||
          frame->type == FrameType::kReplHello ||
          frame->type == FrameType::kReplAck) {
        HandleReplFrame(session, *frame);
        continue;
      }
      if (frame->type != FrameType::kRequest) continue;
      counters_->requests.fetch_add(1);
      Result<Request> request = DecodeRequest(frame->payload);
      if (!request.ok()) {
        Response bad;
        bad.id = 0;
        bad.code = static_cast<int32_t>(StatusCode::kParseError);
        bad.error = "error: " + request.status().ToString() + "\n";
        QueueResponse(session, bad);
        continue;
      }
      if (IsServerStatsStatement(request.value().statement)) {
        // Answered from the server's own counters: no console lock, no
        // worker hop, usable even when the console is saturated.
        Response stats_response;
        stats_response.id = request.value().id;
        stats_response.output = "server: " + stats().ToString() + "\n";
        QueueResponse(session, stats_response);
        continue;
      }
      if (HandleReplIntercept(session, request.value())) continue;
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        shed = draining_ || stopping_;
      }
      {
        std::lock_guard<std::mutex> wlock(session->w_mu);
        if (session->pending >= options_.max_pending_per_session) shed = true;
      }
      if (shed) {
        counters_->shed_overload.fetch_add(1);
        QueueResponse(session,
                      ShedResponse(request.value().id,
                                   "server overloaded or draining"));
        continue;
      }
      {
        std::lock_guard<std::mutex> wlock(session->w_mu);
        ++session->pending;
      }
      std::shared_ptr<Session> owned = session;
      Request req = request.MoveValue();
      workers_->Submit(
          [this, owned = std::move(owned), req = std::move(req)]() mutable {
            ExecuteRequest(std::move(owned), std::move(req));
          },
          "eved-request");
    }
    // Fold this session's decoder counters into the server totals.
    counters_->resyncs.fetch_add(session->decoder.resyncs() -
                                 session->reported_resyncs);
    session->reported_resyncs = session->decoder.resyncs();
    counters_->crc_failures.fetch_add(session->decoder.crc_failures() -
                                      session->reported_crc);
    session->reported_crc = session->decoder.crc_failures();
  }
  // Slow-loris clock: a partial frame starts (or keeps) the timer; a
  // clean inter-frame boundary clears it.
  if (session->decoder.has_partial()) {
    if (session->partial_since_micros == 0) {
      session->partial_since_micros = NowMicros();
    }
  } else {
    session->partial_since_micros = 0;
  }
}

void Server::HandleReplFrame(const std::shared_ptr<Session>& session,
                             const Frame& frame) {
  if (frame.type == FrameType::kReplStatusReq) {
    // Answered inline from atomics: elections probe with this even while
    // the console is saturated. A hub-less server reports role=single.
    ReplStatus status;
    if (hub_ != nullptr) status = hub_->SelfStatus();
    QueueRawFrame(session, EncodeFrame(FrameType::kReplStatus,
                                       EncodeReplStatus(status)));
    return;
  }
  if (hub_ == nullptr) {
    QueueGoodbye(session, "replication not configured");
    return;
  }
  if (frame.type == FrameType::kReplVoteReq) {
    // Answered inline like a status probe: the vote decision (and its
    // persistence) lives in the hub and needs no console state, so an
    // election can make progress even against a saturated node.
    Result<ReplVoteReq> request = DecodeReplVoteReq(frame.payload);
    if (!request.ok()) {
      QueueGoodbye(session, "bad vote request: " + request.status().ToString());
      return;
    }
    const ReplVote vote = hub_->HandleVoteRequest(request.value());
    QueueRawFrame(session,
                  EncodeFrame(FrameType::kReplVote, EncodeReplVote(vote)));
    return;
  }
  if (frame.type == FrameType::kReplAck) {
    Result<ReplAck> ack = DecodeReplAck(frame.payload);
    if (ack.ok() && ack.value().epoch == hub_->epoch()) {
      hub_->OnAck(ack.value());
    }
    return;
  }
  // kReplHello: the subscription must register under the exclusive console
  // lock (so the bootstrap point and the live observer stream cannot leave
  // a gap) — hop to a worker like any other exclusive statement.
  Result<ReplHello> hello = DecodeReplHello(frame.payload);
  if (!hello.ok()) {
    QueueGoodbye(session, "bad hello: " + hello.status().ToString());
    return;
  }
  session->is_repl_peer.store(true);
  std::shared_ptr<Session> owned = session;
  workers_->Submit(
      [this, owned = std::move(owned), hello = hello.MoveValue()]() mutable {
        ReplicationHub::PeerSender sender =
            [this, peer = owned](std::string bytes) {
              QueueRawFrame(peer, std::move(bytes));
            };
        Status subscribed;
        {
          std::unique_lock<std::shared_mutex> lock(console_mu_);
          subscribed = hub_->Subscribe(hello, owned->id, std::move(sender));
        }
        if (!subscribed.ok()) {
          QueueGoodbye(owned, subscribed.ToString());
        }
      },
      "eved-repl-hello");
}

bool Server::HandleReplIntercept(const std::shared_ptr<Session>& session,
                                 const Request& request) {
  if (IsShowReplicationStatement(request.statement)) {
    Response response;
    response.id = request.id;
    response.output = hub_ != nullptr ? hub_->RenderStatus()
                                      : "replication: disabled\n";
    QueueResponse(session, response);
    return true;
  }
  const std::optional<std::string> bound_word =
      ReadStalenessWord(request.statement);
  if (!bound_word.has_value()) return false;
  Response response;
  response.id = request.id;
  if (EqualsIgnoreCase(*bound_word, "NONE")) {
    session->staleness_bound.store(UINT64_MAX);
    response.output = "read staleness bound = none\n";
  } else {
    uint64_t bound = 0;
    std::istringstream is(*bound_word);
    if (!(is >> bound) || !is.eof()) {
      response.code = static_cast<int32_t>(StatusCode::kInvalidArgument);
      response.error =
          "error: READ STALENESS expects a non-negative integer or NONE\n";
      QueueResponse(session, response);
      return true;
    }
    session->staleness_bound.store(bound);
    response.output =
        "read staleness bound = " + std::to_string(bound) + "\n";
  }
  QueueResponse(session, response);
  return true;
}

void Server::ExecuteRequest(std::shared_ptr<Session> session,
                            Request request) {
  Response response;
  response.id = request.id;
  std::ostringstream out;
  std::ostringstream err;
  bool ok = false;
  const bool snapshot_read = Console::IsSnapshotRead(request.statement);
  // Semi-sync bracket: positions the statement advanced must be replica-
  // acked before the client sees success (checked after the lock drops).
  uint64_t position_before = 0;
  uint64_t position_after = 0;
  // The not-primary redirect, used by the pre-lock gate and the locked
  // re-check below.
  const auto fill_not_primary = [this, &response](ReplRole role) {
    const std::string hint = hub_->SelfStatus().primary_hint;
    response.code = static_cast<int32_t>(StatusCode::kFailedPrecondition);
    response.error = "error: not primary (role=" +
                     std::string(ReplRoleToString(role)) + ")" +
                     (hint.empty() ? "" : "; leader=" + hint) + "\n";
  };
  // Replication gates, decided before touching the console.
  if (hub_ != nullptr) {
    const ReplRole role = hub_->role();
    if (snapshot_read) {
      const uint64_t bound = session->staleness_bound.load();
      uint64_t lag = 0;
      bool lag_known = false;
      if (bound != UINT64_MAX &&
          !hub_->WithinStalenessBound(bound, &lag, &lag_known)) {
        response.code = static_cast<int32_t>(StatusCode::kFailedPrecondition);
        response.error =
            lag_known
                ? "error: replica lag " + std::to_string(lag) +
                      " exceeds staleness bound " + std::to_string(bound) +
                      "\n"
                : "error: replica lag unknown (no live primary heartbeat); "
                  "staleness bound " +
                      std::to_string(bound) + " not satisfiable\n";
        {
          std::lock_guard<std::mutex> wlock(session->w_mu);
          if (session->pending > 0) --session->pending;
        }
        QueueResponse(session, response);
        return;
      }
    } else if (role != ReplRole::kPrimary && role != ReplRole::kSingle &&
               !AllowedOnReplica(request.statement)) {
      fill_not_primary(role);
      {
        std::lock_guard<std::mutex> wlock(session->w_mu);
        if (session->pending > 0) --session->pending;
      }
      QueueResponse(session, response);
      return;
    }
  }
  try {
    if (snapshot_read) {
      // Snapshot reads share the lock: any number run concurrently, each
      // against the pinned RCU snapshot, never blocked by a writer that
      // is WAITING (writers hold the lock only while executing).
      std::shared_lock<std::shared_mutex> lock(console_mu_);
      ok = console_->RunSnapshotRead(request.statement, out, err);
    } else {
      std::unique_lock<std::shared_mutex> lock(console_mu_);
      // The pre-lock gate raced with any demotion that took this lock
      // first (isolation self-demotion, BecomeReplicaOf): by now the
      // journal may be detached and the role flipped, and executing would
      // mutate a non-primary's memory unjournaled and unshipped — then
      // skip the semi-sync bracket (the hub position never moves) and
      // falsely ack the write. Primary -> non-primary transitions only
      // happen under this exclusive lock, so this re-check cannot go
      // stale before the statement runs.
      if (hub_ != nullptr) {
        const ReplRole locked_role = hub_->role();
        if (locked_role != ReplRole::kPrimary &&
            locked_role != ReplRole::kSingle &&
            !AllowedOnReplica(request.statement)) {
          lock.unlock();
          fill_not_primary(locked_role);
          {
            std::lock_guard<std::mutex> wlock(session->w_mu);
            if (session->pending > 0) --session->pending;
          }
          QueueResponse(session, response);
          return;
        }
        position_before = hub_->position();
      }
      ok = console_->RunWithLimits(request.statement, request.deadline_micros,
                                   request.work_budget, out, err);
      if (hub_ != nullptr) position_after = hub_->position();
    }
  } catch (const SimulatedCrash& crash) {
    // The armed site models the process dying mid-statement. No response
    // is ever written (the client sees the connection drop when teardown
    // closes it), matching a real crash.
    RecordCrash(crash.site());
    std::lock_guard<std::mutex> wlock(session->w_mu);
    if (session->pending > 0) --session->pending;
    return;
  }
  response.code = ok ? 0 : static_cast<int32_t>(StatusCode::kInternal);
  response.output = out.str();
  response.error = err.str();
  // Semi-sync: hold the (already locally durable) commit's response until
  // enough replicas acked it — AFTER the console lock dropped, so replicas
  // can apply and ack while we wait. A timeout surfaces as an explicit
  // error: the client must NOT treat the commit as acknowledged (it is
  // durable here, but a failover could elect a replica that missed it).
  if (ok && hub_ != nullptr && position_after > position_before &&
      hub_->RequiresAck() && !hub_->WaitForReplication(position_after)) {
    response.code = static_cast<int32_t>(StatusCode::kInternal);
    response.error =
        "error: replication ack timeout: commit not acknowledged by " +
        std::to_string(hub_->effective_ack_replicas()) + " replica(s)\n";
    response.output.clear();
  }
  {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    if (session->pending > 0) --session->pending;
  }
  QueueResponse(session, response);
}

Response Server::ShedResponse(uint64_t request_id,
                              const std::string& why) const {
  Response response;
  response.id = request_id;
  response.code = static_cast<int32_t>(StatusCode::kResourceExhausted);
  response.retry_after_micros = options_.retry_after_micros;
  response.error = "error: resource_exhausted: " + why + "\n";
  return response;
}

void Server::QueueResponse(const std::shared_ptr<Session>& session,
                           const Response& response) {
  if (session->closed.load()) return;
  const std::string frame =
      EncodeFrame(FrameType::kResponse, EncodeResponse(response));
  {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    if (session->write_buffer.size() + frame.size() >
        options_.max_write_buffer_bytes) {
      // The peer is not reading its responses; evict on the next flush.
      session->overflowed = true;
    } else {
      session->write_buffer.append(frame);
      counters_->responses.fetch_add(1);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    write_ready_.push_back(session->id);
  }
  NudgeIo();
}

void Server::QueueRawFrame(const std::shared_ptr<Session>& session,
                           std::string frame_bytes) {
  if (session->closed.load()) return;
  {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    const size_t limit = session->is_repl_peer.load()
                             ? options_.max_repl_write_buffer_bytes
                             : options_.max_write_buffer_bytes;
    if (session->write_buffer.size() + frame_bytes.size() > limit) {
      // A replica that stopped reading its stream: evict on next flush —
      // it will re-sync from a fresh hello.
      session->overflowed = true;
    } else {
      session->write_buffer.append(frame_bytes);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    write_ready_.push_back(session->id);
  }
  NudgeIo();
}

void Server::QueueGoodbye(const std::shared_ptr<Session>& session,
                          const std::string& reason) {
  if (session->closed.load()) return;
  const std::string frame = EncodeFrame(FrameType::kGoodbye, reason);
  {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    session->write_buffer.append(frame);
  }
  counters_->goodbyes.fetch_add(1);
}

void Server::FlushBestEffort(Session* session) {
  // Teardown-path flush: one synchronous attempt, no failpoints, no
  // eviction bookkeeping (everything closes right after).
  std::lock_guard<std::mutex> wlock(session->w_mu);
  size_t off = 0;
  while (off < session->write_buffer.size()) {
    const ssize_t n =
        ::send(session->fd, session->write_buffer.data() + off,
               session->write_buffer.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  session->write_buffer.erase(0, off);
}

void Server::FlushSession(const std::shared_ptr<Session>& session) {
  if (session->closed.load()) return;
  const Status injected = Failpoints::Instance().Hit(fp::kNetFrameWrite);
  if (!injected.ok()) {
    EvictSession(session->id, "io_error");
    return;
  }
  bool want_out = false;
  bool dead_peer = false;
  bool overflowed = false;
  {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    size_t off = 0;
    while (off < session->write_buffer.size()) {
      const ssize_t n =
          ::send(session->fd, session->write_buffer.data() + off,
                 session->write_buffer.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_out = true;
      } else {
        dead_peer = true;
      }
      break;
    }
    session->write_buffer.erase(0, off);
    overflowed = session->overflowed;
  }
  if (dead_peer) {
    EvictSession(session->id, "io_error");
    return;
  }
  if (overflowed) {
    EvictSession(session->id, "overflow");
    return;
  }
  epoll_event ev{};
  ev.events = want_out ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = session->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
}

void Server::EvictSession(uint64_t session_id, const char* reason) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  std::shared_ptr<Session> session = it->second;
  session->closed.store(true);
  ::close(session->fd);  // the kernel drops it from the epoll set
  sessions_.erase(it);
  counters_->sessions_now.store(sessions_.size());
  if (session->is_repl_peer.load() && hub_ != nullptr) {
    hub_->OnPeerGone(session_id);
  }
  if (strcmp(reason, "slow_loris") == 0) {
    counters_->evicted_slow_loris.fetch_add(1);
  } else if (strcmp(reason, "overflow") == 0) {
    counters_->evicted_overflow.fetch_add(1);
  } else if (strcmp(reason, "io_error") == 0) {
    counters_->evicted_io_error.fetch_add(1);
  }
  // "peer_closed" is a normal departure: no eviction counter.
}

void Server::SweepSlowLoris(uint64_t now_micros) {
  if (options_.idle_timeout_micros == 0) return;
  std::vector<uint64_t> victims;
  for (const auto& [id, session] : sessions_) {
    if (session->partial_since_micros != 0 &&
        now_micros - session->partial_since_micros >
            options_.idle_timeout_micros) {
      victims.push_back(id);
    }
  }
  for (const uint64_t id : victims) EvictSession(id, "slow_loris");
}

bool Server::DrainComplete() {
  for (const auto& [id, session] : sessions_) {
    std::lock_guard<std::mutex> wlock(session->w_mu);
    if (session->pending != 0 || !session->write_buffer.empty()) return false;
  }
  return true;
}

void Server::CloseAllSessions() {
  for (auto& [id, session] : sessions_) {
    session->closed.store(true);
    ::close(session->fd);
  }
  sessions_.clear();
  counters_->sessions_now.store(0);
}

}  // namespace net
}  // namespace eve
