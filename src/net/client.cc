#include "net/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/status.h"

namespace eve {
namespace net {

Result<NetClient> NetClient::Connect(const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = strerror(errno);
    ::close(fd);
    return Status::Internal("connect " + options.host + ":" +
                            std::to_string(options.port) + ": " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return NetClient(fd, options);
}

NetClient::NetClient(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {}

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(std::move(other.options_)),
      next_request_id_(other.next_request_id_),
      sheds_retried_(other.sheds_retried_),
      decoder_(std::move(other.decoder_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = std::move(other.options_);
    next_request_id_ = other.next_request_id_;
    sheds_retried_ = other.sheds_retried_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> NetClient::RoundTrip(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(request));
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  char buf[65536];
  while (true) {
    if (std::optional<Frame> received = decoder_.Next()) {
      if (received->type == FrameType::kGoodbye) {
        Close();
        return Status::Internal("server closed the session: " +
                                received->payload);
      }
      if (received->type != FrameType::kResponse) continue;
      Result<Response> response = DecodeResponse(received->payload);
      if (!response.ok()) return response.status();
      // Stale responses (an id we already gave up on) are skipped.
      if (response.value().id != request.id && response.value().id != 0) {
        continue;
      }
      return response;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      Close();
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + strerror(errno));
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<Response> NetClient::Run(const std::string& statement) {
  Request request;
  request.deadline_micros = options_.deadline_micros;
  request.work_budget = options_.work_budget;
  request.statement = statement;
  uint64_t backoff = options_.initial_backoff_micros;
  for (int attempt = 0;; ++attempt) {
    request.id = next_request_id_++;
    Result<Response> response = RoundTrip(request);
    if (!response.ok()) return response;
    if (response.value().code !=
            static_cast<int32_t>(StatusCode::kResourceExhausted) ||
        attempt >= options_.max_shed_retries) {
      return response;
    }
    // Shed: back off and retry. The server's hint can stretch (but never
    // shrink) the client's own exponential delay.
    ++sheds_retried_;
    const uint64_t delay =
        std::min(std::max(backoff, response.value().retry_after_micros),
                 options_.max_backoff_micros);
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
    backoff = std::min(backoff * 2, options_.max_backoff_micros);
  }
}

}  // namespace net
}  // namespace eve
