#include "net/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/status.h"
#include "federation/membership.h"

namespace eve {
namespace net {

namespace {

// Blocking connect to "host:port"-style coordinates; -1 on any failure.
int DialHostPort(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Splits "host:port"; false on malformed input.
bool SplitHostPort(const std::string& text, std::string* host,
                   uint16_t* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (end == text.c_str() + colon + 1 || *end != '\0' || parsed < 1 ||
      parsed > 65535) {
    return false;
  }
  *host = text.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

// Pulls "host:port" out of a "...; leader=host:port" redirect error.
std::string ExtractLeaderHint(const std::string& error_text) {
  const size_t at = error_text.find("leader=");
  if (at == std::string::npos) return "";
  size_t end = at + 7;
  while (end < error_text.size() && error_text[end] != '\n' &&
         error_text[end] != ' ' && error_text[end] != ';') {
    ++end;
  }
  return error_text.substr(at + 7, end - (at + 7));
}

}  // namespace

uint64_t TransportBackoffMicros(const ClientOptions& options,
                                std::string_view key, uint64_t attempt) {
  if (attempt == 0) attempt = 1;
  uint64_t delay = options.initial_backoff_micros;
  for (uint64_t i = 1; i < attempt && delay < options.max_backoff_micros;
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options.max_backoff_micros);
  // Deterministic jitter (same FNV-1a schedule as federation probing):
  // up to half the base delay, keyed so concurrent clients spread out.
  return delay + federation::DeterministicJitter(key, attempt, delay / 2 + 1);
}

namespace {

// Applies the optional receive/send timeout to a freshly dialed socket.
void ApplySocketTimeouts(int fd, uint64_t micros) {
  if (micros == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(micros / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<NetClient> NetClient::Connect(const ClientOptions& options) {
  int fd = DialHostPort(options.host, options.port);
  if (fd < 0 && !options.nodes.empty()) {
    // A failover client must come up even when its preferred endpoint is
    // the dead node: fall through the rest of the cluster list.
    for (const std::string& node : options.nodes) {
      std::string host;
      uint16_t port = 0;
      if (!SplitHostPort(node, &host, &port)) continue;
      fd = DialHostPort(host, port);
      if (fd >= 0) break;
    }
  }
  if (fd < 0) {
    return Status::Internal("connect " + options.host + ":" +
                            std::to_string(options.port) + ": " +
                            strerror(errno));
  }
  ApplySocketTimeouts(fd, options.receive_timeout_micros);
  return NetClient(fd, options);
}

NetClient::NetClient(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {}

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(std::move(other.options_)),
      next_request_id_(other.next_request_id_),
      sheds_retried_(other.sheds_retried_),
      transport_retries_(other.transport_retries_),
      leader_hint_(std::move(other.leader_hint_)),
      decoder_(std::move(other.decoder_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = std::move(other.options_);
    next_request_id_ = other.next_request_id_;
    sheds_retried_ = other.sheds_retried_;
    transport_retries_ = other.transport_retries_;
    leader_hint_ = std::move(other.leader_hint_);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> NetClient::RoundTrip(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(request));
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  char buf[65536];
  while (true) {
    if (std::optional<Frame> received = decoder_.Next()) {
      if (received->type == FrameType::kGoodbye) {
        Close();
        return Status::Internal("server closed the session: " +
                                received->payload);
      }
      if (received->type != FrameType::kResponse) continue;
      Result<Response> response = DecodeResponse(received->payload);
      if (!response.ok()) return response.status();
      // Stale responses (an id we already gave up on) are skipped.
      if (response.value().id != request.id && response.value().id != 0) {
        continue;
      }
      return response;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      Close();
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + strerror(errno));
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

bool NetClient::Reconnect() {
  Close();
  decoder_ = FrameDecoder();
  std::vector<std::string> candidates;
  if (!leader_hint_.empty()) candidates.push_back(leader_hint_);
  // The base list rotates one step per reconnect so a candidate that
  // accepts connections but never answers (wedged, partitioned) cannot
  // capture every retry.
  std::vector<std::string> base;
  base.push_back(options_.host + ":" + std::to_string(options_.port));
  for (const std::string& node : options_.nodes) base.push_back(node);
  const size_t start = reconnect_cursor_++ % base.size();
  for (size_t i = 0; i < base.size(); ++i) {
    candidates.push_back(base[(start + i) % base.size()]);
  }
  for (const std::string& candidate : candidates) {
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(candidate, &host, &port)) continue;
    const int fd = DialHostPort(host, port);
    if (fd >= 0) {
      fd_ = fd;
      ApplySocketTimeouts(fd_, options_.receive_timeout_micros);
      return true;
    }
  }
  return false;
}

Result<Response> NetClient::Run(const std::string& statement) {
  Request request;
  request.deadline_micros = options_.deadline_micros;
  request.work_budget = options_.work_budget;
  request.statement = statement;
  uint64_t backoff = options_.initial_backoff_micros;
  int shed_attempt = 0;
  int transport_attempt = 0;
  while (true) {
    request.id = next_request_id_++;
    Result<Response> response = RoundTrip(request);
    if (!response.ok()) {
      // Transport failure: the connection died (or the server restarted)
      // mid-request. With retries enabled, back off, re-dial across the
      // node list and resend — the statement may or may not have been
      // applied by the dying server; callers opting in accept that.
      if (transport_attempt >= options_.max_transport_retries) {
        return response;
      }
      ++transport_attempt;
      ++transport_retries_;
      // The node we were talking to just failed us — if it was the hinted
      // leader, the hint is stale; drop it so Reconnect rotates onward.
      leader_hint_.clear();
      std::this_thread::sleep_for(std::chrono::microseconds(
          TransportBackoffMicros(options_, statement, transport_attempt)));
      if (!Reconnect()) continue;  // next attempt backs off longer
      continue;
    }
    if (response.value().code ==
            static_cast<int32_t>(StatusCode::kFailedPrecondition) &&
        options_.max_transport_retries > 0) {
      // A replica turned us away with a leader hint: chase it. Counted as
      // a transport attempt so a flapping cluster cannot loop forever.
      const std::string hint = ExtractLeaderHint(response.value().error);
      if (!hint.empty() && transport_attempt < options_.max_transport_retries) {
        ++transport_attempt;
        ++transport_retries_;
        leader_hint_ = hint;
        std::this_thread::sleep_for(std::chrono::microseconds(
            TransportBackoffMicros(options_, statement, transport_attempt)));
        Reconnect();
        continue;
      }
    }
    if (response.value().code !=
            static_cast<int32_t>(StatusCode::kResourceExhausted) ||
        shed_attempt >= options_.max_shed_retries) {
      return response;
    }
    // Shed: back off and retry. The server's hint can stretch (but never
    // shrink) the client's own exponential delay.
    ++shed_attempt;
    ++sheds_retried_;
    const uint64_t delay =
        std::min(std::max(backoff, response.value().retry_after_micros),
                 options_.max_backoff_micros);
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
    backoff = std::min(backoff * 2, options_.max_backoff_micros);
  }
}

}  // namespace net
}  // namespace eve
