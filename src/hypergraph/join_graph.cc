#include "hypergraph/join_graph.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"

namespace eve {

namespace {

// Union-find over relation names.
class UnionFind {
 public:
  void Add(const std::string& x) { parent_.emplace(x, x); }
  std::string Find(const std::string& x) {
    std::string root = x;
    while (parent_.at(root) != root) root = parent_.at(root);
    // Path compression.
    std::string cur = x;
    while (parent_.at(cur) != root) {
      std::string next = parent_.at(cur);
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }
  // Returns true if a merge happened (they were separate).
  bool Unite(const std::string& a, const std::string& b) {
    const std::string ra = Find(a);
    const std::string rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::unordered_map<std::string, std::string> parent_;
};

}  // namespace

std::string JoinTree::ToString() const {
  if (relations.empty()) return "(empty)";
  std::ostringstream os;
  os << relations[0];
  // Render edges in order; each edge mentions both endpoints, so a linear
  // rendering lists relations via the edges.
  for (const JoinConstraint& edge : edges) {
    os << " ⋈[" << edge.id << "] (" << edge.lhs << "," << edge.rhs << ")";
  }
  return os.str();
}

JoinGraph JoinGraph::Build(const Mkb& mkb) {
  JoinGraph graph;
  graph.relations_ = mkb.catalog().RelationNames();
  graph.external_edges_ = &mkb.join_constraints();
  graph.IndexParts();
  return graph;
}

size_t JoinGraph::IndexOf(const std::string& relation) const {
  const auto it =
      std::lower_bound(relations_.begin(), relations_.end(), relation);
  if (it == relations_.end() || *it != relation) return kNpos;
  return static_cast<size_t>(it - relations_.begin());
}

void JoinGraph::IndexParts() {
  const std::vector<JoinConstraint>& edges = Edges();
  // Construction-time interning: hash each relation name once and each
  // edge endpoint once. The map is scratch — queries afterwards use
  // IndexOf's binary search over the sorted relations_.
  std::unordered_map<std::string, size_t> intern;
  intern.reserve(relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    intern.emplace(relations_[i], i);
  }
  // A JC may mention a relation the catalog no longer lists; keep it a
  // node (the old string-keyed adjacency did implicitly).
  bool appended = false;
  for (const JoinConstraint& jc : edges) {
    for (const std::string* end : {&jc.lhs, &jc.rhs}) {
      if (intern.emplace(*end, relations_.size()).second) {
        relations_.push_back(*end);
        appended = true;
      }
    }
  }
  if (appended) {
    std::sort(relations_.begin(), relations_.end());
    intern.clear();
    for (size_t i = 0; i < relations_.size(); ++i) {
      intern.emplace(relations_[i], i);
    }
  }
  const size_t num_relations = relations_.size();
  endpoints_.resize(edges.size());
  std::vector<size_t> degree(num_relations, 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    const size_t lhs = intern.at(edges[i].lhs);
    const size_t rhs = intern.at(edges[i].rhs);
    endpoints_[i] = {lhs, rhs};
    ++degree[lhs];
    ++degree[rhs];
  }
  adj_offsets_.assign(num_relations + 1, 0);
  for (size_t i = 0; i < num_relations; ++i) {
    adj_offsets_[i + 1] = adj_offsets_[i] + degree[i];
  }
  adj_edges_.resize(2 * edges.size());
  std::vector<size_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (size_t i = 0; i < edges.size(); ++i) {
    adj_edges_[cursor[endpoints_[i].first]++] = i;
    adj_edges_[cursor[endpoints_[i].second]++] = i;
  }
  // Connected components: BFS over relation indices.
  component_id_.assign(num_relations, kNpos);
  size_t next_id = 0;
  std::deque<size_t> frontier;
  for (size_t start = 0; start < num_relations; ++start) {
    if (component_id_[start] != kNpos) continue;
    const size_t id = next_id++;
    component_id_[start] = id;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const size_t current = frontier.front();
      frontier.pop_front();
      for (const size_t edge_index : IncidentEdges(current)) {
        const auto [lhs, rhs] = endpoints_[edge_index];
        const size_t other = lhs == current ? rhs : lhs;
        if (component_id_[other] == kNpos) {
          component_id_[other] = id;
          frontier.push_back(other);
        }
      }
    }
  }
}

std::vector<JoinGraph::Neighbor> JoinGraph::Neighbors(
    const std::string& relation) const {
  std::vector<Neighbor> out;
  const size_t index = IndexOf(relation);
  if (index == kNpos) return out;
  out.reserve(adj_offsets_[index + 1] - adj_offsets_[index]);
  const std::vector<JoinConstraint>& edges = Edges();
  for (const size_t edge_index : IncidentEdges(index)) {
    const auto [lhs, rhs] = endpoints_[edge_index];
    out.push_back(Neighbor{relations_[lhs == index ? rhs : lhs],
                           edges[edge_index]});
  }
  return out;
}

bool JoinGraph::SameComponent(const std::string& a,
                              const std::string& b) const {
  const size_t ia = IndexOf(a);
  const size_t ib = IndexOf(b);
  return ia != kNpos && ib != kNpos && component_id_[ia] == component_id_[ib];
}

std::vector<std::string> JoinGraph::ComponentOf(
    const std::string& relation) const {
  std::vector<std::string> component;
  const size_t index = IndexOf(relation);
  if (index == kNpos) return component;
  const size_t id = component_id_[index];
  // relations_ is sorted, so the output is too.
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (component_id_[i] == id) component.push_back(relations_[i]);
  }
  return component;
}

std::vector<std::vector<std::string>> JoinGraph::Components() const {
  std::vector<std::vector<std::string>> out;
  std::unordered_map<size_t, size_t> slot_of_id;
  for (size_t i = 0; i < relations_.size(); ++i) {
    const auto [it, inserted] = slot_of_id.emplace(component_id_[i], out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(relations_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

JoinGraph JoinGraph::EraseRelation(const std::string& relation) const {
  JoinGraph out;
  for (const std::string& rel : relations_) {
    if (rel != relation) out.relations_.push_back(rel);
  }
  for (const JoinConstraint& jc : Edges()) {
    if (!jc.Involves(relation)) out.owned_edges_.push_back(jc);
  }
  out.IndexParts();
  return out;
}

std::vector<JoinTree> JoinGraph::FindConnectingTrees(
    const std::set<std::string>& required,
    const std::vector<JoinConstraint>& mandatory_edges,
    const JoinTreeSearchOptions& options) const {
  std::vector<JoinTree> results;
  if (required.empty()) return results;
  for (const std::string& rel : required) {
    if (IndexOf(rel) == kNpos) return results;  // relation is gone
  }
  // Fail fast on unreachable requests: a spanning tree can only exist
  // inside one connected component, so there is no point growing sets.
  const std::string& first = *required.begin();
  for (const std::string& rel : required) {
    if (!SameComponent(first, rel)) return results;
  }
  for (const JoinConstraint& edge : mandatory_edges) {
    if (required.count(edge.lhs) == 0 || required.count(edge.rhs) == 0) {
      return results;  // mandatory edge endpoint outside the required set
    }
  }
  std::unordered_set<std::string> mandatory_ids;
  for (const JoinConstraint& edge : mandatory_edges) {
    mandatory_ids.insert(edge.id);
  }

  // Attempts to assemble a spanning tree over `chosen`: mandatory edges
  // first, then any JC between chosen relations that merges components.
  auto try_build_tree =
      [&](const std::set<std::string>& chosen) -> std::optional<JoinTree> {
    UnionFind uf;
    for (const std::string& rel : chosen) uf.Add(rel);
    JoinTree tree;
    tree.relations.assign(chosen.begin(), chosen.end());
    for (const JoinConstraint& edge : mandatory_edges) {
      uf.Unite(edge.lhs, edge.rhs);
      tree.edges.push_back(edge);
    }
    for (const std::string& rel : chosen) {
      const size_t rel_idx = IndexOf(rel);
      if (rel_idx == kNpos) continue;  // isolated relation
      for (const size_t edge_index : IncidentEdges(rel_idx)) {
        const JoinConstraint& jc = Edges()[edge_index];
        if (chosen.count(jc.Other(rel)) == 0) continue;
        // Skip a JC already included as mandatory.
        if (mandatory_ids.count(jc.id) > 0) continue;
        if (uf.Unite(jc.lhs, jc.rhs)) tree.edges.push_back(jc);
      }
    }
    const std::string root = uf.Find(*chosen.begin());
    for (const std::string& rel : chosen) {
      if (uf.Find(rel) != root) return std::nullopt;
    }
    return tree;
  };

  // BFS over relation sets, smallest first; expand only disconnected sets.
  std::set<std::vector<std::string>> visited;
  std::deque<std::set<std::string>> frontier{required};
  visited.insert(std::vector<std::string>(required.begin(), required.end()));

  while (!frontier.empty() && results.size() < options.max_results) {
    const std::set<std::string> chosen = frontier.front();
    frontier.pop_front();

    if (auto tree = try_build_tree(chosen)) {
      results.push_back(std::move(*tree));
      continue;  // minimal connected superset found; don't grow it further
    }
    if (chosen.size() >= required.size() + options.max_extra_relations) {
      continue;
    }
    // Grow by any relation adjacent to the current set.
    std::set<std::string> candidates;
    for (const std::string& rel : chosen) {
      const size_t rel_idx = IndexOf(rel);
      if (rel_idx == kNpos) continue;
      for (const size_t edge_index : IncidentEdges(rel_idx)) {
        const auto [lhs, rhs] = endpoints_[edge_index];
        const std::string& other = relations_[lhs == rel_idx ? rhs : lhs];
        if (chosen.count(other) == 0) candidates.insert(other);
      }
    }
    for (const std::string& candidate : candidates) {
      std::set<std::string> next = chosen;
      next.insert(candidate);
      std::vector<std::string> key(next.begin(), next.end());
      if (visited.insert(std::move(key)).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
  return results;
}

}  // namespace eve
