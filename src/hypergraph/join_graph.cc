#include "hypergraph/join_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/str_util.h"

namespace eve {

namespace {

// Union-find over relation names.
class UnionFind {
 public:
  void Add(const std::string& x) { parent_.emplace(x, x); }
  std::string Find(const std::string& x) {
    std::string root = x;
    while (parent_.at(root) != root) root = parent_.at(root);
    // Path compression.
    std::string cur = x;
    while (parent_.at(cur) != root) {
      std::string next = parent_.at(cur);
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }
  // Returns true if a merge happened (they were separate).
  bool Unite(const std::string& a, const std::string& b) {
    const std::string ra = Find(a);
    const std::string rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace

std::string JoinTree::ToString() const {
  if (relations.empty()) return "(empty)";
  std::ostringstream os;
  os << relations[0];
  // Render edges in order; each edge mentions both endpoints, so a linear
  // rendering lists relations via the edges.
  for (const JoinConstraint& edge : edges) {
    os << " ⋈[" << edge.id << "] (" << edge.lhs << "," << edge.rhs << ")";
  }
  return os.str();
}

JoinGraph JoinGraph::Build(const Mkb& mkb) {
  JoinGraph graph;
  graph.relations_ = mkb.catalog().RelationNames();
  for (const std::string& rel : graph.relations_) {
    graph.adjacency_[rel];  // ensure every relation has an entry
  }
  for (const JoinConstraint& jc : mkb.join_constraints()) {
    graph.adjacency_[jc.lhs].push_back(jc);
    graph.adjacency_[jc.rhs].push_back(jc);
  }
  return graph;
}

std::vector<JoinGraph::Neighbor> JoinGraph::Neighbors(
    const std::string& relation) const {
  std::vector<Neighbor> out;
  auto it = adjacency_.find(relation);
  if (it == adjacency_.end()) return out;
  for (const JoinConstraint& jc : it->second) {
    out.push_back(Neighbor{jc.Other(relation), jc});
  }
  return out;
}

bool JoinGraph::SameComponent(const std::string& a,
                              const std::string& b) const {
  const std::vector<std::string> component = ComponentOf(a);
  return std::binary_search(component.begin(), component.end(), b);
}

std::vector<std::string> JoinGraph::ComponentOf(
    const std::string& relation) const {
  std::vector<std::string> component;
  if (adjacency_.count(relation) == 0) return component;
  std::set<std::string> visited{relation};
  std::deque<std::string> frontier{relation};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    component.push_back(current);
    for (const Neighbor& n : Neighbors(current)) {
      if (visited.insert(n.relation).second) frontier.push_back(n.relation);
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

std::vector<std::vector<std::string>> JoinGraph::Components() const {
  std::vector<std::vector<std::string>> out;
  std::set<std::string> seen;
  for (const std::string& rel : relations_) {
    if (seen.count(rel) > 0) continue;
    std::vector<std::string> component = ComponentOf(rel);
    seen.insert(component.begin(), component.end());
    out.push_back(std::move(component));
  }
  std::sort(out.begin(), out.end());
  return out;
}

JoinGraph JoinGraph::EraseRelation(const std::string& relation) const {
  JoinGraph out;
  for (const std::string& rel : relations_) {
    if (rel != relation) out.relations_.push_back(rel);
  }
  for (const auto& [rel, edges] : adjacency_) {
    if (rel == relation) continue;
    std::vector<JoinConstraint>& kept = out.adjacency_[rel];
    for (const JoinConstraint& jc : edges) {
      if (!jc.Involves(relation)) kept.push_back(jc);
    }
  }
  return out;
}

std::vector<JoinTree> JoinGraph::FindConnectingTrees(
    const std::set<std::string>& required,
    const std::vector<JoinConstraint>& mandatory_edges,
    const JoinTreeSearchOptions& options) const {
  std::vector<JoinTree> results;
  if (required.empty()) return results;
  for (const std::string& rel : required) {
    if (adjacency_.count(rel) == 0) return results;  // relation is gone
  }
  for (const JoinConstraint& edge : mandatory_edges) {
    if (required.count(edge.lhs) == 0 || required.count(edge.rhs) == 0) {
      return results;  // mandatory edge endpoint outside the required set
    }
  }

  // Attempts to assemble a spanning tree over `chosen`: mandatory edges
  // first, then any JC between chosen relations that merges components.
  auto try_build_tree =
      [&](const std::set<std::string>& chosen) -> std::optional<JoinTree> {
    UnionFind uf;
    for (const std::string& rel : chosen) uf.Add(rel);
    JoinTree tree;
    tree.relations.assign(chosen.begin(), chosen.end());
    for (const JoinConstraint& edge : mandatory_edges) {
      uf.Unite(edge.lhs, edge.rhs);
      tree.edges.push_back(edge);
    }
    for (const std::string& rel : chosen) {
      for (const JoinConstraint& jc : adjacency_.at(rel)) {
        if (chosen.count(jc.Other(rel)) == 0) continue;
        // Skip a JC already included as mandatory.
        const bool is_mandatory = std::any_of(
            mandatory_edges.begin(), mandatory_edges.end(),
            [&](const JoinConstraint& m) { return m.id == jc.id; });
        if (is_mandatory) continue;
        if (uf.Unite(jc.lhs, jc.rhs)) tree.edges.push_back(jc);
      }
    }
    const std::string root = uf.Find(*chosen.begin());
    for (const std::string& rel : chosen) {
      if (uf.Find(rel) != root) return std::nullopt;
    }
    return tree;
  };

  // BFS over relation sets, smallest first; expand only disconnected sets.
  std::set<std::vector<std::string>> visited;
  std::deque<std::set<std::string>> frontier{required};
  visited.insert(std::vector<std::string>(required.begin(), required.end()));

  while (!frontier.empty() && results.size() < options.max_results) {
    const std::set<std::string> chosen = frontier.front();
    frontier.pop_front();

    if (auto tree = try_build_tree(chosen)) {
      results.push_back(std::move(*tree));
      continue;  // minimal connected superset found; don't grow it further
    }
    if (chosen.size() >= required.size() + options.max_extra_relations) {
      continue;
    }
    // Grow by any relation adjacent to the current set.
    std::set<std::string> candidates;
    for (const std::string& rel : chosen) {
      for (const Neighbor& n : Neighbors(rel)) {
        if (chosen.count(n.relation) == 0) candidates.insert(n.relation);
      }
    }
    for (const std::string& candidate : candidates) {
      std::set<std::string> next = chosen;
      next.insert(candidate);
      std::vector<std::string> key(next.begin(), next.end());
      if (visited.insert(std::move(key)).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
  return results;
}

}  // namespace eve
