#include "hypergraph/join_graph.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"

namespace eve {

namespace {

// Union-find over relation names.
class UnionFind {
 public:
  void Add(const std::string& x) { parent_.emplace(x, x); }
  std::string Find(const std::string& x) {
    std::string root = x;
    while (parent_.at(root) != root) root = parent_.at(root);
    // Path compression.
    std::string cur = x;
    while (parent_.at(cur) != root) {
      std::string next = parent_.at(cur);
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }
  // Returns true if a merge happened (they were separate).
  bool Unite(const std::string& a, const std::string& b) {
    const std::string ra = Find(a);
    const std::string rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::unordered_map<std::string, std::string> parent_;
};

}  // namespace

std::string JoinTree::ToString() const {
  if (relations.empty()) return "(empty)";
  std::ostringstream os;
  os << relations[0];
  // Render edges in order; each edge mentions both endpoints, so a linear
  // rendering lists relations via the edges.
  for (const JoinConstraint& edge : edges) {
    os << " ⋈[" << edge.id << "] (" << edge.lhs << "," << edge.rhs << ")";
  }
  return os.str();
}

JoinGraph JoinGraph::Build(const Mkb& mkb) {
  JoinGraph graph;
  graph.relations_ = mkb.catalog().RelationNames();
  graph.external_edges_ = &mkb.join_constraints();
  graph.IndexParts();
  return graph;
}

size_t JoinGraph::IndexOf(const std::string& relation) const {
  const auto it =
      std::lower_bound(relations_.begin(), relations_.end(), relation);
  if (it == relations_.end() || *it != relation) return kNpos;
  return static_cast<size_t>(it - relations_.begin());
}

void JoinGraph::IndexParts() {
  const std::vector<JoinConstraint>& edges = Edges();
  // Construction-time interning: hash each relation name once and each
  // edge endpoint once. The map is scratch — queries afterwards use
  // IndexOf's binary search over the sorted relations_.
  std::unordered_map<std::string, size_t> intern;
  intern.reserve(relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    intern.emplace(relations_[i], i);
  }
  // A JC may mention a relation the catalog no longer lists; keep it a
  // node (the old string-keyed adjacency did implicitly).
  bool appended = false;
  for (const JoinConstraint& jc : edges) {
    for (const std::string* end : {&jc.lhs, &jc.rhs}) {
      if (intern.emplace(*end, relations_.size()).second) {
        relations_.push_back(*end);
        appended = true;
      }
    }
  }
  if (appended) {
    std::sort(relations_.begin(), relations_.end());
    intern.clear();
    for (size_t i = 0; i < relations_.size(); ++i) {
      intern.emplace(relations_[i], i);
    }
  }
  const size_t num_relations = relations_.size();
  endpoints_.resize(edges.size());
  std::vector<size_t> degree(num_relations, 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    const size_t lhs = intern.at(edges[i].lhs);
    const size_t rhs = intern.at(edges[i].rhs);
    endpoints_[i] = {lhs, rhs};
    ++degree[lhs];
    ++degree[rhs];
  }
  adj_offsets_.assign(num_relations + 1, 0);
  for (size_t i = 0; i < num_relations; ++i) {
    adj_offsets_[i + 1] = adj_offsets_[i] + degree[i];
  }
  adj_edges_.resize(2 * edges.size());
  std::vector<size_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (size_t i = 0; i < edges.size(); ++i) {
    adj_edges_[cursor[endpoints_[i].first]++] = i;
    adj_edges_[cursor[endpoints_[i].second]++] = i;
  }
  // Connected components: BFS over relation indices.
  component_id_.assign(num_relations, kNpos);
  size_t next_id = 0;
  std::deque<size_t> frontier;
  for (size_t start = 0; start < num_relations; ++start) {
    if (component_id_[start] != kNpos) continue;
    const size_t id = next_id++;
    component_id_[start] = id;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const size_t current = frontier.front();
      frontier.pop_front();
      for (const size_t edge_index : IncidentEdges(current)) {
        const auto [lhs, rhs] = endpoints_[edge_index];
        const size_t other = lhs == current ? rhs : lhs;
        if (component_id_[other] == kNpos) {
          component_id_[other] = id;
          frontier.push_back(other);
        }
      }
    }
  }
}

std::vector<JoinGraph::Neighbor> JoinGraph::Neighbors(
    const std::string& relation) const {
  std::vector<Neighbor> out;
  const size_t index = IndexOf(relation);
  if (index == kNpos) return out;
  out.reserve(adj_offsets_[index + 1] - adj_offsets_[index]);
  const std::vector<JoinConstraint>& edges = Edges();
  for (const size_t edge_index : IncidentEdges(index)) {
    const auto [lhs, rhs] = endpoints_[edge_index];
    out.push_back(Neighbor{relations_[lhs == index ? rhs : lhs],
                           edges[edge_index]});
  }
  return out;
}

bool JoinGraph::SameComponent(const std::string& a,
                              const std::string& b) const {
  const size_t ia = IndexOf(a);
  const size_t ib = IndexOf(b);
  return ia != kNpos && ib != kNpos && component_id_[ia] == component_id_[ib];
}

std::vector<std::string> JoinGraph::ComponentOf(
    const std::string& relation) const {
  std::vector<std::string> component;
  const size_t index = IndexOf(relation);
  if (index == kNpos) return component;
  const size_t id = component_id_[index];
  // relations_ is sorted, so the output is too.
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (component_id_[i] == id) component.push_back(relations_[i]);
  }
  return component;
}

std::vector<std::vector<std::string>> JoinGraph::Components() const {
  std::vector<std::vector<std::string>> out;
  std::unordered_map<size_t, size_t> slot_of_id;
  for (size_t i = 0; i < relations_.size(); ++i) {
    const auto [it, inserted] = slot_of_id.emplace(component_id_[i], out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(relations_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

JoinGraph JoinGraph::EraseRelation(const std::string& relation) const {
  JoinGraph out;
  for (const std::string& rel : relations_) {
    if (rel != relation) out.relations_.push_back(rel);
  }
  for (const JoinConstraint& jc : Edges()) {
    if (!jc.Involves(relation)) out.owned_edges_.push_back(jc);
  }
  out.IndexParts();
  return out;
}

std::vector<JoinTree> JoinGraph::FindConnectingTrees(
    const std::set<std::string>& required,
    const std::vector<JoinConstraint>& mandatory_edges,
    const JoinTreeSearchOptions& options) const {
  std::vector<JoinTree> results;
  JoinTreeEnumerator enumerator(*this, required, mandatory_edges, options);
  while (results.size() < options.max_results) {
    std::optional<JoinTree> tree = enumerator.Next();
    if (!tree.has_value()) break;
    results.push_back(std::move(*tree));
  }
  return results;
}

JoinTreeEnumerator::JoinTreeEnumerator(
    const JoinGraph& graph, std::set<std::string> required,
    std::vector<JoinConstraint> mandatory_edges,
    const JoinTreeSearchOptions& options)
    : graph_(&graph),
      required_(std::move(required)),
      mandatory_edges_(std::move(mandatory_edges)),
      token_(options.token) {
  if (required_.empty()) return;  // frontier stays empty: exhausted
  for (const std::string& rel : required_) {
    if (graph_->IndexOf(rel) == JoinGraph::kNpos) return;  // relation gone
  }
  // Fail fast on unreachable requests: a spanning tree can only exist
  // inside one connected component, so there is no point growing sets.
  const std::string& first = *required_.begin();
  for (const std::string& rel : required_) {
    if (!graph_->SameComponent(first, rel)) return;
  }
  for (const JoinConstraint& edge : mandatory_edges_) {
    if (required_.count(edge.lhs) == 0 || required_.count(edge.rhs) == 0) {
      return;  // mandatory edge endpoint outside the required set
    }
  }
  for (const JoinConstraint& edge : mandatory_edges_) {
    mandatory_ids_.insert(edge.id);
  }
  max_relations_ = required_.size() + options.max_extra_relations;

  // Static size floor: a connecting tree contains a path between every
  // pair of required relations, so its relation count is at least the
  // largest pairwise BFS distance plus one. The uniform-cost frontier
  // starts at |required_| no matter how far apart the required relations
  // lie; this floor is visible through NextTreeSizeLowerBound() before
  // any set is expanded.
  min_tree_size_ = required_.size();
  std::vector<size_t> targets;
  targets.reserve(required_.size());
  for (const std::string& rel : required_) {
    targets.push_back(graph_->IndexOf(rel));
  }
  for (const size_t source : targets) {
    std::vector<size_t> dist(graph_->relations_.size(), JoinGraph::kNpos);
    std::deque<size_t> queue{source};
    dist[source] = 0;
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      for (const size_t edge_index : graph_->IncidentEdges(at)) {
        const auto [lhs, rhs] = graph_->endpoints_[edge_index];
        const size_t other = lhs == at ? rhs : lhs;
        if (dist[other] != JoinGraph::kNpos) continue;
        dist[other] = dist[at] + 1;
        queue.push_back(other);
      }
    }
    for (const size_t target : targets) {
      min_tree_size_ = std::max(min_tree_size_, dist[target] + 1);
    }
  }

  std::vector<std::string> seed(required_.begin(), required_.end());
  visited_.insert(seed);
  frontier_.insert(std::move(seed));
}

// Attempts to assemble a spanning tree over `chosen` (sorted): mandatory
// edges first, then any JC between chosen relations that merges
// components.
std::optional<JoinTree> JoinTreeEnumerator::TryBuildTree(
    const std::vector<std::string>& chosen) const {
  UnionFind uf;
  for (const std::string& rel : chosen) uf.Add(rel);
  JoinTree tree;
  tree.relations = chosen;
  for (const JoinConstraint& edge : mandatory_edges_) {
    uf.Unite(edge.lhs, edge.rhs);
    tree.edges.push_back(edge);
  }
  for (const std::string& rel : chosen) {
    const size_t rel_idx = graph_->IndexOf(rel);
    if (rel_idx == JoinGraph::kNpos) continue;  // isolated relation
    for (const size_t edge_index : graph_->IncidentEdges(rel_idx)) {
      const JoinConstraint& jc = graph_->Edges()[edge_index];
      if (!std::binary_search(chosen.begin(), chosen.end(), jc.Other(rel))) {
        continue;
      }
      // Skip a JC already included as mandatory.
      if (mandatory_ids_.count(jc.id) > 0) continue;
      if (uf.Unite(jc.lhs, jc.rhs)) tree.edges.push_back(jc);
    }
  }
  const std::string root = uf.Find(chosen.front());
  for (const std::string& rel : chosen) {
    if (uf.Find(rel) != root) return std::nullopt;
  }
  return tree;
}

std::optional<JoinTree> JoinTreeEnumerator::Next() {
  if (interrupted_) return std::nullopt;
  while (!frontier_.empty()) {
    // One frontier pop is the unit of logical work: spend it before
    // expanding, so a refused step leaves the frontier (and with it the
    // first-cut lower bound) untouched.
    if (!token_.Spend(1)) {
      interrupted_ = true;
      return std::nullopt;
    }
    const auto top = frontier_.begin();
    const std::vector<std::string> chosen = *top;
    frontier_.erase(top);
    ++sets_expanded_;

    std::optional<JoinTree> tree = TryBuildTree(chosen);
    if (tree.has_value()) {
      // Minimal connected superset found; don't grow it further.
      ++trees_yielded_;
      return tree;
    }
    if (chosen.size() >= max_relations_) {
      ++sets_cut_;  // disconnected set hit the bound: lost search subtree
      continue;
    }
    // Grow by any relation adjacent to the current set.
    std::set<std::string> neighbors;
    for (const std::string& rel : chosen) {
      const size_t rel_idx = graph_->IndexOf(rel);
      if (rel_idx == JoinGraph::kNpos) continue;
      for (const size_t edge_index : graph_->IncidentEdges(rel_idx)) {
        const auto [lhs, rhs] = graph_->endpoints_[edge_index];
        const std::string& other =
            graph_->relations_[lhs == rel_idx ? rhs : lhs];
        if (!std::binary_search(chosen.begin(), chosen.end(), other)) {
          neighbors.insert(other);
        }
      }
    }
    for (const std::string& neighbor : neighbors) {
      std::vector<std::string> next;
      next.reserve(chosen.size() + 1);
      const auto pos =
          std::lower_bound(chosen.begin(), chosen.end(), neighbor);
      next.insert(next.end(), chosen.begin(), pos);
      next.push_back(neighbor);
      next.insert(next.end(), pos, chosen.end());
      if (visited_.insert(next).second) {
        frontier_.insert(std::move(next));
      }
    }
  }
  return std::nullopt;
}

size_t JoinTreeEnumerator::NextTreeSizeLowerBound() const {
  if (frontier_.empty()) return static_cast<size_t>(-1);
  // Both are admissible (the distance floor bounds every tree this
  // enumerator can ever yield, the frontier minimum bounds the remaining
  // ones), so their maximum is too.
  return std::max(frontier_.begin()->size(), min_tree_size_);
}

}  // namespace eve
