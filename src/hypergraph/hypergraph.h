// Attribute-level hypergraph H(MKB) (paper Sec. 5): attributes are
// hypernodes; relations, join constraints and function-of constraints are
// hyperedges. This representation backs the Fig. 4 reproduction and
// statistics; the algorithmic work (connectivity, path enumeration) runs
// on the relation-level JoinGraph (join_graph.h), which is sound because
// JC-nodes are the only nodes shared between relation-edges.

#ifndef EVE_HYPERGRAPH_HYPERGRAPH_H_
#define EVE_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "catalog/attribute_ref.h"
#include "mkb/mkb.h"

namespace eve {

enum class HyperedgeKind { kRelation, kJoinConstraint, kFunctionOf };

struct Hyperedge {
  HyperedgeKind kind;
  std::string label;  // relation name or constraint id
  std::vector<AttributeRef> nodes;
};

class Hypergraph {
 public:
  // Builds H(MKB): one kRelation edge per catalog relation (its attribute
  // set), one kJoinConstraint edge per JC (attributes in its clauses), one
  // kFunctionOf edge per F (target and source).
  static Hypergraph Build(const Mkb& mkb);

  const std::vector<AttributeRef>& nodes() const { return nodes_; }
  const std::vector<Hyperedge>& edges() const { return edges_; }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  size_t NumEdges(HyperedgeKind kind) const;

  // Maximal connected components, each reported as the sorted list of
  // relation labels it contains. Two hyperedges are connected when they
  // share a node; per the paper's observation, relation-edges meet only at
  // JC-nodes (function-of edges can also bridge, and are included).
  std::vector<std::vector<std::string>> RelationComponents() const;

  // Human-readable summary (node/edge counts and components) for docs
  // and the Fig. 4 bench.
  std::string Summary() const;

 private:
  std::vector<AttributeRef> nodes_;
  std::vector<Hyperedge> edges_;
};

}  // namespace eve

#endif  // EVE_HYPERGRAPH_HYPERGRAPH_H_
