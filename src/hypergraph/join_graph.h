// JoinGraph: the relation-level view of H(MKB) — nodes are relations,
// (multi-)edges are join constraints. Because relation hyperedges meet only
// at JC-nodes, connectivity and join-chain enumeration on this graph are
// equivalent to the hypergraph formulation in the paper, and the sequence
// S1 ⋈_{JC} R1 ⋈ ... ⋈_{JC} S2 of Sec. 5 is a path here.
//
// Each JC edge is stored once. Construction interns every relation name to
// a dense index; adjacency lists, edge endpoints and connected-component
// ids are plain index arrays over that interning, so membership and
// component queries are O(1), traversals never hash a string, and a
// cross-component FindConnectingTrees request fails fast.

#ifndef EVE_HYPERGRAPH_JOIN_GRAPH_H_
#define EVE_HYPERGRAPH_JOIN_GRAPH_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "mkb/constraints.h"
#include "mkb/mkb.h"

namespace eve {

// A connected join expression: a set of relations plus the JC edges of a
// spanning tree over them (|edges| == |relations| - 1).
struct JoinTree {
  std::vector<std::string> relations;    // sorted
  std::vector<JoinConstraint> edges;

  // "R1 ⋈[JC1] R2 ⋈[JC4] R3".
  std::string ToString() const;
};

// Options bounding the join-tree search in FindConnectingTrees.
struct JoinTreeSearchOptions {
  // Maximum relations added beyond the required set (Steiner nodes).
  size_t max_extra_relations = 3;
  // Maximum number of trees to return.
  size_t max_results = 64;
  // Optional deadline/cancellation scope. The enumerator spends one unit
  // per frontier set popped; when the token refuses, Next() stops at that
  // safe point (interrupted(), not Exhausted()). The null token is free.
  DeadlineToken token;
};

class JoinGraph {
 public:
  // Builds the relation-level graph from every catalog relation and JC.
  // The graph borrows `mkb`'s join-constraint storage instead of copying
  // it, so it must not outlive the Mkb (nor survive a mutation of its
  // constraint set). SyncContext already ties the two lifetimes together;
  // EraseRelation results own their edges and have no such dependency.
  static JoinGraph Build(const Mkb& mkb);

  const std::vector<std::string>& relations() const { return relations_; }
  bool HasRelation(const std::string& relation) const {
    return IndexOf(relation) != kNpos;
  }

  // JC edges incident to `relation` (with the neighbor on the other side).
  struct Neighbor {
    std::string relation;
    JoinConstraint edge;
  };
  std::vector<Neighbor> Neighbors(const std::string& relation) const;

  // True if `a` and `b` lie in the same connected component.
  bool SameComponent(const std::string& a, const std::string& b) const;

  // All relations in the component of `relation` — the S_R(MKB) of the
  // paper's connected sub-hypergraph H_R(MKB). Sorted.
  std::vector<std::string> ComponentOf(const std::string& relation) const;

  // All maximal components, each sorted; components sorted among
  // themselves.
  std::vector<std::vector<std::string>> Components() const;

  // The graph with `relation` (and its incident edges) erased — the
  // relation-level H'_R(MKB').
  JoinGraph EraseRelation(const std::string& relation) const;

  // Enumerates join trees that (a) span every relation in `required`,
  // (b) include every edge in `mandatory_edges` (the surviving part of
  // Min(H_R), per Def. 3 (III)), and (c) use at most
  // options.max_extra_relations relations beyond `required`.
  // Trees are emitted smallest-first (fewest extra relations). Returns an
  // empty vector when `required` spans multiple components.
  //
  // Compatibility wrapper: drains a JoinTreeEnumerator for up to
  // options.max_results trees.
  std::vector<JoinTree> FindConnectingTrees(
      const std::set<std::string>& required,
      const std::vector<JoinConstraint>& mandatory_edges,
      const JoinTreeSearchOptions& options) const;

 private:
  friend class JoinTreeEnumerator;

  // Resolves edge endpoints to relation indices, builds the CSR adjacency
  // and assigns connected-component ids. Expects relations_ (sorted) and
  // the edge storage to be populated.
  void IndexParts();

  // Index of `relation` in relations_ (binary search), or npos if absent.
  size_t IndexOf(const std::string& relation) const;

  static constexpr size_t kNpos = static_cast<size_t>(-1);

  // Every JC edge once; adjacency lists hold indices into this vector.
  // Build() borrows the Mkb's vector (external_edges_); EraseRelation()
  // fills owned_edges_. The pointer never aims inside the object itself,
  // so default copy/move keep both forms valid.
  const std::vector<JoinConstraint>& Edges() const {
    return external_edges_ != nullptr ? *external_edges_ : owned_edges_;
  }

  // Edge indices incident to relation index i:
  // adj_edges_[adj_offsets_[i] .. adj_offsets_[i+1]).
  struct EdgeSpan {
    const size_t* begin_;
    const size_t* end_;
    const size_t* begin() const { return begin_; }
    const size_t* end() const { return end_; }
  };
  EdgeSpan IncidentEdges(size_t relation_index) const {
    return {adj_edges_.data() + adj_offsets_[relation_index],
            adj_edges_.data() + adj_offsets_[relation_index + 1]};
  }

  std::vector<std::string> relations_;  // sorted
  std::vector<JoinConstraint> owned_edges_;
  const std::vector<JoinConstraint>* external_edges_ = nullptr;
  // Per edge: (index of lhs, index of rhs) in relations_.
  std::vector<std::pair<size_t, size_t>> endpoints_;
  // CSR adjacency over relation indices (see IncidentEdges).
  std::vector<size_t> adj_offsets_;
  std::vector<size_t> adj_edges_;
  // Per relation index: connected-component id.
  std::vector<size_t> component_id_;
};

// Resumable uniform-cost enumeration of the connecting join trees of a
// required relation set: a generator over the same search space as
// FindConnectingTrees, but pull-driven. Trees are yielded in nondecreasing
// relation-count order (every JC edge has unit weight, and a tree over n
// relations has exactly n-1 edges, so relation count IS the tree's edge
// weight plus one); within one size, in lexicographic order of the sorted
// relation vector, which makes the emission sequence fully deterministic.
//
// The enumerator borrows `graph` (and, via it, the Mkb's edge storage):
// it must not outlive either. Callers interleave Next() with
// NextTreeSizeLowerBound() to drive best-first merges across many
// enumerators without materializing any tree list.
class JoinTreeEnumerator {
 public:
  // `options.max_extra_relations` bounds growth exactly as in
  // FindConnectingTrees; `options.max_results` is ignored (the caller
  // decides how many trees to pull).
  JoinTreeEnumerator(const JoinGraph& graph, std::set<std::string> required,
                     std::vector<JoinConstraint> mandatory_edges,
                     const JoinTreeSearchOptions& options);

  // The next tree in nondecreasing size order, or nullopt when the search
  // space is exhausted.
  std::optional<JoinTree> Next();

  // Admissible lower bound on the relation count of every tree not yet
  // yielded: the larger of the smallest frontier set's size and the
  // static distance floor (any connecting tree contains a path between
  // each pair of required relations, so it has at least max pairwise BFS
  // distance + 1 relations). SIZE_MAX once exhausted. The distance floor
  // is what lets a best-first merge across many enumerators rank a
  // far-flung required set as expensive before expanding a single set.
  size_t NextTreeSizeLowerBound() const;

  bool Exhausted() const { return frontier_.empty(); }

  // True once the search was stopped by options.token rather than by
  // draining the space: the frontier is intact, NextTreeSizeLowerBound()
  // still bounds the unexplored remainder (the "first-cut frontier
  // bound"), and every further Next() returns nullopt immediately.
  bool interrupted() const { return interrupted_; }

  // Frontier sets popped and examined so far.
  size_t sets_expanded() const { return sets_expanded_; }
  // Frontier sets discarded at the max_extra_relations bound before
  // becoming connected — each is a lost subtree of the search space, so a
  // nonzero count means the enumeration may be incomplete.
  size_t sets_cut() const { return sets_cut_; }
  size_t trees_yielded() const { return trees_yielded_; }

 private:
  std::optional<JoinTree> TryBuildTree(
      const std::vector<std::string>& chosen) const;

  const JoinGraph* graph_;
  std::set<std::string> required_;
  std::vector<JoinConstraint> mandatory_edges_;
  std::set<std::string> mandatory_ids_;
  size_t max_relations_ = 0;
  // Static size floor: max pairwise BFS distance among required + 1.
  size_t min_tree_size_ = 0;
  DeadlineToken token_;
  bool interrupted_ = false;

  // Uniform-cost frontier: sorted relation vectors ordered by
  // (size, lexicographic). std::set gives both the priority queue and the
  // dedup-by-key behavior for pending sets; visited_ remembers every set
  // ever enqueued so regrowing along a different edge order is skipped.
  struct SizeLexLess {
    bool operator()(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const {
      if (a.size() != b.size()) return a.size() < b.size();
      return a < b;
    }
  };
  std::set<std::vector<std::string>, SizeLexLess> frontier_;
  std::set<std::vector<std::string>> visited_;

  size_t sets_expanded_ = 0;
  size_t sets_cut_ = 0;
  size_t trees_yielded_ = 0;
};

}  // namespace eve

#endif  // EVE_HYPERGRAPH_JOIN_GRAPH_H_
