// JoinGraph: the relation-level view of H(MKB) — nodes are relations,
// (multi-)edges are join constraints. Because relation hyperedges meet only
// at JC-nodes, connectivity and join-chain enumeration on this graph are
// equivalent to the hypergraph formulation in the paper, and the sequence
// S1 ⋈_{JC} R1 ⋈ ... ⋈_{JC} S2 of Sec. 5 is a path here.

#ifndef EVE_HYPERGRAPH_JOIN_GRAPH_H_
#define EVE_HYPERGRAPH_JOIN_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "mkb/constraints.h"
#include "mkb/mkb.h"

namespace eve {

// A connected join expression: a set of relations plus the JC edges of a
// spanning tree over them (|edges| == |relations| - 1).
struct JoinTree {
  std::vector<std::string> relations;    // sorted
  std::vector<JoinConstraint> edges;

  // "R1 ⋈[JC1] R2 ⋈[JC4] R3".
  std::string ToString() const;
};

// Options bounding the join-tree search in FindConnectingTrees.
struct JoinTreeSearchOptions {
  // Maximum relations added beyond the required set (Steiner nodes).
  size_t max_extra_relations = 3;
  // Maximum number of trees to return.
  size_t max_results = 64;
};

class JoinGraph {
 public:
  // Builds the relation-level graph from every catalog relation and JC.
  static JoinGraph Build(const Mkb& mkb);

  const std::vector<std::string>& relations() const { return relations_; }
  bool HasRelation(const std::string& relation) const {
    return adjacency_.count(relation) > 0;
  }

  // JC edges incident to `relation` (with the neighbor on the other side).
  struct Neighbor {
    std::string relation;
    JoinConstraint edge;
  };
  std::vector<Neighbor> Neighbors(const std::string& relation) const;

  // True if `a` and `b` lie in the same connected component.
  bool SameComponent(const std::string& a, const std::string& b) const;

  // All relations in the component of `relation` — the S_R(MKB) of the
  // paper's connected sub-hypergraph H_R(MKB). Sorted.
  std::vector<std::string> ComponentOf(const std::string& relation) const;

  // All maximal components, each sorted; components sorted among
  // themselves.
  std::vector<std::vector<std::string>> Components() const;

  // The graph with `relation` (and its incident edges) erased — the
  // relation-level H'_R(MKB').
  JoinGraph EraseRelation(const std::string& relation) const;

  // Enumerates join trees that (a) span every relation in `required`,
  // (b) include every edge in `mandatory_edges` (the surviving part of
  // Min(H_R), per Def. 3 (III)), and (c) use at most
  // options.max_extra_relations relations beyond `required`.
  // Trees are emitted smallest-first (fewest extra relations). Returns an
  // empty vector when `required` spans multiple components.
  std::vector<JoinTree> FindConnectingTrees(
      const std::set<std::string>& required,
      const std::vector<JoinConstraint>& mandatory_edges,
      const JoinTreeSearchOptions& options) const;

 private:
  std::vector<std::string> relations_;
  // relation -> incident JC edges.
  std::map<std::string, std::vector<JoinConstraint>> adjacency_;
};

}  // namespace eve

#endif  // EVE_HYPERGRAPH_JOIN_GRAPH_H_
