// JoinGraph: the relation-level view of H(MKB) — nodes are relations,
// (multi-)edges are join constraints. Because relation hyperedges meet only
// at JC-nodes, connectivity and join-chain enumeration on this graph are
// equivalent to the hypergraph formulation in the paper, and the sequence
// S1 ⋈_{JC} R1 ⋈ ... ⋈_{JC} S2 of Sec. 5 is a path here.
//
// Each JC edge is stored once. Construction interns every relation name to
// a dense index; adjacency lists, edge endpoints and connected-component
// ids are plain index arrays over that interning, so membership and
// component queries are O(1), traversals never hash a string, and a
// cross-component FindConnectingTrees request fails fast.

#ifndef EVE_HYPERGRAPH_JOIN_GRAPH_H_
#define EVE_HYPERGRAPH_JOIN_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "mkb/constraints.h"
#include "mkb/mkb.h"

namespace eve {

// A connected join expression: a set of relations plus the JC edges of a
// spanning tree over them (|edges| == |relations| - 1).
struct JoinTree {
  std::vector<std::string> relations;    // sorted
  std::vector<JoinConstraint> edges;

  // "R1 ⋈[JC1] R2 ⋈[JC4] R3".
  std::string ToString() const;
};

// Options bounding the join-tree search in FindConnectingTrees.
struct JoinTreeSearchOptions {
  // Maximum relations added beyond the required set (Steiner nodes).
  size_t max_extra_relations = 3;
  // Maximum number of trees to return.
  size_t max_results = 64;
};

class JoinGraph {
 public:
  // Builds the relation-level graph from every catalog relation and JC.
  // The graph borrows `mkb`'s join-constraint storage instead of copying
  // it, so it must not outlive the Mkb (nor survive a mutation of its
  // constraint set). SyncContext already ties the two lifetimes together;
  // EraseRelation results own their edges and have no such dependency.
  static JoinGraph Build(const Mkb& mkb);

  const std::vector<std::string>& relations() const { return relations_; }
  bool HasRelation(const std::string& relation) const {
    return IndexOf(relation) != kNpos;
  }

  // JC edges incident to `relation` (with the neighbor on the other side).
  struct Neighbor {
    std::string relation;
    JoinConstraint edge;
  };
  std::vector<Neighbor> Neighbors(const std::string& relation) const;

  // True if `a` and `b` lie in the same connected component.
  bool SameComponent(const std::string& a, const std::string& b) const;

  // All relations in the component of `relation` — the S_R(MKB) of the
  // paper's connected sub-hypergraph H_R(MKB). Sorted.
  std::vector<std::string> ComponentOf(const std::string& relation) const;

  // All maximal components, each sorted; components sorted among
  // themselves.
  std::vector<std::vector<std::string>> Components() const;

  // The graph with `relation` (and its incident edges) erased — the
  // relation-level H'_R(MKB').
  JoinGraph EraseRelation(const std::string& relation) const;

  // Enumerates join trees that (a) span every relation in `required`,
  // (b) include every edge in `mandatory_edges` (the surviving part of
  // Min(H_R), per Def. 3 (III)), and (c) use at most
  // options.max_extra_relations relations beyond `required`.
  // Trees are emitted smallest-first (fewest extra relations). Returns an
  // empty vector when `required` spans multiple components.
  std::vector<JoinTree> FindConnectingTrees(
      const std::set<std::string>& required,
      const std::vector<JoinConstraint>& mandatory_edges,
      const JoinTreeSearchOptions& options) const;

 private:
  // Resolves edge endpoints to relation indices, builds the CSR adjacency
  // and assigns connected-component ids. Expects relations_ (sorted) and
  // the edge storage to be populated.
  void IndexParts();

  // Index of `relation` in relations_ (binary search), or npos if absent.
  size_t IndexOf(const std::string& relation) const;

  static constexpr size_t kNpos = static_cast<size_t>(-1);

  // Every JC edge once; adjacency lists hold indices into this vector.
  // Build() borrows the Mkb's vector (external_edges_); EraseRelation()
  // fills owned_edges_. The pointer never aims inside the object itself,
  // so default copy/move keep both forms valid.
  const std::vector<JoinConstraint>& Edges() const {
    return external_edges_ != nullptr ? *external_edges_ : owned_edges_;
  }

  // Edge indices incident to relation index i:
  // adj_edges_[adj_offsets_[i] .. adj_offsets_[i+1]).
  struct EdgeSpan {
    const size_t* begin_;
    const size_t* end_;
    const size_t* begin() const { return begin_; }
    const size_t* end() const { return end_; }
  };
  EdgeSpan IncidentEdges(size_t relation_index) const {
    return {adj_edges_.data() + adj_offsets_[relation_index],
            adj_edges_.data() + adj_offsets_[relation_index + 1]};
  }

  std::vector<std::string> relations_;  // sorted
  std::vector<JoinConstraint> owned_edges_;
  const std::vector<JoinConstraint>* external_edges_ = nullptr;
  // Per edge: (index of lhs, index of rhs) in relations_.
  std::vector<std::pair<size_t, size_t>> endpoints_;
  // CSR adjacency over relation indices (see IncidentEdges).
  std::vector<size_t> adj_offsets_;
  std::vector<size_t> adj_edges_;
  // Per relation index: connected-component id.
  std::vector<size_t> component_id_;
};

}  // namespace eve

#endif  // EVE_HYPERGRAPH_JOIN_GRAPH_H_
