#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

namespace eve {

Hypergraph Hypergraph::Build(const Mkb& mkb) {
  Hypergraph graph;
  std::set<AttributeRef> node_set;

  for (const std::string& rel : mkb.catalog().RelationNames()) {
    const RelationDef& def = *mkb.catalog().GetRelation(rel).value();
    Hyperedge edge;
    edge.kind = HyperedgeKind::kRelation;
    edge.label = rel;
    for (const AttributeDef& attr : def.schema.attributes()) {
      edge.nodes.push_back(AttributeRef{rel, attr.name});
      node_set.insert(edge.nodes.back());
    }
    graph.edges_.push_back(std::move(edge));
  }

  for (const JoinConstraint& jc : mkb.join_constraints()) {
    Hyperedge edge;
    edge.kind = HyperedgeKind::kJoinConstraint;
    edge.label = jc.id;
    std::vector<AttributeRef> cols;
    for (const ExprPtr& clause : jc.clauses) clause->CollectColumns(&cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    edge.nodes = std::move(cols);
    for (const AttributeRef& ref : edge.nodes) node_set.insert(ref);
    graph.edges_.push_back(std::move(edge));
  }

  for (const FunctionOfConstraint& fc : mkb.function_of_constraints()) {
    Hyperedge edge;
    edge.kind = HyperedgeKind::kFunctionOf;
    edge.label = fc.id;
    edge.nodes = {fc.target, fc.source};
    node_set.insert(fc.target);
    node_set.insert(fc.source);
    graph.edges_.push_back(std::move(edge));
  }

  graph.nodes_.assign(node_set.begin(), node_set.end());
  return graph;
}

size_t Hypergraph::NumEdges(HyperedgeKind kind) const {
  return static_cast<size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [&](const Hyperedge& e) { return e.kind == kind; }));
}

std::vector<std::vector<std::string>> Hypergraph::RelationComponents() const {
  // Union-find over hyperedges, merging edges that share a node.
  std::vector<size_t> parent(edges_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::map<AttributeRef, size_t> first_edge_with_node;
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (const AttributeRef& node : edges_[i].nodes) {
      auto [it, inserted] = first_edge_with_node.emplace(node, i);
      if (!inserted) unite(i, it->second);
    }
  }

  std::map<size_t, std::vector<std::string>> components;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].kind != HyperedgeKind::kRelation) continue;
    components[find(i)].push_back(edges_[i].label);
  }
  std::vector<std::vector<std::string>> out;
  out.reserve(components.size());
  for (auto& [root, labels] : components) {
    std::sort(labels.begin(), labels.end());
    out.push_back(std::move(labels));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Hypergraph::Summary() const {
  std::ostringstream os;
  os << "H(MKB): " << NumNodes() << " attribute nodes, "
     << NumEdges(HyperedgeKind::kRelation) << " relation edges, "
     << NumEdges(HyperedgeKind::kJoinConstraint) << " join-constraint edges, "
     << NumEdges(HyperedgeKind::kFunctionOf) << " function-of edges\n";
  const auto components = RelationComponents();
  os << "connected components (" << components.size() << "):\n";
  for (const auto& component : components) {
    os << "  {";
    for (size_t i = 0; i < component.size(); ++i) {
      if (i > 0) os << ", ";
      os << component[i];
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace eve
