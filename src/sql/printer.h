// Pretty-printer producing E-SQL text that re-parses to the same AST
// (round-trip property, tested in tests/sql).

#ifndef EVE_SQL_PRINTER_H_
#define EVE_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace eve {

// Renders `view` as a CREATE VIEW statement with positional evolution
// annotations. Identifiers that are not plain [A-Za-z_][A-Za-z0-9_]* are
// double-quoted.
std::string PrintView(const ParsedView& view);

// Quotes `name` if it is not a plain identifier.
std::string QuoteIdentifier(const std::string& name);

// Renders an expression in E-SQL syntax that re-parses to an equal tree
// (identifiers quoted as needed, string literals escaped, dates as
// DATE '...').
std::string PrintExpression(const Expr& expr);

}  // namespace eve

#endif  // EVE_SQL_PRINTER_H_
