// Recursive-descent parser for E-SQL (paper Sec. 3): SELECT-FROM-WHERE SQL
// extended with evolution-parameter annotations.
//
// Supported annotation forms, mirroring the paper's two spellings:
//   named:      C.Phone (AD = true, AR = false)
//   positional: C.Name (false, true)            -- (dispensable, replaceable)
// The view-extent parameter appears after the view name or column list:
//   CREATE VIEW V (VE = >=) AS ...      -- >= for ⊇, <= for ⊆, = for ≡, ~ for ≈
// Hyphenated names from the paper are written as quoted identifiers
// ("Accident-Ins").

#ifndef EVE_SQL_PARSER_H_
#define EVE_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace eve {

// Parses a full CREATE VIEW statement.
Result<ParsedView> ParseView(std::string_view text);

// Parses a scalar/boolean expression (used to author MKB constraint
// conditions in text form).
Result<ExprPtr> ParseExpression(std::string_view text);

// Parses "clause AND clause AND ..." into flattened conjuncts.
Result<std::vector<ExprPtr>> ParseConjunction(std::string_view text);

}  // namespace eve

#endif  // EVE_SQL_PARSER_H_
