#include "sql/parser.h"

#include <optional>

#include "common/str_util.h"
#include "sql/lexer.h"
#include "types/date.h"

namespace eve {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedView> ParseViewStatement();
  Result<ExprPtr> ParseStandaloneExpression();
  Result<std::vector<ExprPtr>> ParseStandaloneConjunction();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Check(TokenType type) const { return Peek().is(type); }
  bool Accept(TokenType type) {
    if (Check(type)) {
      Advance();
      return true;
    }
    return false;
  }
  // Case-insensitive keyword check/acceptance on identifier tokens.
  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.is(TokenType::kIdentifier) && EqualsIgnoreCase(t.text, kw);
  }
  bool AcceptKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected keyword '") + std::string(kw) + "'");
    }
    return Status::OK();
  }
  Status Expect(TokenType type, std::string_view what) {
    if (!Accept(type)) {
      return Error("expected " + std::string(what));
    }
    return Status::OK();
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position) + " (near '" +
                              Peek().text + "')");
  }

  // --- Recursion budget ---------------------------------------------------
  // The expression grammar is recursive-descent; without a bound, adversarial
  // input ("((((..." or "NOT NOT NOT ...") overflows the stack. The budget is
  // generous — a parenthesis level costs 3 guarded frames, so legitimate
  // 200-level nesting uses ~600 — while staying far below real stack limits.
  static constexpr int kMaxDepth = 1200;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };
  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) {
      return Error("expression nests too deeply");
    }
    return Status::OK();
  }

  // --- Annotations -------------------------------------------------------
  static bool IsParamKeyword(const std::string& text) {
    static constexpr std::string_view kParams[] = {"AD", "AR", "CD",
                                                   "CR", "RD", "RR"};
    for (std::string_view p : kParams) {
      if (EqualsIgnoreCase(text, p)) return true;
    }
    return false;
  }
  static bool IsBoolKeyword(const std::string& text) {
    return EqualsIgnoreCase(text, "true") || EqualsIgnoreCase(text, "false");
  }

  // True when the upcoming '(' opens an evolution annotation rather than a
  // parenthesized expression.
  bool LooksLikeAnnotation() const {
    if (!Check(TokenType::kLParen)) return false;
    const Token& first = Peek(1);
    if (!first.is(TokenType::kIdentifier)) return false;
    if (IsBoolKeyword(first.text)) {
      // Positional form "(true, false)".
      return Peek(2).is(TokenType::kComma) || Peek(2).is(TokenType::kRParen);
    }
    if (IsParamKeyword(first.text)) {
      return Peek(2).is(TokenType::kEq);
    }
    return false;
  }

  // Parses "(d, r)" or "(XD = b, XR = b)"; assumes LooksLikeAnnotation().
  Result<EvolutionParams> ParseAnnotation() {
    EvolutionParams params;
    EVE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (IsBoolKeyword(Peek().text) && !Peek(1).is(TokenType::kEq)) {
      // Positional: dispensable, replaceable.
      params.dispensable = EqualsIgnoreCase(Advance().text, "true");
      if (Accept(TokenType::kComma)) {
        if (!Check(TokenType::kIdentifier) || !IsBoolKeyword(Peek().text)) {
          return Error("expected true/false");
        }
        params.replaceable = EqualsIgnoreCase(Advance().text, "true");
      }
      EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return params;
    }
    // Named form.
    do {
      if (!Check(TokenType::kIdentifier) || !IsParamKeyword(Peek().text)) {
        return Error("expected evolution parameter name");
      }
      const std::string name = ToLower(Advance().text);
      EVE_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      if (!Check(TokenType::kIdentifier) || !IsBoolKeyword(Peek().text)) {
        return Error("expected true/false");
      }
      const bool value = EqualsIgnoreCase(Advance().text, "true");
      if (name == "ad" || name == "cd" || name == "rd") {
        params.dispensable = value;
      } else {
        params.replaceable = value;
      }
    } while (Accept(TokenType::kComma));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return params;
  }

  // --- Expressions -------------------------------------------------------
  // Precedence: OR < AND < NOT < comparison < additive < multiplicative
  // < unary < primary. Parenthesized sub-expressions restart at OR level,
  // so "(C.Name = F.PName)" and "(a + b) * c" both parse.
  Result<ExprPtr> ParseOr() {
    EVE_RETURN_IF_ERROR(CheckDepth());
    const DepthGuard guard(&depth_);
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }
  Result<ExprPtr> ParseAnd() {
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }
  Result<ExprPtr> ParseNot() {
    EVE_RETURN_IF_ERROR(CheckDepth());
    const DepthGuard guard(&depth_);
    if (AcceptKeyword("NOT")) {
      EVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }
  Result<ExprPtr> ParseComparison() {
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    std::optional<BinaryOp> op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        break;
    }
    if (!op) return lhs;
    Advance();
    EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(*op, std::move(lhs), std::move(rhs));
  }
  Result<ExprPtr> ParseAdditive() {
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      const BinaryOp op =
          Advance().is(TokenType::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }
  Result<ExprPtr> ParseMultiplicative() {
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
      const BinaryOp op =
          Advance().is(TokenType::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
      EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }
  Result<ExprPtr> ParseUnary() {
    EVE_RETURN_IF_ERROR(CheckDepth());
    const DepthGuard guard(&depth_);
    if (Accept(TokenType::kMinus)) {
      EVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNegate, std::move(operand));
    }
    return ParsePrimary();
  }
  Result<ExprPtr> ParsePrimary() {
    if (Accept(TokenType::kLParen)) {
      EVE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    if (Check(TokenType::kStringLiteral)) {
      return Expr::Lit(Value::String(Advance().text));
    }
    if (Check(TokenType::kIntLiteral)) {
      return Expr::Lit(Value::Int(std::stoll(Advance().text)));
    }
    if (Check(TokenType::kDoubleLiteral)) {
      return Expr::Lit(Value::Double(std::stod(Advance().text)));
    }
    if (Check(TokenType::kIdentifier)) {
      const std::string& text = Peek().text;
      if (EqualsIgnoreCase(text, "true")) {
        Advance();
        return Expr::Lit(Value::Bool(true));
      }
      if (EqualsIgnoreCase(text, "false")) {
        Advance();
        return Expr::Lit(Value::Bool(false));
      }
      if (EqualsIgnoreCase(text, "null")) {
        Advance();
        return Expr::Lit(Value::Null());
      }
      if (EqualsIgnoreCase(text, "date") &&
          Peek(1).is(TokenType::kStringLiteral)) {
        Advance();
        EVE_ASSIGN_OR_RETURN(const Date date, Date::Parse(Advance().text));
        return Expr::Lit(Value::MakeDate(date));
      }
      const std::string first = Advance().text;
      if (Accept(TokenType::kDot)) {
        if (!Check(TokenType::kIdentifier)) {
          return Error("expected attribute name after '.'");
        }
        return Expr::Column(AttributeRef{first, Advance().text});
      }
      if (Check(TokenType::kLParen)) {
        // Function call.
        Advance();
        std::vector<ExprPtr> args;
        if (!Check(TokenType::kRParen)) {
          do {
            EVE_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
            args.push_back(std::move(arg));
          } while (Accept(TokenType::kComma));
        }
        EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return Expr::Func(first, std::move(args));
      }
      // Unqualified column; qualifier resolved by the binder.
      return Expr::Column(AttributeRef{"", first});
    }
    return Error("expected expression");
  }

  // --- Clauses -----------------------------------------------------------
  Result<ParsedSelectItem> ParseSelectItem() {
    ParsedSelectItem item;
    EVE_ASSIGN_OR_RETURN(item.expr, ParseComparisonFreeExpr());
    if (AcceptKeyword("AS")) {
      if (!Check(TokenType::kIdentifier)) {
        return Error("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Check(TokenType::kIdentifier) && !CheckKeyword("FROM") &&
               !IsBoolKeyword(Peek().text)) {
      item.alias = Advance().text;
    }
    if (LooksLikeAnnotation()) {
      EVE_ASSIGN_OR_RETURN(item.params, ParseAnnotation());
    }
    return item;
  }

  // SELECT-list expressions must not contain comparisons; parse at additive
  // level so a stray '=' is reported clearly.
  Result<ExprPtr> ParseComparisonFreeExpr() { return ParseAdditive(); }

  Result<ParsedFromItem> ParseFromItem() {
    ParsedFromItem item;
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected relation name");
    }
    item.relation = Advance().text;
    // Optional "IS.R" qualified form: keep only the relation name; the IS
    // binding lives in the catalog.
    if (Accept(TokenType::kDot)) {
      if (!Check(TokenType::kIdentifier)) {
        return Error("expected relation name after '.'");
      }
      item.relation = Advance().text;
    }
    if (Check(TokenType::kIdentifier) && !CheckKeyword("WHERE") &&
        !IsBoolKeyword(Peek().text)) {
      item.alias = Advance().text;
    }
    if (LooksLikeAnnotation()) {
      EVE_ASSIGN_OR_RETURN(item.params, ParseAnnotation());
    }
    return item;
  }

  // Parses one annotated conjunct. A parenthesized group annotated as a
  // whole spreads the annotation over each clause inside the group.
  Status ParseWhereConjunct(std::vector<ParsedCondition>* out) {
    EVE_ASSIGN_OR_RETURN(ExprPtr clause, ParseWherePrimary());
    EvolutionParams params;
    if (LooksLikeAnnotation()) {
      EVE_ASSIGN_OR_RETURN(params, ParseAnnotation());
    }
    std::vector<ExprPtr> flattened;
    FlattenConjunction(clause, &flattened);
    for (ExprPtr& part : flattened) {
      out->push_back(ParsedCondition{std::move(part), params});
    }
    return Status::OK();
  }

  // One WHERE-level unit: a comparison, a parenthesized boolean group, or
  // an OR-chain of those. AND between units is handled by the caller so
  // annotations bind to the right clause; as a consequence, in an
  // unparenthesized "a AND b OR c" the OR binds tighter here —
  // parenthesize mixed AND/OR conditions (the CVS fragment is conjunctive
  // anyway).
  Result<ExprPtr> ParseWherePrimary() {
    EVE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseWhereAtom());
    while (AcceptKeyword("OR")) {
      EVE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseWhereAtom());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseWhereAtom() {
    EVE_RETURN_IF_ERROR(CheckDepth());
    const DepthGuard guard(&depth_);
    if (AcceptKeyword("NOT")) {
      EVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseWhereAtom());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

 public:
  Result<std::vector<ParsedCondition>> ParseWhereClause() {
    std::vector<ParsedCondition> out;
    EVE_RETURN_IF_ERROR(ParseWhereConjunct(&out));
    while (AcceptKeyword("AND")) {
      EVE_RETURN_IF_ERROR(ParseWhereConjunct(&out));
    }
    return out;
  }

 private:
  Result<ViewExtent> ParseViewExtentValue() {
    switch (Peek().type) {
      case TokenType::kEq:
        Advance();
        return ViewExtent::kEqual;
      case TokenType::kGe:
        Advance();
        return ViewExtent::kSuperset;
      case TokenType::kLe:
        Advance();
        return ViewExtent::kSubset;
      case TokenType::kTilde:
        Advance();
        return ViewExtent::kAny;
      case TokenType::kIdentifier: {
        const std::string text = ToLower(Peek().text);
        if (text == "equal" || text == "equiv") {
          Advance();
          return ViewExtent::kEqual;
        }
        if (text == "superset") {
          Advance();
          return ViewExtent::kSuperset;
        }
        if (text == "subset") {
          Advance();
          return ViewExtent::kSubset;
        }
        if (text == "any" || text == "approx") {
          Advance();
          return ViewExtent::kAny;
        }
        break;
      }
      default:
        break;
    }
    return Error("expected view-extent value (=, >=, <=, ~)");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;

 public:
  // Parses the head annotations after the view name: a column list, a VE
  // annotation, or both (in either order).
  Status ParseViewHead(ParsedView* view) {
    while (Check(TokenType::kLParen)) {
      if (CheckKeyword("VE", 1)) {
        Advance();  // (
        Advance();  // VE
        EVE_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        EVE_ASSIGN_OR_RETURN(view->extent, ParseViewExtentValue());
        EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        continue;
      }
      // Column list.
      if (!Peek(1).is(TokenType::kIdentifier)) break;
      Advance();  // (
      do {
        if (!Check(TokenType::kIdentifier)) {
          return Error("expected column name");
        }
        view->column_names.push_back(Advance().text);
      } while (Accept(TokenType::kComma));
      EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    return Status::OK();
  }

  friend Result<ParsedView> ParseViewImpl(Parser* parser);
};

Result<ParsedView> ParseViewImpl(Parser* p) {
  ParsedView view;
  EVE_RETURN_IF_ERROR(p->ExpectKeyword("CREATE"));
  EVE_RETURN_IF_ERROR(p->ExpectKeyword("VIEW"));
  if (!p->Check(TokenType::kIdentifier)) {
    return p->Error("expected view name");
  }
  view.name = p->Advance().text;
  EVE_RETURN_IF_ERROR(p->ParseViewHead(&view));
  EVE_RETURN_IF_ERROR(p->ExpectKeyword("AS"));
  EVE_RETURN_IF_ERROR(p->ExpectKeyword("SELECT"));
  do {
    EVE_ASSIGN_OR_RETURN(ParsedSelectItem item, p->ParseSelectItem());
    view.select.push_back(std::move(item));
  } while (p->Accept(TokenType::kComma));
  EVE_RETURN_IF_ERROR(p->ExpectKeyword("FROM"));
  do {
    EVE_ASSIGN_OR_RETURN(ParsedFromItem item, p->ParseFromItem());
    view.from.push_back(std::move(item));
  } while (p->Accept(TokenType::kComma));
  if (p->AcceptKeyword("WHERE")) {
    EVE_ASSIGN_OR_RETURN(view.where, p->ParseWhereClause());
  }
  if (!p->Check(TokenType::kEnd)) {
    return p->Error("unexpected trailing input");
  }
  return view;
}

Result<ParsedView> Parser::ParseViewStatement() { return ParseViewImpl(this); }

Result<ExprPtr> Parser::ParseStandaloneExpression() {
  EVE_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
  if (!Check(TokenType::kEnd)) {
    return Error("unexpected trailing input");
  }
  return expr;
}

Result<std::vector<ExprPtr>> Parser::ParseStandaloneConjunction() {
  EVE_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
  if (!Check(TokenType::kEnd)) {
    return Error("unexpected trailing input");
  }
  std::vector<ExprPtr> conjuncts;
  FlattenConjunction(expr, &conjuncts);
  return conjuncts;
}

}  // namespace

Result<ParsedView> ParseView(std::string_view text) {
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseViewStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

Result<std::vector<ExprPtr>> ParseConjunction(std::string_view text) {
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneConjunction();
}

}  // namespace eve
