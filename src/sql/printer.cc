#include "sql/printer.h"

#include <cctype>
#include <sstream>

#include "common/str_util.h"

namespace eve {

namespace {

bool IsPlainIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  // Reserved words must be quoted to survive a round trip.
  static constexpr std::string_view kReserved[] = {
      "create", "view", "as", "select", "from", "where",
      "and",    "or",   "not", "true",  "false", "null", "date"};
  for (std::string_view kw : kReserved) {
    if (EqualsIgnoreCase(name, kw)) return false;
  }
  return true;
}

// Renders an expression, quoting identifiers in column refs and function
// names as needed (Expr::ToString is for debugging; this form re-parses).
std::string PrintExpr(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      const AttributeRef& ref = expr.column();
      if (ref.relation.empty()) return QuoteIdentifier(ref.attribute);
      return QuoteIdentifier(ref.relation) + "." +
             QuoteIdentifier(ref.attribute);
    }
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      if (v.type() == DataType::kDate) {
        return "DATE '" + v.date_value().ToString() + "'";
      }
      if (v.type() == DataType::kString) {
        // Escape embedded quotes so the literal re-parses.
        std::string out = "'";
        for (char c : v.string_value()) {
          if (c == '\'') out += "''";
          else out += c;
        }
        return out + "'";
      }
      return v.ToString();
    }
    case ExprKind::kUnary:
      if (expr.unary_op() == UnaryOp::kNot) {
        return "NOT (" + PrintExpr(*expr.child(0)) + ")";
      }
      return "-(" + PrintExpr(*expr.child(0)) + ")";
    case ExprKind::kBinary:
      return "(" + PrintExpr(*expr.child(0)) + " " +
             std::string(BinaryOpToString(expr.binary_op())) + " " +
             PrintExpr(*expr.child(1)) + ")";
    case ExprKind::kFunctionCall: {
      std::string out = QuoteIdentifier(expr.function_name()) + "(";
      for (size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) out += ", ";
        out += PrintExpr(*expr.child(i));
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace

std::string PrintExpression(const Expr& expr) { return PrintExpr(expr); }

std::string QuoteIdentifier(const std::string& name) {
  if (IsPlainIdentifier(name)) return name;
  return "\"" + name + "\"";
}

std::string PrintView(const ParsedView& view) {
  std::ostringstream os;
  os << "CREATE VIEW " << QuoteIdentifier(view.name);
  if (!view.column_names.empty()) {
    std::vector<std::string> quoted;
    quoted.reserve(view.column_names.size());
    for (const std::string& name : view.column_names) {
      quoted.push_back(QuoteIdentifier(name));
    }
    os << " (" << Join(quoted, ", ") << ")";
  }
  os << " (VE = " << ViewExtentToString(view.extent) << ") AS\n";
  os << "SELECT ";
  for (size_t i = 0; i < view.select.size(); ++i) {
    if (i > 0) os << ", ";
    const ParsedSelectItem& item = view.select[i];
    os << PrintExpr(*item.expr);
    if (!item.alias.empty()) os << " AS " << QuoteIdentifier(item.alias);
    os << " " << item.params.ToString();
  }
  os << "\nFROM ";
  for (size_t i = 0; i < view.from.size(); ++i) {
    if (i > 0) os << ", ";
    const ParsedFromItem& item = view.from[i];
    os << QuoteIdentifier(item.relation);
    if (!item.alias.empty()) os << " " << QuoteIdentifier(item.alias);
    os << " " << item.params.ToString();
  }
  if (!view.where.empty()) {
    os << "\nWHERE ";
    for (size_t i = 0; i < view.where.size(); ++i) {
      if (i > 0) os << " AND ";
      const ParsedCondition& cond = view.where[i];
      os << PrintExpr(*cond.clause) << " " << cond.params.ToString();
    }
  }
  return os.str();
}

}  // namespace eve
