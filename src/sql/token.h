// Token model for the E-SQL lexer.

#ifndef EVE_SQL_TOKEN_H_
#define EVE_SQL_TOKEN_H_

#include <string>

namespace eve {

enum class TokenType {
  kEnd,
  kIdentifier,     // bare or double-quoted ("Accident-Ins")
  kStringLiteral,  // single-quoted
  kIntLiteral,
  kDoubleLiteral,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kTilde,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // identifier/keyword spelling or literal body
  size_t position = 0;  // byte offset in the input, for error messages

  bool is(TokenType t) const { return type == t; }
};

}  // namespace eve

#endif  // EVE_SQL_TOKEN_H_
