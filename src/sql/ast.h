// Parsed (unbound) representation of an E-SQL CREATE VIEW statement.
// Column references inside expressions carry the qualifier exactly as
// written (often a FROM alias); the esql binder resolves qualifiers to
// canonical relation names against the catalog.

#ifndef EVE_SQL_AST_H_
#define EVE_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "sql/evolution_params.h"

namespace eve {

// One SELECT-list entry: an expression (usually a column, possibly a
// function-of expression in evolved views), an optional output alias, and
// the attribute evolution parameters (AD, AR).
struct ParsedSelectItem {
  ExprPtr expr;
  std::string alias;  // empty: derive from the expression
  EvolutionParams params;
};

// One FROM-clause entry: relation name, optional tuple alias, and relation
// evolution parameters (RD, RR).
struct ParsedFromItem {
  std::string relation;
  std::string alias;  // empty: relation name itself
  EvolutionParams params;
};

// One WHERE-clause conjunct (a primitive clause in the paper's model) with
// condition evolution parameters (CD, CR).
struct ParsedCondition {
  ExprPtr clause;
  EvolutionParams params;
};

struct ParsedView {
  std::string name;
  // Explicit interface column names from "CREATE VIEW V (C1, ..., Cn)";
  // empty when omitted.
  std::vector<std::string> column_names;
  ViewExtent extent = ViewExtent::kAny;
  std::vector<ParsedSelectItem> select;
  std::vector<ParsedFromItem> from;
  std::vector<ParsedCondition> where;
};

}  // namespace eve

#endif  // EVE_SQL_AST_H_
