#include "sql/evolution_params.h"

namespace eve {

std::string_view ViewExtentToString(ViewExtent extent) {
  switch (extent) {
    case ViewExtent::kEqual:
      return "=";
    case ViewExtent::kSuperset:
      return ">=";
    case ViewExtent::kSubset:
      return "<=";
    case ViewExtent::kAny:
      return "~";
  }
  return "?";
}

std::string_view ViewExtentToSymbol(ViewExtent extent) {
  switch (extent) {
    case ViewExtent::kEqual:
      return "≡";
    case ViewExtent::kSuperset:
      return "⊇";
    case ViewExtent::kSubset:
      return "⊆";
    case ViewExtent::kAny:
      return "≈";
  }
  return "?";
}

std::string EvolutionParams::ToString() const {
  std::string out = "(";
  out += dispensable ? "true" : "false";
  out += ", ";
  out += replaceable ? "true" : "false";
  out += ")";
  return out;
}

}  // namespace eve
