// E-SQL evolution parameters (paper Fig. 3): per-component dispensable /
// replaceable flags and the view-extent parameter VE.
//
// Defaults follow the EVE framework convention: components are
// indispensable (must survive) but replaceable (may be substituted), and
// the view extent is unconstrained (VE = approximate).

#ifndef EVE_SQL_EVOLUTION_PARAMS_H_
#define EVE_SQL_EVOLUTION_PARAMS_H_

#include <string>
#include <string_view>

namespace eve {

// The view-extent parameter VE_V: required relationship between the new
// extent and the old extent, projected on the common interface (Def. 1 P3).
enum class ViewExtent {
  kEqual,     // ≡ : new extent equal to old
  kSuperset,  // ⊇ : new extent a superset of old
  kSubset,    // ⊆ : new extent a subset of old
  kAny,       // ≈ : anything goes (default)
};

std::string_view ViewExtentToString(ViewExtent extent);  // "=", ">=", ...
std::string_view ViewExtentToSymbol(ViewExtent extent);  // "≡", "⊇", ...

// (dispensable, replaceable) pair attached to an attribute (AD/AR),
// condition (CD/CR) or relation (RD/RR).
struct EvolutionParams {
  // true: the component may be dropped during synchronization.
  bool dispensable = false;
  // true: the component may be replaced during synchronization.
  bool replaceable = true;

  bool operator==(const EvolutionParams&) const = default;

  // "(false, true)" — the paper's positional shorthand of Eq. (5).
  std::string ToString() const;
};

}  // namespace eve

#endif  // EVE_SQL_EVOLUTION_PARAMS_H_
