#include "sql/lexer.h"

#include <cctype>

namespace eve {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenType type, std::string text, size_t pos) {
    tokens.push_back(Token{type, std::move(text), pos});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentBody(input[j])) ++j;
      push(TokenType::kIdentifier, std::string(input.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && input[j] != '"') ++j;
      if (j == n) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kIdentifier,
           std::string(input.substr(i + 1, j - i - 1)), start);
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string body;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            body += '\'';
            j += 2;
            continue;
          }
          break;
        }
        body += input[j];
        ++j;
      }
      if (j == n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kStringLiteral, std::move(body), start);
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      push(is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral,
           std::string(input.substr(i, j - i)), start);
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        continue;
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        continue;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        continue;
      case '+':
        push(TokenType::kPlus, "+", start);
        ++i;
        continue;
      case '-':
        push(TokenType::kMinus, "-", start);
        ++i;
        continue;
      case '/':
        push(TokenType::kSlash, "/", start);
        ++i;
        continue;
      case '~':
        push(TokenType::kTilde, "~", start);
        ++i;
        continue;
      case '=':
        push(TokenType::kEq, "=", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected character '!' at offset " +
                                  std::to_string(start));
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(start));
    }
  }
  push(TokenType::kEnd, "", n);
  return tokens;
}

}  // namespace eve
