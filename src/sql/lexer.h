// Hand-written lexer for E-SQL. Keywords are not distinguished from
// identifiers here; the parser matches keyword spellings case-insensitively.

#ifndef EVE_SQL_LEXER_H_
#define EVE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace eve {

// Tokenizes `input`; the final token is always kEnd. Comments run from
// "--" to end of line. Double-quoted identifiers may contain any character
// except '"' (supporting the paper's hyphenated names like "Accident-Ins").
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace eve

#endif  // EVE_SQL_LEXER_H_
