#include "cvs/extent.h"

#include <algorithm>
#include <map>
#include <set>

#include "algebra/executor.h"
#include "esql/evaluator.h"

namespace eve {

std::string_view ExtentRelationToString(ExtentRelation relation) {
  switch (relation) {
    case ExtentRelation::kEqual:
      return "equal";
    case ExtentRelation::kSuperset:
      return "superset";
    case ExtentRelation::kSubset:
      return "subset";
    case ExtentRelation::kUnknown:
      return "unknown";
  }
  return "?";
}

ExtentRelation CombineExtent(ExtentRelation a, ExtentRelation b) {
  if (a == ExtentRelation::kEqual) return b;
  if (b == ExtentRelation::kEqual) return a;
  if (a == b) return a;
  return ExtentRelation::kUnknown;
}

bool SatisfiesViewExtent(ExtentRelation inferred, ViewExtent required) {
  switch (required) {
    case ViewExtent::kAny:
      return true;
    case ViewExtent::kEqual:
      return inferred == ExtentRelation::kEqual;
    case ViewExtent::kSuperset:
      return inferred == ExtentRelation::kEqual ||
             inferred == ExtentRelation::kSuperset;
    case ViewExtent::kSubset:
      return inferred == ExtentRelation::kEqual ||
             inferred == ExtentRelation::kSubset;
  }
  return false;
}

namespace {

// One covered-attribute correspondence: R.target replaced via f(S.source).
struct CoverPair {
  AttributeRef target;  // attribute of the dropped relation R
  AttributeRef source;  // attribute of the cover relation S
};

// True when `pc`, oriented with `s` on the lhs, certifies at least one of
// `pairs`: some index i has (lhs_attrs[i], rhs_attrs[i]) equal to
// (pair.source, pair.target). This is the shape of the paper's Ex. 4
// constraint (iv): π[Name, PAddr](Person) ⊇ π[Name, Addr](Customer)
// certifies the Addr -> PAddr replacement (and the Name join attribute).
bool PcCertifiesAPair(const PCConstraint& pc, const std::string& r,
                      const std::string& s,
                      const std::vector<CoverPair>& pairs) {
  const bool s_is_lhs = pc.lhs_relation == s;
  const std::vector<AttributeRef>& s_attrs =
      s_is_lhs ? pc.lhs_attrs : pc.rhs_attrs;
  const std::vector<AttributeRef>& r_attrs =
      s_is_lhs ? pc.rhs_attrs : pc.lhs_attrs;
  (void)r;
  for (size_t i = 0; i < s_attrs.size(); ++i) {
    for (const CoverPair& pair : pairs) {
      if (s_attrs[i] == pair.source && r_attrs[i] == pair.target) {
        return true;
      }
    }
  }
  return false;
}

// Direction contributed by the strongest PC constraint between the dropped
// relation `r` and the cover relation `s` that certifies one of the
// attribute correspondences actually used, oriented as
// "π(s-side) θ π(r-side)". Unknown when no such constraint exists.
ExtentRelation PcJustification(const Mkb& mkb, const std::string& r,
                               const std::string& s,
                               const std::vector<CoverPair>& pairs) {
  ExtentRelation best = ExtentRelation::kUnknown;
  for (const PCConstraint* pc : mkb.PCConstraintsBetween(r, s)) {
    if (!pairs.empty() && !PcCertifiesAPair(*pc, r, s, pairs)) continue;
    // Orient so the lhs is the cover relation s.
    SetRelation rel = pc->relation;
    if (pc->lhs_relation == r) rel = FlipSetRelation(rel);
    ExtentRelation contribution = ExtentRelation::kUnknown;
    switch (rel) {
      case SetRelation::kEqual:
        contribution = ExtentRelation::kEqual;
        break;
      case SetRelation::kSuperset:
      case SetRelation::kProperSuperset:
        // Every tuple of R's projection appears in S: the cover join loses
        // nothing (and may add) -> V' ⊇ V.
        contribution = ExtentRelation::kSuperset;
        break;
      case SetRelation::kSubset:
      case SetRelation::kProperSubset:
        contribution = ExtentRelation::kSubset;
        break;
    }
    if (contribution == ExtentRelation::kEqual) return contribution;
    if (best == ExtentRelation::kUnknown) best = contribution;
  }
  return best;
}

}  // namespace

ExtentRelation CandidateExtentFloor(const RMapping& mapping,
                                    const ReplacementCandidate& candidate,
                                    const Mkb& mkb) {
  ExtentRelation result = ExtentRelation::kEqual;
  const std::string& r = mapping.relation;

  // Cover relations, justified by PC constraints (from the pre-change MKB)
  // that certify the attribute correspondences actually used.
  std::map<std::string, std::vector<CoverPair>> cover_pairs;
  for (const AttributeReplacement& repl : candidate.replacements) {
    std::vector<AttributeRef> sources;
    repl.replacement->CollectColumns(&sources);
    if (sources.empty()) continue;
    cover_pairs[repl.cover_relation].push_back(
        CoverPair{repl.original, sources[0]});
  }
  for (const auto& [s, pairs] : cover_pairs) {
    result = CombineExtent(result, PcJustification(mkb, r, s, pairs));
  }

  // Steiner relations (in the tree, neither kept nor covers) without any
  // PC justification make the direction unknown.
  std::set<std::string> kept(mapping.relations.begin(),
                             mapping.relations.end());
  for (const std::string& rel : candidate.tree.relations) {
    if (kept.count(rel) > 0 || cover_pairs.count(rel) > 0) continue;
    result = CombineExtent(result, PcJustification(mkb, r, rel, {}));
  }
  return result;
}

ExtentRelation InferExtentRelation(const ViewDefinition& old_view,
                                   const ViewDefinition& new_view,
                                   const RMapping& mapping,
                                   const ReplacementCandidate& candidate,
                                   const Mkb& mkb) {
  ExtentRelation result = CandidateExtentFloor(mapping, candidate, mkb);
  const std::string& r = mapping.relation;

  // Dropped dispensable conditions widen the extent.
  for (const ViewCondition& cond : old_view.where()) {
    const bool survives = std::any_of(
        new_view.where().begin(), new_view.where().end(),
        [&](const ViewCondition& nc) {
          return ClausesEquivalent(*nc.clause, *cond.clause);
        });
    if (survives) continue;
    // Conditions consumed as join constraints are accounted for by the
    // cover justification; only genuinely dropped filters widen.
    std::vector<AttributeRef> cols;
    cond.clause->CollectColumns(&cols);
    const bool touches_r =
        std::any_of(cols.begin(), cols.end(), [&](const AttributeRef& ref) {
          return ref.relation == r;
        });
    if (!touches_r && cond.params.dispensable) {
      result = CombineExtent(result, ExtentRelation::kSuperset);
    }
  }
  return result;
}

Result<ExtentRelation> CompareExtentsEmpirically(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const Database& db, const Catalog& old_catalog,
    const Catalog& new_catalog, const FunctionRegistry* registry,
    JoinStrategy strategy) {
  // Hash joins by default: the empirical check is run over many
  // seeds/states and the nested-loop cost is quadratic in table size (E8
  // measures both).
  EVE_ASSIGN_OR_RETURN(
      const Table old_table,
      EvaluateView(old_view, db, old_catalog, registry, strategy));
  EVE_ASSIGN_OR_RETURN(
      const Table new_table,
      EvaluateView(new_view, db, new_catalog, registry, strategy));

  // Common interface attributes (B̄_V ∩ B̄_V' by output name).
  std::vector<std::string> common;
  for (const std::string& name : old_view.InterfaceNames()) {
    const std::vector<std::string> new_names = new_view.InterfaceNames();
    if (std::find(new_names.begin(), new_names.end(), name) !=
        new_names.end()) {
      common.push_back(name);
    }
  }
  if (common.empty()) return ExtentRelation::kUnknown;

  auto project = [&](const Table& table) -> Table {
    // Column selection is a handle copy in the columnar layout — no
    // row-level materialization.
    std::vector<AttributeDef> attrs;
    std::vector<std::shared_ptr<const ColumnChunk>> cols;
    for (const std::string& name : common) {
      const auto idx = table.schema().IndexOf(name);
      attrs.push_back(table.schema().attribute(*idx));
      cols.push_back(table.column_handle(*idx));
    }
    Table out = Table::FromColumns(Schema(std::move(attrs)), std::move(cols),
                                   table.NumRows());
    out.Deduplicate();
    return out;
  };

  const Table old_projected = project(old_table);
  const Table new_projected = project(new_table);
  const bool new_contains_old = old_projected.IsSubsetOf(new_projected);
  const bool old_contains_new = new_projected.IsSubsetOf(old_projected);
  if (new_contains_old && old_contains_new) return ExtentRelation::kEqual;
  if (new_contains_old) return ExtentRelation::kSuperset;
  if (old_contains_new) return ExtentRelation::kSubset;
  return ExtentRelation::kUnknown;
}

}  // namespace eve
