// Conjunction implication for Def. 2: does a set of WHERE clauses imply a
// join-constraint clause? The paper requires Max(V_R) ⊆ Min(H_R), i.e.
// each JC of Min implied by the view's conditions. Plain syntactic
// matching misses semantically implied clauses (e.g. A.x = C.z following
// from A.x = B.y AND B.y = C.z), so CVS uses this engine:
//
//  * equalities: congruence closure (union-find) over columns and
//    constants — an equality is implied when both sides land in the same
//    class, or both classes carry the same constant;
//  * order comparisons: entailment from a matching premise over the same
//    equality classes (x < y implied by x' < y' when x≡x', y≡y'), from
//    constant bounds (x > 5 implies x > 1), or by constant evaluation;
//  * everything else falls back to clause-equivalence matching.
//
// The engine is sound (never claims an implication that can fail on some
// database state) but deliberately incomplete — exactly the conservative
// direction Def. 2 needs.

#ifndef EVE_CVS_IMPLICATION_H_
#define EVE_CVS_IMPLICATION_H_

#include <vector>

#include "algebra/expr.h"

namespace eve {

// Precomputed closure of a conjunction of premises, reusable across many
// conclusion checks (R-mapping probes every JC of the MKB).
class ImplicationContext {
 public:
  // Builds the closure of `premises` (a conjunction).
  explicit ImplicationContext(const std::vector<ExprPtr>& premises);

  // True when `premises AND NOT conclusion` is unsatisfiable by the
  // engine's reasoning — i.e. the conjunction implies `conclusion`.
  bool Implies(const Expr& conclusion) const;

 private:
  struct Term;  // canonicalized column-or-constant
  struct Bound;

  // Index of the term's equivalence class, creating it if new (const
  // lookups use Find on the existing table only).
  int ClassOf(const Expr& expr);
  int FindClass(const Expr& expr) const;
  int Root(int cls) const;
  void Union(int a, int b);

  std::vector<AttributeRef> columns_;   // column per column-term
  std::vector<Value> constants_;        // constant per constant-term
  // Term table: (is_constant, index into columns_/constants_).
  std::vector<std::pair<bool, size_t>> terms_;
  mutable std::vector<int> parent_;     // union-find over term ids
  // Constant value attached to a class root (if any): index into terms_.
  std::vector<int> class_constant_;
  // Order premises between class roots: (lhs term, op, rhs term).
  struct OrderFact {
    int lhs;
    BinaryOp op;  // kLt, kLe, kGt, kGe, kNe
    int rhs;
  };
  std::vector<OrderFact> order_facts_;
  // Original premises for the equivalence fallback.
  std::vector<ExprPtr> premises_;
};

// One-shot convenience.
bool ConjunctionImplies(const std::vector<ExprPtr>& premises,
                        const Expr& conclusion);

}  // namespace eve

#endif  // EVE_CVS_IMPLICATION_H_
