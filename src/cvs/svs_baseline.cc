#include "cvs/svs_baseline.h"

namespace eve {

Result<CvsResult> SvsSynchronizeDeleteRelation(const ViewDefinition& view,
                                               const std::string& relation,
                                               const Mkb& mkb,
                                               const Mkb& mkb_prime,
                                               CvsOptions options) {
  options.replacement.max_extra_relations = 0;
  return SynchronizeDeleteRelation(view, relation, mkb, mkb_prime, options);
}

Result<CvsResult> SvsSynchronizeDeleteAttribute(const ViewDefinition& view,
                                                const std::string& relation,
                                                const std::string& attribute,
                                                const Mkb& mkb,
                                                const Mkb& mkb_prime,
                                                CvsOptions options) {
  options.replacement.max_extra_relations = 0;
  return SynchronizeDeleteAttribute(view, relation, attribute, mkb, mkb_prime,
                                    options);
}

}  // namespace eve
