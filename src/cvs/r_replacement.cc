#include "cvs/r_replacement.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace eve {

namespace {

void AddUnique(std::vector<AttributeRef>* refs, const AttributeRef& ref) {
  if (std::find(refs->begin(), refs->end(), ref) == refs->end()) {
    refs->push_back(ref);
  }
}

// Attributes of `relation` appearing in `expr`.
std::vector<AttributeRef> AttrsOfRelation(const Expr& expr,
                                          const std::string& relation) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  std::vector<AttributeRef> out;
  for (const AttributeRef& ref : cols) {
    if (ref.relation == relation) AddUnique(&out, ref);
  }
  return out;
}

}  // namespace

std::string ReplacementCandidate::ToString() const {
  std::ostringstream os;
  os << "candidate: " << tree.ToString();
  for (const AttributeReplacement& repl : replacements) {
    os << "\n  " << repl.ToString();
  }
  for (const AttributeRef& ref : unreplaced) {
    os << "\n  " << ref.ToString() << " -> (dropped)";
  }
  return os.str();
}

Result<AttributeNeeds> ClassifyAttributeNeeds(const ViewDefinition& view,
                                              const RMapping& mapping) {
  const std::string& r = mapping.relation;
  AttributeNeeds needs;

  for (const ViewSelectItem& item : view.select()) {
    const std::vector<AttributeRef> attrs = AttrsOfRelation(*item.expr, r);
    if (attrs.empty()) continue;
    if (!item.params.dispensable && !item.params.replaceable) {
      return Status::ViewDisabled(
          "view " + view.name() + ": SELECT item '" + item.output_name +
          "' is indispensable and non-replaceable but references " + r);
    }
    for (const AttributeRef& ref : attrs) {
      if (!item.params.dispensable) {
        AddUnique(&needs.mandatory, ref);
      } else if (item.params.replaceable) {
        AddUnique(&needs.optional, ref);
      }
      // Dispensable + non-replaceable: the component is simply dropped.
    }
  }

  // Conditions consumed by Min(H_R) become join edges of the replacement
  // and need no covers; all other conditions referencing R do.
  std::set<size_t> consumed(mapping.consumed_conditions.begin(),
                            mapping.consumed_conditions.end());
  for (size_t i = 0; i < view.where().size(); ++i) {
    if (consumed.count(i) > 0) continue;
    const ViewCondition& cond = view.where()[i];
    const std::vector<AttributeRef> attrs = AttrsOfRelation(*cond.clause, r);
    if (attrs.empty()) continue;
    if (!cond.params.dispensable && !cond.params.replaceable) {
      return Status::ViewDisabled(
          "view " + view.name() + ": condition '" + cond.clause->ToString() +
          "' is indispensable and non-replaceable but references " + r);
    }
    for (const AttributeRef& ref : attrs) {
      if (!cond.params.dispensable) {
        AddUnique(&needs.mandatory, ref);
      } else if (cond.params.replaceable) {
        AddUnique(&needs.optional, ref);
      }
    }
  }

  // An attribute needed mandatorily anywhere is not optional.
  std::erase_if(needs.optional, [&](const AttributeRef& ref) {
    return std::find(needs.mandatory.begin(), needs.mandatory.end(), ref) !=
           needs.mandatory.end();
  });
  return needs;
}

Result<std::vector<ReplacementCandidate>> ComputeRReplacements(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options) {
  const std::string& r = mapping.relation;
  EVE_ASSIGN_OR_RETURN(const AttributeNeeds needs,
                       ClassifyAttributeNeeds(view, mapping));

  // Surviving part of Min(H_R) (Def. 3 (III)).
  std::set<std::string> kept;
  for (const std::string& rel : mapping.relations) {
    if (rel != r) kept.insert(rel);
  }
  std::vector<JoinConstraint> mandatory_edges;
  for (const JoinConstraint& edge : mapping.min_edges) {
    if (!edge.Involves(r)) mandatory_edges.push_back(edge);
  }

  // Candidate covers per attribute: one choice list per mandatory
  // attribute (choosing is compulsory), plus — under chase_optional_covers
  // — one per dispensable attribute with a "skip" (nullptr) choice so
  // dropping remains an option.
  std::vector<std::vector<const FunctionOfConstraint*>> cover_choices;
  std::vector<AttributeRef> choice_attrs;
  for (const AttributeRef& attr : needs.mandatory) {
    std::vector<const FunctionOfConstraint*> candidates;
    for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
      if (fc->source.relation == r) continue;
      if (!graph_prime.HasRelation(fc->source.relation)) continue;
      candidates.push_back(fc);
    }
    if (candidates.empty()) {
      // A mandatory attribute with no cover: R-replacement is empty.
      return std::vector<ReplacementCandidate>{};
    }
    cover_choices.push_back(std::move(candidates));
    choice_attrs.push_back(attr);
  }
  if (options.chase_optional_covers) {
    for (const AttributeRef& attr : needs.optional) {
      std::vector<const FunctionOfConstraint*> candidates{nullptr};
      for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
        if (fc->source.relation == r) continue;
        if (!graph_prime.HasRelation(fc->source.relation)) continue;
        candidates.push_back(fc);
      }
      if (candidates.size() > 1) {
        cover_choices.push_back(std::move(candidates));
        choice_attrs.push_back(attr);
      }
    }
  }

  std::vector<ReplacementCandidate> results;
  std::set<std::string> dedup_keys;

  // Iterates the (bounded) cartesian product of cover choices.
  std::vector<size_t> combo(cover_choices.size(), 0);
  size_t combos_tried = 0;
  while (true) {
    if (combos_tried++ >= options.max_cover_combinations) break;

    std::set<std::string> required = kept;
    std::vector<const FunctionOfConstraint*> chosen;
    chosen.reserve(combo.size());
    for (size_t i = 0; i < combo.size(); ++i) {
      chosen.push_back(cover_choices[i][combo[i]]);
      if (chosen.back() != nullptr) {
        required.insert(chosen.back()->source.relation);
      }
    }

    if (!required.empty()) {
      JoinTreeSearchOptions search;
      search.max_extra_relations = options.max_extra_relations;
      search.max_results = options.max_results;
      const std::vector<JoinTree> trees =
          graph_prime.FindConnectingTrees(required, mandatory_edges, search);
      for (const JoinTree& tree : trees) {
        ReplacementCandidate candidate;
        candidate.tree = tree;
        std::set<AttributeRef> replaced;
        for (size_t i = 0; i < chosen.size(); ++i) {
          if (chosen[i] == nullptr) continue;  // skipped optional cover
          candidate.replacements.push_back(
              AttributeReplacement{choice_attrs[i], chosen[i]->fn,
                                   chosen[i]->source.relation,
                                   chosen[i]->id});
          replaced.insert(choice_attrs[i]);
        }
        // Opportunistic covers for the remaining optional attributes,
        // using relations already in the tree (paper Ex. 10:
        // Age -> f(Birthday)).
        for (const AttributeRef& attr : needs.optional) {
          if (replaced.count(attr) > 0) continue;
          const FunctionOfConstraint* found = nullptr;
          for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
            if (fc->source.relation == r) continue;
            if (std::binary_search(tree.relations.begin(),
                                   tree.relations.end(),
                                   fc->source.relation)) {
              found = fc;
              break;
            }
          }
          if (found != nullptr) {
            candidate.replacements.push_back(AttributeReplacement{
                attr, found->fn, found->source.relation, found->id});
          } else {
            candidate.unreplaced.push_back(attr);
          }
        }
        // Dedup on (relations, substitutions).
        std::string key;
        for (const std::string& rel : candidate.tree.relations) {
          key += rel + "|";
        }
        key += "#";
        for (const AttributeReplacement& repl : candidate.replacements) {
          key += repl.original.ToString() + ">" + repl.constraint_id + "|";
        }
        if (dedup_keys.insert(key).second) {
          results.push_back(std::move(candidate));
        }
        if (results.size() >= options.max_results) return results;
      }
    }

    // Advance the combo odometer.
    size_t pos = 0;
    while (pos < combo.size()) {
      if (++combo[pos] < cover_choices[pos].size()) break;
      combo[pos] = 0;
      ++pos;
    }
    if (pos == combo.size()) break;  // odometer wrapped: done
    if (combo.empty()) break;        // no mandatory attrs: single combo
  }

  // Prefer smaller join skeletons.
  std::stable_sort(results.begin(), results.end(),
                   [](const ReplacementCandidate& a,
                      const ReplacementCandidate& b) {
                     return a.tree.relations.size() < b.tree.relations.size();
                   });
  return results;
}

}  // namespace eve
