#include "cvs/r_replacement.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "cvs/extent.h"

namespace eve {

namespace {

void AddUnique(std::vector<AttributeRef>* refs, const AttributeRef& ref) {
  if (std::find(refs->begin(), refs->end(), ref) == refs->end()) {
    refs->push_back(ref);
  }
}

// Attributes of `relation` appearing in `expr`.
std::vector<AttributeRef> AttrsOfRelation(const Expr& expr,
                                          const std::string& relation) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  std::vector<AttributeRef> out;
  for (const AttributeRef& ref : cols) {
    if (ref.relation == relation) AddUnique(&out, ref);
  }
  return out;
}

}  // namespace

std::string ReplacementCandidate::ToString() const {
  std::ostringstream os;
  os << "candidate: " << tree.ToString();
  for (const AttributeReplacement& repl : replacements) {
    os << "\n  " << repl.ToString();
  }
  for (const AttributeRef& ref : unreplaced) {
    os << "\n  " << ref.ToString() << " -> (dropped)";
  }
  return os.str();
}

Result<AttributeNeeds> ClassifyAttributeNeeds(const ViewDefinition& view,
                                              const RMapping& mapping) {
  const std::string& r = mapping.relation;
  AttributeNeeds needs;

  for (const ViewSelectItem& item : view.select()) {
    const std::vector<AttributeRef> attrs = AttrsOfRelation(*item.expr, r);
    if (attrs.empty()) continue;
    if (!item.params.dispensable && !item.params.replaceable) {
      return Status::ViewDisabled(
          "view " + view.name() + ": SELECT item '" + item.output_name +
          "' is indispensable and non-replaceable but references " + r);
    }
    for (const AttributeRef& ref : attrs) {
      if (!item.params.dispensable) {
        AddUnique(&needs.mandatory, ref);
      } else if (item.params.replaceable) {
        AddUnique(&needs.optional, ref);
      }
      // Dispensable + non-replaceable: the component is simply dropped.
    }
  }

  // Conditions consumed by Min(H_R) become join edges of the replacement
  // and need no covers; all other conditions referencing R do.
  std::set<size_t> consumed(mapping.consumed_conditions.begin(),
                            mapping.consumed_conditions.end());
  for (size_t i = 0; i < view.where().size(); ++i) {
    if (consumed.count(i) > 0) continue;
    const ViewCondition& cond = view.where()[i];
    const std::vector<AttributeRef> attrs = AttrsOfRelation(*cond.clause, r);
    if (attrs.empty()) continue;
    if (!cond.params.dispensable && !cond.params.replaceable) {
      return Status::ViewDisabled(
          "view " + view.name() + ": condition '" + cond.clause->ToString() +
          "' is indispensable and non-replaceable but references " + r);
    }
    for (const AttributeRef& ref : attrs) {
      if (!cond.params.dispensable) {
        AddUnique(&needs.mandatory, ref);
      } else if (cond.params.replaceable) {
        AddUnique(&needs.optional, ref);
      }
    }
  }

  // An attribute needed mandatorily anywhere is not optional.
  std::erase_if(needs.optional, [&](const AttributeRef& ref) {
    return std::find(needs.mandatory.begin(), needs.mandatory.end(), ref) !=
           needs.mandatory.end();
  });
  return needs;
}

Result<std::vector<ReplacementCandidate>> ComputeRReplacementsEager(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options) {
  const std::string& r = mapping.relation;
  EVE_ASSIGN_OR_RETURN(const AttributeNeeds needs,
                       ClassifyAttributeNeeds(view, mapping));

  // Surviving part of Min(H_R) (Def. 3 (III)).
  std::set<std::string> kept;
  for (const std::string& rel : mapping.relations) {
    if (rel != r) kept.insert(rel);
  }
  std::vector<JoinConstraint> mandatory_edges;
  for (const JoinConstraint& edge : mapping.min_edges) {
    if (!edge.Involves(r)) mandatory_edges.push_back(edge);
  }

  // Candidate covers per attribute: one choice list per mandatory
  // attribute (choosing is compulsory), plus — under chase_optional_covers
  // — one per dispensable attribute with a "skip" (nullptr) choice so
  // dropping remains an option.
  std::vector<std::vector<const FunctionOfConstraint*>> cover_choices;
  std::vector<AttributeRef> choice_attrs;
  for (const AttributeRef& attr : needs.mandatory) {
    std::vector<const FunctionOfConstraint*> candidates;
    for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
      if (fc->source.relation == r) continue;
      if (!graph_prime.HasRelation(fc->source.relation)) continue;
      candidates.push_back(fc);
    }
    if (candidates.empty()) {
      // A mandatory attribute with no cover: R-replacement is empty.
      return std::vector<ReplacementCandidate>{};
    }
    cover_choices.push_back(std::move(candidates));
    choice_attrs.push_back(attr);
  }
  if (options.chase_optional_covers) {
    for (const AttributeRef& attr : needs.optional) {
      std::vector<const FunctionOfConstraint*> candidates{nullptr};
      for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
        if (fc->source.relation == r) continue;
        if (!graph_prime.HasRelation(fc->source.relation)) continue;
        candidates.push_back(fc);
      }
      if (candidates.size() > 1) {
        cover_choices.push_back(std::move(candidates));
        choice_attrs.push_back(attr);
      }
    }
  }

  std::vector<ReplacementCandidate> results;
  std::set<std::string> dedup_keys;

  // Iterates the (bounded) cartesian product of cover choices.
  std::vector<size_t> combo(cover_choices.size(), 0);
  size_t combos_tried = 0;
  while (true) {
    if (combos_tried++ >= options.max_cover_combinations) break;

    std::set<std::string> required = kept;
    std::vector<const FunctionOfConstraint*> chosen;
    chosen.reserve(combo.size());
    for (size_t i = 0; i < combo.size(); ++i) {
      chosen.push_back(cover_choices[i][combo[i]]);
      if (chosen.back() != nullptr) {
        required.insert(chosen.back()->source.relation);
      }
    }

    if (!required.empty()) {
      JoinTreeSearchOptions search;
      search.max_extra_relations = options.max_extra_relations;
      search.max_results = options.max_results;
      const std::vector<JoinTree> trees =
          graph_prime.FindConnectingTrees(required, mandatory_edges, search);
      for (const JoinTree& tree : trees) {
        ReplacementCandidate candidate;
        candidate.tree = tree;
        std::set<AttributeRef> replaced;
        for (size_t i = 0; i < chosen.size(); ++i) {
          if (chosen[i] == nullptr) continue;  // skipped optional cover
          candidate.replacements.push_back(
              AttributeReplacement{choice_attrs[i], chosen[i]->fn,
                                   chosen[i]->source.relation,
                                   chosen[i]->id});
          replaced.insert(choice_attrs[i]);
        }
        // Opportunistic covers for the remaining optional attributes,
        // using relations already in the tree (paper Ex. 10:
        // Age -> f(Birthday)).
        for (const AttributeRef& attr : needs.optional) {
          if (replaced.count(attr) > 0) continue;
          const FunctionOfConstraint* found = nullptr;
          for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
            if (fc->source.relation == r) continue;
            if (std::binary_search(tree.relations.begin(),
                                   tree.relations.end(),
                                   fc->source.relation)) {
              found = fc;
              break;
            }
          }
          if (found != nullptr) {
            candidate.replacements.push_back(AttributeReplacement{
                attr, found->fn, found->source.relation, found->id});
          } else {
            candidate.unreplaced.push_back(attr);
          }
        }
        // Dedup on (relations, substitutions).
        std::string key;
        for (const std::string& rel : candidate.tree.relations) {
          key += rel + "|";
        }
        key += "#";
        for (const AttributeReplacement& repl : candidate.replacements) {
          key += repl.original.ToString() + ">" + repl.constraint_id + "|";
        }
        if (dedup_keys.insert(key).second) {
          results.push_back(std::move(candidate));
        }
        if (results.size() >= options.max_results) return results;
      }
    }

    // Advance the combo odometer.
    size_t pos = 0;
    while (pos < combo.size()) {
      if (++combo[pos] < cover_choices[pos].size()) break;
      combo[pos] = 0;
      ++pos;
    }
    if (pos == combo.size()) break;  // odometer wrapped: done
    if (combo.empty()) break;        // no mandatory attrs: single combo
  }

  // Prefer smaller join skeletons.
  std::stable_sort(results.begin(), results.end(),
                   [](const ReplacementCandidate& a,
                      const ReplacementCandidate& b) {
                     return a.tree.relations.size() < b.tree.relations.size();
                   });
  return results;
}

std::string DeadlineStats::ToString() const {
  if (work_budget == 0 && stop_cause == StopCause::kNone && !partial) {
    return "";
  }
  std::ostringstream os;
  os << "deadline: spent " << work_spent;
  if (work_budget > 0) os << "/" << work_budget;
  os << " units";
  if (stop_cause != StopCause::kNone) {
    os << ", stopped: " << StopCauseToString(stop_cause);
  }
  if (frontier_bound > 0) os << ", frontier bound " << frontier_bound;
  if (partial) os << ", partial";
  return os.str();
}

void DeadlineStats::MergeFrom(const DeadlineStats& other) {
  work_spent += other.work_spent;
  if (work_budget == 0) work_budget = other.work_budget;
  if (stop_cause == StopCause::kNone) stop_cause = other.stop_cause;
  if (frontier_bound == 0) frontier_bound = other.frontier_bound;
  partial = partial || other.partial;
}

std::string EnumerationStats::ToString() const {
  std::ostringstream os;
  os << "combos " << combos_generated;
  if (combos_truncated > 0) os << " (+" << combos_truncated << " truncated)";
  os << ", trees expanded " << trees_expanded;
  if (search_sets_cut > 0) os << " (" << search_sets_cut << " sets cut)";
  os << ", yielded " << candidates_yielded;
  if (duplicates_skipped > 0) os << ", dups " << duplicates_skipped;
  if (candidates_rejected > 0) os << ", rejected " << candidates_rejected;
  if (states_pending > 0) os << ", pending " << states_pending;
  os << (terminated_early ? ", terminated early"
                          : (exhausted ? ", exhausted" : ""));
  const std::string deadline_text = deadline.ToString();
  if (!deadline_text.empty()) os << "; " << deadline_text;
  return os.str();
}

void EnumerationStats::MergeFrom(const EnumerationStats& other) {
  combos_generated += other.combos_generated;
  combos_truncated += other.combos_truncated;
  trees_expanded += other.trees_expanded;
  search_sets_cut += other.search_sets_cut;
  candidates_yielded += other.candidates_yielded;
  duplicates_skipped += other.duplicates_skipped;
  candidates_rejected += other.candidates_rejected;
  states_pending += other.states_pending;
  exhausted = exhausted && other.exhausted;
  terminated_early = terminated_early || other.terminated_early;
  deadline.MergeFrom(other.deadline);
}

Result<CandidateStream> CandidateStream::Create(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options,
    const RewritingCostModel& model) {
  const std::string& r = mapping.relation;
  EVE_ASSIGN_OR_RETURN(const AttributeNeeds needs,
                       ClassifyAttributeNeeds(view, mapping));

  CandidateStream stream;
  stream.view_ = &view;
  stream.mapping_ = &mapping;
  stream.mkb_ = &mkb;
  stream.graph_ = &graph_prime;
  stream.options_ = options;
  stream.model_ = model;
  stream.optional_attrs_ = needs.optional;

  // Surviving part of Min(H_R) (Def. 3 (III)).
  for (const std::string& rel : mapping.relations) {
    if (rel != r) stream.kept_.insert(rel);
  }
  for (const JoinConstraint& edge : mapping.min_edges) {
    if (!edge.Involves(r)) stream.mandatory_edges_.push_back(edge);
  }
  for (const ViewRelation& rel : view.from()) {
    if (rel.name != r) stream.from_minus_r_.insert(rel.name);
  }

  // Candidate covers per attribute, exactly as in the eager enumeration:
  // one choice list per mandatory attribute, plus — under
  // chase_optional_covers — one per dispensable attribute with a "skip"
  // (nullptr) choice.
  std::vector<std::vector<const FunctionOfConstraint*>> cover_choices;
  for (const AttributeRef& attr : needs.mandatory) {
    std::vector<const FunctionOfConstraint*> candidates;
    for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
      if (fc->source.relation == r) continue;
      if (!graph_prime.HasRelation(fc->source.relation)) continue;
      candidates.push_back(fc);
    }
    if (candidates.empty()) {
      // A mandatory attribute with no cover: R-replacement is empty. The
      // stream is born exhausted.
      return stream;
    }
    cover_choices.push_back(std::move(candidates));
    stream.choice_attrs_.push_back(attr);
  }
  if (options.chase_optional_covers) {
    for (const AttributeRef& attr : needs.optional) {
      std::vector<const FunctionOfConstraint*> candidates{nullptr};
      for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
        if (fc->source.relation == r) continue;
        if (!graph_prime.HasRelation(fc->source.relation)) continue;
        candidates.push_back(fc);
      }
      if (candidates.size() > 1) {
        cover_choices.push_back(std::move(candidates));
        stream.choice_attrs_.push_back(attr);
      }
    }
  }

  // SELECT items no candidate can preserve: those mentioning an attribute
  // of R that is neither mandatory (always substituted) nor an optional
  // attribute with at least one surviving cover. Admissible floor on
  // dropped_attributes for every candidate.
  std::set<AttributeRef> coverable(needs.mandatory.begin(),
                                   needs.mandatory.end());
  for (const AttributeRef& attr : needs.optional) {
    for (const FunctionOfConstraint* fc : mkb.CoversOf(attr)) {
      if (fc->source.relation == r) continue;
      if (!graph_prime.HasRelation(fc->source.relation)) continue;
      coverable.insert(attr);
      break;
    }
  }
  for (const ViewSelectItem& item : view.select()) {
    const std::vector<AttributeRef> attrs = AttrsOfRelation(*item.expr, r);
    if (attrs.empty()) continue;
    const bool preservable =
        std::all_of(attrs.begin(), attrs.end(), [&](const AttributeRef& a) {
          return coverable.count(a) > 0;
        });
    if (!preservable) ++stream.dropped_floor_;
  }

  // Materialize the (bounded) cartesian product of cover choices. This is
  // the one part kept eager: a combo is a few set unions, and the
  // per-combo lower bound is NOT monotone along coordinate-increment
  // edges (switching covers can shrink the required set or strengthen the
  // extent floor), so a lattice-lazy enumeration would be unsound.
  size_t total_combos = 1;
  for (const auto& choices : cover_choices) {
    if (total_combos >
        std::numeric_limits<size_t>::max() / choices.size()) {
      total_combos = std::numeric_limits<size_t>::max();
      break;
    }
    total_combos *= choices.size();
  }
  std::vector<size_t> combo(cover_choices.size(), 0);
  while (stream.combos_.size() < options.max_cover_combinations) {
    Combo c;
    c.required = stream.kept_;
    c.chosen.reserve(combo.size());
    for (size_t i = 0; i < combo.size(); ++i) {
      c.chosen.push_back(cover_choices[i][combo[i]]);
      if (c.chosen.back() != nullptr) {
        c.required.insert(c.chosen.back()->source.relation);
      }
    }
    if (!c.required.empty()) {
      // Extent floor of the chosen covers alone: every later contribution
      // (opportunistic covers, Steiner relations) only moves the combined
      // extent up the lattice.
      ReplacementCandidate floor_probe;
      for (size_t i = 0; i < c.chosen.size(); ++i) {
        if (c.chosen[i] == nullptr) continue;
        floor_probe.replacements.push_back(AttributeReplacement{
            stream.choice_attrs_[i], c.chosen[i]->fn,
            c.chosen[i]->source.relation, c.chosen[i]->id});
      }
      c.extent_floor = CandidateExtentFloor(mapping, floor_probe, mkb);
      PartialCandidate partial;
      partial.original_from_size = view.from().size();
      partial.join_width =
          stream.JoinWidthLowerBound(c.required, c.required.size());
      partial.dropped_attributes = stream.dropped_floor_;
      partial.extent_floor = c.extent_floor;
      c.base_lower_bound = LowerBound(partial, model);

      const size_t index = stream.combos_.size();
      stream.combos_.push_back(std::move(c));
      State state;
      state.lower_bound = stream.combos_[index].base_lower_bound;
      state.kind = StateKind::kSearch;
      state.combo_index = index;
      stream.PushState(std::move(state));
    }

    // Advance the odometer.
    size_t pos = 0;
    while (pos < combo.size()) {
      if (++combo[pos] < cover_choices[pos].size()) break;
      combo[pos] = 0;
      ++pos;
    }
    if (pos == combo.size()) break;  // odometer wrapped: done
    if (combo.empty()) break;        // no choice lists: single combo
  }
  stream.stats_.combos_generated = stream.combos_.size();
  if (total_combos > options.max_cover_combinations) {
    stream.stats_.combos_truncated =
        total_combos - options.max_cover_combinations;
  }
  return stream;
}

void CandidateStream::PushState(State state) {
  state.seq = next_seq_++;
  heap_.push(std::move(state));
}

size_t CandidateStream::JoinWidthLowerBound(
    const std::set<std::string>& required, size_t tree_size) const {
  // Spliced FROM = (view FROM minus R) plus the tree relations not
  // already present. The tree spans `required` and has >= tree_size
  // relations, so it brings in at least
  // max(|required \ FROM|, tree_size - |FROM|) new ones.
  size_t outside_from = 0;
  for (const std::string& rel : required) {
    if (from_minus_r_.count(rel) == 0) ++outside_from;
  }
  if (tree_size > from_minus_r_.size()) {
    outside_from =
        std::max(outside_from, tree_size - from_minus_r_.size());
  }
  return from_minus_r_.size() + outside_from;
}

size_t CandidateStream::CountDroppedSelectItems(
    const std::vector<AttributeReplacement>& replacements) const {
  std::set<AttributeRef> replaced;
  for (const AttributeReplacement& repl : replacements) {
    replaced.insert(repl.original);
  }
  size_t dropped = 0;
  for (const ViewSelectItem& item : view_->select()) {
    const std::vector<AttributeRef> attrs =
        AttrsOfRelation(*item.expr, mapping_->relation);
    if (attrs.empty()) continue;
    const bool substitutable =
        std::all_of(attrs.begin(), attrs.end(), [&](const AttributeRef& a) {
          return replaced.count(a) > 0;
        });
    if (!substitutable) ++dropped;
  }
  return dropped;
}

void CandidateStream::FoldEnumeratorStats(Combo* combo) {
  const size_t expanded = combo->enumerator->sets_expanded();
  const size_t cut = combo->enumerator->sets_cut();
  stats_.trees_expanded += expanded - combo->seen_expanded;
  stats_.search_sets_cut += cut - combo->seen_cut;
  combo->seen_expanded = expanded;
  combo->seen_cut = cut;
}

double CandidateStream::SearchLowerBound(const Combo& combo) const {
  PartialCandidate partial;
  partial.original_from_size = view_->from().size();
  partial.join_width = JoinWidthLowerBound(
      combo.required, combo.enumerator->NextTreeSizeLowerBound());
  partial.dropped_attributes = dropped_floor_;
  partial.extent_floor = combo.extent_floor;
  return std::max(LowerBound(partial, model_), combo.base_lower_bound);
}

std::optional<ReplacementCandidate> CandidateStream::Next() {
  const std::string& r = mapping_->relation;
  if (deadline_stopped_) return std::nullopt;
  while (!heap_.empty()) {
    // Safe point: a token expired elsewhere (wall clock, a sibling's
    // spending, an explicit Cancel) stops the stream before more work.
    if (options_.token.Expired()) {
      MarkDeadlineStop(0);
      return std::nullopt;
    }
    State top = heap_.top();
    heap_.pop();
    if (top.kind == StateKind::kReady) {
      // Emitting a candidate is one unit of logical work. A refused emit
      // pushes the state back so the stream stays coherent.
      if (!options_.token.Spend(1)) {
        PushState(std::move(top));
        MarkDeadlineStop(0);
        return std::nullopt;
      }
      ++stats_.candidates_yielded;
      return std::move(top.ready);
    }
    Combo& combo = combos_[top.combo_index];
    if (!combo.enumerator.has_value()) {
      JoinTreeSearchOptions search;
      search.max_extra_relations = options_.max_extra_relations;
      search.token = options_.token;
      combo.enumerator.emplace(*graph_, combo.required, mandatory_edges_,
                               search);
      if (combo.enumerator->Exhausted()) continue;  // unreachable combo
    }
    // Lazy key update: the frontier may have grown past this state's
    // recorded bound while other combos were being explored.
    const double fresh = SearchLowerBound(combo);
    if (fresh > top.lower_bound) {
      top.lower_bound = fresh;
      PushState(std::move(top));
      continue;
    }
    std::optional<JoinTree> tree = combo.enumerator->Next();
    FoldEnumeratorStats(&combo);
    if (!tree.has_value()) {
      // A token stop inside the enumerator must not read as combo
      // exhaustion: record the frontier bound where the search was cut
      // and stop the whole stream (the token is shared).
      if (combo.enumerator->interrupted()) {
        State search_state;
        search_state.lower_bound = top.lower_bound;
        search_state.kind = StateKind::kSearch;
        search_state.combo_index = top.combo_index;
        PushState(std::move(search_state));
        MarkDeadlineStop(combo.enumerator->NextTreeSizeLowerBound());
        return std::nullopt;
      }
      continue;  // combo exhausted
    }
    if (!combo.enumerator->Exhausted()) {
      State search_state;
      search_state.lower_bound = SearchLowerBound(combo);
      search_state.kind = StateKind::kSearch;
      search_state.combo_index = top.combo_index;
      PushState(std::move(search_state));
    }

    // Assemble the candidate exactly as the eager enumeration does.
    ReplacementCandidate candidate;
    candidate.tree = std::move(*tree);
    std::set<AttributeRef> replaced;
    for (size_t i = 0; i < combo.chosen.size(); ++i) {
      if (combo.chosen[i] == nullptr) continue;  // skipped optional cover
      candidate.replacements.push_back(
          AttributeReplacement{choice_attrs_[i], combo.chosen[i]->fn,
                               combo.chosen[i]->source.relation,
                               combo.chosen[i]->id});
      replaced.insert(choice_attrs_[i]);
    }
    // Opportunistic covers for the remaining optional attributes, using
    // relations already in the tree (paper Ex. 10: Age -> f(Birthday)).
    for (const AttributeRef& attr : optional_attrs_) {
      if (replaced.count(attr) > 0) continue;
      const FunctionOfConstraint* found = nullptr;
      for (const FunctionOfConstraint* fc : mkb_->CoversOf(attr)) {
        if (fc->source.relation == r) continue;
        if (std::binary_search(candidate.tree.relations.begin(),
                               candidate.tree.relations.end(),
                               fc->source.relation)) {
          found = fc;
          break;
        }
      }
      if (found != nullptr) {
        candidate.replacements.push_back(AttributeReplacement{
            attr, found->fn, found->source.relation, found->id});
      } else {
        candidate.unreplaced.push_back(attr);
      }
    }
    // Dedup on (relations, substitutions) — same key as the eager path.
    std::string key;
    for (const std::string& rel : candidate.tree.relations) {
      key += rel + "|";
    }
    key += "#";
    for (const AttributeReplacement& repl : candidate.replacements) {
      key += repl.original.ToString() + ">" + repl.constraint_id + "|";
    }
    if (!dedup_keys_.insert(key).second) {
      ++stats_.duplicates_skipped;
      continue;
    }

    // Exact componentwise bound for the finished candidate: width and
    // dropped attributes are now known, the extent floor includes Steiner
    // relations. Clamped to the popped bound so emission stays monotone.
    size_t new_relations = 0;
    for (const std::string& rel : candidate.tree.relations) {
      if (from_minus_r_.count(rel) == 0) ++new_relations;
    }
    PartialCandidate partial;
    partial.original_from_size = view_->from().size();
    partial.join_width = from_minus_r_.size() + new_relations;
    partial.dropped_attributes =
        CountDroppedSelectItems(candidate.replacements);
    partial.extent_floor = CandidateExtentFloor(*mapping_, candidate, *mkb_);
    candidate.cost_lower_bound =
        std::max(LowerBound(partial, model_), top.lower_bound);

    State ready;
    ready.lower_bound = candidate.cost_lower_bound;
    ready.kind = StateKind::kReady;
    ready.combo_index = top.combo_index;
    ready.ready = std::move(candidate);
    PushState(std::move(ready));
  }
  stats_.exhausted = true;
  return std::nullopt;
}

void CandidateStream::MarkDeadlineStop(size_t frontier_bound) {
  deadline_stopped_ = true;
  stats_.deadline.partial = true;
  if (stats_.deadline.frontier_bound == 0) {
    stats_.deadline.frontier_bound = frontier_bound;
  }
}

double CandidateStream::NextLowerBound() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().lower_bound;
}

std::vector<std::string> CandidateStream::TruncationNotes() const {
  std::vector<std::string> notes;
  if (stats_.combos_truncated > 0) {
    notes.push_back(
        "cover-choice enumeration truncated: " +
        std::to_string(stats_.combos_truncated) + " of " +
        std::to_string(stats_.combos_truncated + stats_.combos_generated) +
        " combinations dropped by max_cover_combinations=" +
        std::to_string(options_.max_cover_combinations));
  }
  if (stats_.search_sets_cut > 0) {
    notes.push_back(
        "join-tree search cut " + std::to_string(stats_.search_sets_cut) +
        " frontier sets at max_extra_relations=" +
        std::to_string(options_.max_extra_relations) +
        "; the enumeration may be incomplete");
  }
  return notes;
}

Result<std::vector<ReplacementCandidate>> ComputeRReplacements(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options) {
  EVE_ASSIGN_OR_RETURN(
      CandidateStream stream,
      CandidateStream::Create(view, mapping, mkb, graph_prime, options,
                              DefaultRankingCostModel()));
  std::vector<ReplacementCandidate> results;
  while (results.size() < options.max_results) {
    std::optional<ReplacementCandidate> candidate = stream.Next();
    if (!candidate.has_value()) break;
    results.push_back(std::move(*candidate));
  }
  // Historical contract: smaller join skeletons first.
  std::stable_sort(results.begin(), results.end(),
                   [](const ReplacementCandidate& a,
                      const ReplacementCandidate& b) {
                     return a.tree.relations.size() < b.tree.relations.size();
                   });
  return results;
}

}  // namespace eve
