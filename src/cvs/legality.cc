#include "cvs/legality.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "esql/binder.h"

namespace eve {

namespace {

bool MentionsRelation(const ViewDefinition& view, const std::string& rel) {
  return view.ReferencesRelation(rel);
}

// Applies `substitution` to `expr` (every mapped column replaced).
ExprPtr ApplySubstitution(const ExprPtr& expr,
                          const std::map<AttributeRef, ExprPtr>& substitution) {
  ExprPtr result = expr;
  for (const auto& [from, to] : substitution) {
    result = result->SubstituteColumn(from, to);
  }
  return result;
}

}  // namespace

std::string LegalityReport::ToString() const {
  std::ostringstream os;
  os << "P1=" << (p1_unaffected ? "ok" : "FAIL")
     << " P2=" << (p2_evaluable ? "ok" : "FAIL") << " P3="
     << (p3_extent ? "ok" : "FAIL") << " (extent "
     << ExtentRelationToString(inferred_extent) << ") P4="
     << (p4_parameters ? "ok" : "FAIL");
  for (const std::string& violation : violations) {
    os << "\n  - " << violation;
  }
  return os.str();
}

LegalityReport CheckLegality(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const CapabilityChange& change, const Mkb& mkb_prime,
    ExtentRelation inferred_extent,
    const std::map<AttributeRef, ExprPtr>& substitution) {
  LegalityReport report;
  report.inferred_extent = inferred_extent;

  // --- P1: the change no longer affects the view --------------------------
  switch (change.kind) {
    case CapabilityChange::Kind::kDeleteRelation:
      report.p1_unaffected = !MentionsRelation(new_view, change.relation);
      break;
    case CapabilityChange::Kind::kDeleteAttribute:
      report.p1_unaffected = !new_view.ReferencesAttribute(
          AttributeRef{change.relation, change.attribute});
      break;
    default:
      report.p1_unaffected = true;
      break;
  }
  if (!report.p1_unaffected) {
    report.violations.push_back("P1: view still references " +
                                change.ToString());
  }

  // --- P2: evaluable over MKB' ---------------------------------------------
  const Result<ViewDefinition> rebound =
      BindView(new_view.ToParsedView(), mkb_prime.catalog());
  report.p2_evaluable = rebound.ok();
  if (!rebound.ok()) {
    report.violations.push_back("P2: " + rebound.status().ToString());
  }

  // --- P3: view-extent parameter ------------------------------------------
  report.p3_extent = SatisfiesViewExtent(inferred_extent, old_view.extent());
  if (!report.p3_extent) {
    report.violations.push_back(
        "P3: required VE " +
        std::string(ViewExtentToString(old_view.extent())) +
        " not established (inferred " +
        std::string(ExtentRelationToString(inferred_extent)) + ")");
  }

  // --- P4: evolution parameters --------------------------------------------
  report.p4_parameters = true;
  auto violate = [&](const std::string& message) {
    report.p4_parameters = false;
    report.violations.push_back("P4: " + message);
  };

  // Attributes: every indispensable SELECT item must survive under its
  // output name; non-replaceable items must survive unchanged.
  for (const ViewSelectItem& item : old_view.select()) {
    const auto found = std::find_if(
        new_view.select().begin(), new_view.select().end(),
        [&](const ViewSelectItem& ni) {
          return ni.output_name == item.output_name;
        });
    if (found == new_view.select().end()) {
      if (!item.params.dispensable) {
        violate("indispensable attribute '" + item.output_name +
                "' missing from the rewriting");
      }
      continue;
    }
    if (!item.params.replaceable && !found->expr->Equals(*item.expr)) {
      violate("non-replaceable attribute '" + item.output_name +
              "' was changed");
    }
    if (item.params.replaceable) {
      const ExprPtr expected = ApplySubstitution(item.expr, substitution);
      if (!found->expr->Equals(*expected)) {
        violate("attribute '" + item.output_name +
                "' differs from its expected substituted form");
      }
    }
  }

  // Conditions: every indispensable condition must survive, either
  // verbatim or in substituted form.
  for (const ViewCondition& cond : old_view.where()) {
    const ExprPtr expected = ApplySubstitution(cond.clause, substitution);
    const bool survives = std::any_of(
        new_view.where().begin(), new_view.where().end(),
        [&](const ViewCondition& nc) {
          return ClausesEquivalent(*nc.clause, *cond.clause) ||
                 ClausesEquivalent(*nc.clause, *expected);
        });
    if (survives) {
      if (!cond.params.replaceable) {
        const bool verbatim = std::any_of(
            new_view.where().begin(), new_view.where().end(),
            [&](const ViewCondition& nc) {
              return ClausesEquivalent(*nc.clause, *cond.clause);
            });
        if (!verbatim) {
          violate("non-replaceable condition '" + cond.clause->ToString() +
                  "' was changed");
        }
      }
      continue;
    }
    if (!cond.params.dispensable) {
      // A consumed join condition against the deleted relation is
      // legitimately superseded by replacement join conditions; treat a
      // clause mentioning the deleted relation that was substituted or
      // re-routed as satisfied when the rewriting is P1-clean.
      std::vector<AttributeRef> cols;
      cond.clause->CollectColumns(&cols);
      const bool touches_deleted = std::any_of(
          cols.begin(), cols.end(), [&](const AttributeRef& ref) {
            return change.kind == CapabilityChange::Kind::kDeleteRelation &&
                   ref.relation == change.relation;
          });
      if (!touches_deleted) {
        violate("indispensable condition '" + cond.clause->ToString() +
                "' missing from the rewriting");
      }
    }
  }

  // Relations: indispensable relations must survive (the deleted relation
  // itself is exempt when it was replaceable — its replacement stands in).
  for (const ViewRelation& rel : old_view.from()) {
    if (new_view.HasFromRelation(rel.name)) continue;
    const bool is_deleted_relation =
        change.kind == CapabilityChange::Kind::kDeleteRelation &&
        rel.name == change.relation;
    if (is_deleted_relation) {
      if (!rel.params.dispensable && !rel.params.replaceable) {
        violate("relation " + rel.name +
                " is indispensable and non-replaceable");
      }
      continue;
    }
    if (!rel.params.dispensable) {
      violate("indispensable relation " + rel.name +
              " missing from the rewriting");
    }
  }

  return report;
}

}  // namespace eve
