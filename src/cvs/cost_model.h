// Cost model for ranking legal rewritings — the paper's Sec. 7 names
// "cost models for maximal view preservation" as future work; this is the
// natural instantiation. A rewriting's cost combines what was lost
// (dropped interface attributes, dropped conditions), what it now costs
// to maintain (extra joined relations), and how weak the extent guarantee
// is. Lower is better.

#ifndef EVE_CVS_COST_MODEL_H_
#define EVE_CVS_COST_MODEL_H_

#include "cvs/extent_relation.h"
#include "esql/view_definition.h"

namespace eve {

struct RewritingCostModel {
  // Each SELECT item of the original missing from the rewriting.
  double dropped_attribute_penalty = 10.0;
  // Each WHERE condition of the original with no counterpart (verbatim or
  // substituted) in the rewriting.
  double dropped_condition_penalty = 4.0;
  // Each FROM relation in the rewriting beyond the original count
  // (maintenance cost of wider joins).
  double extra_relation_penalty = 1.0;
  // Each FROM relation of the rewriting, absolute (the join width). The
  // historical model charged only relations *beyond* the original count,
  // which cannot distinguish two rewritings that are both narrower than
  // the original; 0 keeps historical scores unchanged.
  double join_width_penalty = 0.0;
  // Extent-guarantee penalties relative to ≡.
  double extent_directional_penalty = 2.0;  // ⊇ or ⊆ instead of ≡
  double extent_unknown_penalty = 8.0;      // no guarantee at all
  // When >= 0, ⊆ is charged this instead of extent_directional_penalty
  // (the built-in default ranking prefers ⊇ over ⊆, matching EVE's
  // "preserve as much as possible"). Negative means "same as ⊇".
  double extent_subset_penalty = -1.0;
};

// The penalty `model` charges for `extent` (resolving the ⊆ override).
double ExtentPenalty(const RewritingCostModel& model, ExtentRelation extent);

// True when the extent penalties are monotone on the extent lattice:
// 0 ≤ penalty(⊇/⊆) ≤ penalty(unknown). During enumeration a candidate's
// extent only moves up that lattice (adding Steiner relations or dropping
// conditions never strengthens the guarantee), so monotone penalties make
// an extent floor admissible inside LowerBound. Non-monotone models still
// rank correctly — LowerBound just ignores the extent term for them.
bool ExtentPenaltiesMonotone(const RewritingCostModel& model);

// The built-in ranking used when CvsOptions carries no explicit cost
// model. It encodes the historical lexicographic order — extent strength
// (≡ < ⊇ < ⊆ < unknown), then most SELECT items preserved, then smallest
// join — as strictly separated weight bands, so there is exactly one
// ranking path through the code. The bands assume fewer than 1000 dropped
// attributes and a join width under 1000, far beyond any real view.
RewritingCostModel DefaultRankingCostModel();

// Itemized cost of `rewriting` as a replacement for `original`.
struct RewritingCost {
  size_t dropped_attributes = 0;
  size_t dropped_conditions = 0;
  size_t extra_relations = 0;
  size_t join_width = 0;  // FROM relations in the rewriting
  ExtentRelation extent = ExtentRelation::kUnknown;
  double total = 0.0;

  std::string ToString() const;
};

// Scores `rewriting` against `original` under `model`.
RewritingCost ScoreRewriting(const ViewDefinition& original,
                             const ViewDefinition& rewriting,
                             ExtentRelation extent,
                             const RewritingCostModel& model = {});

// What the enumeration knows about a candidate before (or without)
// splicing the full rewriting: componentwise lower bounds on the final
// RewritingCost. Every field may be an underestimate, never an
// overestimate.
struct PartialCandidate {
  // FROM relations of the original view (exact; needed to bound
  // extra_relations from join_width).
  size_t original_from_size = 0;
  // Lower bound on the rewriting's FROM size.
  size_t join_width = 0;
  // Lower bound on dropped interface attributes.
  size_t dropped_attributes = 0;
  // Weakest-case-so-far extent: the final extent can only be this value
  // or something further up the lattice (see ExtentPenaltiesMonotone).
  ExtentRelation extent_floor = ExtentRelation::kEqual;
};

// Admissible lower bound on the total cost of any completion of
// `partial` under `model`: LowerBound(p, m) <= ScoreRewriting(...).total
// for every rewriting consistent with `partial`. Dropped conditions are
// bounded by 0; the extent term uses the floor only when the model's
// extent penalties are lattice-monotone.
double LowerBound(const PartialCandidate& partial,
                  const RewritingCostModel& model);

}  // namespace eve

#endif  // EVE_CVS_COST_MODEL_H_
