// Cost model for ranking legal rewritings — the paper's Sec. 7 names
// "cost models for maximal view preservation" as future work; this is the
// natural instantiation. A rewriting's cost combines what was lost
// (dropped interface attributes, dropped conditions), what it now costs
// to maintain (extra joined relations), and how weak the extent guarantee
// is. Lower is better.

#ifndef EVE_CVS_COST_MODEL_H_
#define EVE_CVS_COST_MODEL_H_

#include "cvs/extent.h"
#include "esql/view_definition.h"

namespace eve {

struct RewritingCostModel {
  // Each SELECT item of the original missing from the rewriting.
  double dropped_attribute_penalty = 10.0;
  // Each WHERE condition of the original with no counterpart (verbatim or
  // substituted) in the rewriting.
  double dropped_condition_penalty = 4.0;
  // Each FROM relation in the rewriting beyond the original count
  // (maintenance cost of wider joins).
  double extra_relation_penalty = 1.0;
  // Extent-guarantee penalties relative to ≡.
  double extent_directional_penalty = 2.0;  // ⊇ or ⊆ instead of ≡
  double extent_unknown_penalty = 8.0;      // no guarantee at all
};

// Itemized cost of `rewriting` as a replacement for `original`.
struct RewritingCost {
  size_t dropped_attributes = 0;
  size_t dropped_conditions = 0;
  size_t extra_relations = 0;
  ExtentRelation extent = ExtentRelation::kUnknown;
  double total = 0.0;

  std::string ToString() const;
};

// Scores `rewriting` against `original` under `model`.
RewritingCost ScoreRewriting(const ViewDefinition& original,
                             const ViewDefinition& rewriting,
                             ExtentRelation extent,
                             const RewritingCostModel& model = {});

}  // namespace eve

#endif  // EVE_CVS_COST_MODEL_H_
