// The CVS (Complex View Synchronization) algorithm — paper Sec. 5.
// Given an E-SQL view, the pre-/post-change MKBs and a capability change,
// produces the set of legal rewritings (Def. 1), built by chaining join
// constraints through the MKB hypergraph (Defs. 2 and 3).

#ifndef EVE_CVS_CVS_H_
#define EVE_CVS_CVS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "cvs/cost_model.h"
#include "cvs/legality.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/view_definition.h"
#include "hypergraph/join_graph.h"
#include "mkb/capability_change.h"
#include "mkb/evolution.h"
#include "mkb/mkb.h"

namespace eve {

struct CvsOptions {
  RReplacementOptions replacement;
  // Also consider dropping a dispensable relation outright (in addition to
  // replacement-based rewritings).
  bool include_drop_rewriting = true;
  // When true, rewritings failing P3 are excluded from `rewritings` and
  // reported in diagnostics; when false they are kept with
  // legality.p3_extent == false (useful for inspection).
  bool require_view_extent = true;
  // Suffix appended to the view name for rewritings ("'" in the paper).
  std::string rename_suffix = "'";
  // Cost model ranking the rewritings (lowest total first) and driving
  // the enumeration's lower bounds. Unset means DefaultRankingCostModel()
  // — the historical lexicographic order (extent strength, attributes
  // preserved, join width) expressed as weights; there is exactly one
  // ranking path either way. See cvs/cost_model.h.
  std::optional<RewritingCostModel> cost_model;
  // Keep only the k best rewritings (0 = keep all). With k > 0 the
  // candidate pull loop stops as soon as the stream's next lower bound
  // reaches the k-th best accepted total — the returned prefix is
  // provably the same top-k the exhaustive run would rank first.
  size_t top_k = 0;
  // Hard cap on candidates pulled from the stream per synchronization
  // (0 = no extra cap beyond replacement.max_results). When it fires, a
  // diagnostic reports exactly how much of the space was left unexplored.
  size_t candidate_budget = 0;
  // Include a kUnaffected outcome line for every untouched view in each
  // ChangeReport. The default preserves the paper's full per-view report;
  // large pools (sharded serving, million-view benches) turn it off so a
  // change's report cost is O(affected), not O(pool).
  bool report_unaffected = true;
};

// One synchronized view with full provenance.
struct SynchronizedView {
  ViewDefinition view;
  RMapping mapping;
  ReplacementCandidate candidate;  // empty tree for drop-based rewritings
  bool is_drop = false;
  LegalityReport legality;
  // Itemized cost against the original view under the ranking model in
  // effect (the explicit CvsOptions::cost_model, else the built-in
  // default). Always populated for delete-change rewritings.
  RewritingCost cost;

  std::string ToString() const;
};

struct CvsResult {
  // Legal rewritings, best-first under the ranking model in effect.
  std::vector<SynchronizedView> rewritings;
  // Human-readable notes on rejected candidates and failure causes,
  // including a line for every enumeration bound that cut the search.
  std::vector<std::string> diagnostics;
  // How much of the candidate space the enumeration explored, and whether
  // it stopped early (top-k bound) or was cut (budget / caps).
  EnumerationStats enumeration;

  bool ViewPreserved() const { return !rewritings.empty(); }
};

// Per-change shared synchronization context. One capability change can
// affect many views; everything that depends only on the change — not on
// the individual view — lives here and is computed once, then shared
// read-only by every affected view's synchronization (possibly from many
// worker threads; all accessors are const and thread-safe).
//
// The MKBs are held by reference: the context must not outlive them. The
// join graph of MKB' is built lazily on first use, so changes whose
// synchronization never consults it (renames, adds) pay nothing.
class SyncContext {
 public:
  // Borrowing construction: both MKBs must outlive the context (the
  // single-change convenience path).
  SyncContext(const Mkb& mkb, const Mkb& mkb_prime)
      : mkb_(&mkb), mkb_prime_(&mkb_prime) {}

  // Pinned-version construction: the context co-owns both snapshots, so a
  // synchronization keeps its source version alive (and byte-stable) even
  // if the version store's tip advances concurrently. `base_version` is
  // the id of the pinned source version (mkb/version_store.h); the commit
  // phase re-checks it against the live tip before swapping.
  SyncContext(std::shared_ptr<const Mkb> mkb,
              std::shared_ptr<const Mkb> mkb_prime, uint64_t base_version = 0)
      : pinned_(std::move(mkb)),
        pinned_prime_(std::move(mkb_prime)),
        mkb_(pinned_.get()),
        mkb_prime_(pinned_prime_.get()),
        base_version_(base_version) {}

  SyncContext(const SyncContext&) = delete;
  SyncContext& operator=(const SyncContext&) = delete;

  const Mkb& mkb() const { return *mkb_; }
  const Mkb& mkb_prime() const { return *mkb_prime_; }
  uint64_t base_version() const { return base_version_; }

  // H'(MKB') at the relation level, built once per change.
  const JoinGraph& graph_prime() const;

 private:
  std::shared_ptr<const Mkb> pinned_;        // null in borrowing mode
  std::shared_ptr<const Mkb> pinned_prime_;  // null in borrowing mode
  const Mkb* mkb_;
  const Mkb* mkb_prime_;
  uint64_t base_version_ = 0;
  mutable std::once_flag graph_once_;
  mutable std::optional<JoinGraph> graph_prime_;
};

// CVS for ch = delete-relation R (the paper's in-depth case).
Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const SyncContext& context,
                                            const CvsOptions& options = {});

// The simplified CVS variant for ch = delete-attribute R.A.
Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const SyncContext& context,
                                             const CvsOptions& options = {});

// Dispatch over all six capability changes. add-relation / add-attribute
// leave the view untouched; renames rewrite references in place (always
// legal); deletes run the two algorithms above. Views not referencing the
// changed element are returned unchanged.
Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change,
                              const SyncContext& context,
                              const CvsOptions& options = {});

// Single-view conveniences: build a one-shot SyncContext internally.
// Synchronizing many views under one change should construct the context
// once and use the overloads above.
Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const Mkb& mkb,
                                            const Mkb& mkb_prime,
                                            const CvsOptions& options = {});
Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const Mkb& mkb,
                                             const Mkb& mkb_prime,
                                             const CvsOptions& options = {});
Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change, const Mkb& mkb,
                              const Mkb& mkb_prime,
                              const CvsOptions& options = {});

// Rewrites view references under a rename change (helper shared with eve/).
ViewDefinition ApplyRenameToView(const ViewDefinition& view,
                                 const CapabilityChange& change);

}  // namespace eve

#endif  // EVE_CVS_CVS_H_
