// View-extent reasoning for P3 of Def. 1 (CVS Step 6): inferring the
// relationship between the old and new view extents from PC constraints,
// and checking it empirically by evaluating both views.
//
// The paper defers a complete P3 procedure to future work; we implement
// the natural conservative inference it sketches in Ex. 4 (PC constraints
// justify that a cover join loses no tuples) and cross-validate it
// empirically in tests (E8 in DESIGN.md).

#ifndef EVE_CVS_EXTENT_H_
#define EVE_CVS_EXTENT_H_

#include "algebra/eval.h"
#include "common/result.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/view_definition.h"
#include "mkb/mkb.h"
#include "storage/database.h"

namespace eve {

// Relationship between the new extent V' and the old extent V, projected
// on the common interface: V' <rel> V.
enum class ExtentRelation {
  kEqual,     // V' ≡ V
  kSuperset,  // V' ⊇ V
  kSubset,    // V' ⊆ V
  kUnknown,   // cannot be established
};

std::string_view ExtentRelationToString(ExtentRelation relation);

// Lattice meet for composing per-component effects: Equal is neutral,
// Superset/Subset absorb Equal, mixing Superset with Subset (or anything
// with Unknown) yields Unknown.
ExtentRelation CombineExtent(ExtentRelation a, ExtentRelation b);

// True when the inferred relation meets the view's VE requirement
// (≡ needs Equal; ⊇ accepts Equal or Superset; ⊆ accepts Equal or Subset;
// ≈ accepts anything).
bool SatisfiesViewExtent(ExtentRelation inferred, ViewExtent required);

// Conservative inference for a replacement-based rewriting:
//  * each cover relation S for R justified by a PC constraint
//    π(S) θ π(R) contributes θ's direction;
//  * each dropped dispensable condition contributes Superset;
//  * Steiner relations without PC justification contribute Unknown.
// `mkb` is the PRE-change MKB: PC constraints mentioning the deleted
// relation only exist there (MKB' drops them), yet they still describe
// the data and justify the rewriting.
ExtentRelation InferExtentRelation(const ViewDefinition& old_view,
                                   const ViewDefinition& new_view,
                                   const RMapping& mapping,
                                   const ReplacementCandidate& candidate,
                                   const Mkb& mkb);

// Empirical comparison: evaluates both views over `db` (which must still
// hold the pre-change tables so the old view is evaluable), projects each
// onto the common interface attributes, and compares as sets.
Result<ExtentRelation> CompareExtentsEmpirically(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const Database& db, const Catalog& old_catalog,
    const Catalog& new_catalog, const FunctionRegistry* registry = nullptr);

}  // namespace eve

#endif  // EVE_CVS_EXTENT_H_
