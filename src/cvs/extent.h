// View-extent reasoning for P3 of Def. 1 (CVS Step 6): inferring the
// relationship between the old and new view extents from PC constraints,
// and checking it empirically by evaluating both views.
//
// The paper defers a complete P3 procedure to future work; we implement
// the natural conservative inference it sketches in Ex. 4 (PC constraints
// justify that a cover join loses no tuples) and cross-validate it
// empirically in tests (E8 in DESIGN.md).

#ifndef EVE_CVS_EXTENT_H_
#define EVE_CVS_EXTENT_H_

#include "algebra/eval.h"
#include "algebra/executor.h"
#include "common/result.h"
#include "cvs/extent_relation.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/view_definition.h"
#include "mkb/mkb.h"
#include "storage/database.h"

namespace eve {

// True when the inferred relation meets the view's VE requirement
// (≡ needs Equal; ⊇ accepts Equal or Superset; ⊆ accepts Equal or Subset;
// ≈ accepts anything).
bool SatisfiesViewExtent(ExtentRelation inferred, ViewExtent required);

// Conservative inference for a replacement-based rewriting:
//  * each cover relation S for R justified by a PC constraint
//    π(S) θ π(R) contributes θ's direction;
//  * each dropped dispensable condition contributes Superset;
//  * Steiner relations without PC justification contribute Unknown.
// `mkb` is the PRE-change MKB: PC constraints mentioning the deleted
// relation only exist there (MKB' drops them), yet they still describe
// the data and justify the rewriting.
ExtentRelation InferExtentRelation(const ViewDefinition& old_view,
                                   const ViewDefinition& new_view,
                                   const RMapping& mapping,
                                   const ReplacementCandidate& candidate,
                                   const Mkb& mkb);

// The tree-and-cover part of InferExtentRelation: the combined PC
// justification of the candidate's covers plus its Steiner relations,
// ignoring dropped conditions (which can only widen, i.e. move the result
// further up the lattice). Because a candidate with more tree relations
// or fewer surviving conditions combines in *more* contributions, this is
// a lattice floor for the final inferred extent — the admissible
// extent_floor fed to LowerBound during lazy enumeration. A candidate
// with an empty tree floors the covers alone (used before any tree is
// known).
ExtentRelation CandidateExtentFloor(const RMapping& mapping,
                                    const ReplacementCandidate& candidate,
                                    const Mkb& mkb);

// Empirical comparison: evaluates both views over `db` (which must still
// hold the pre-change tables so the old view is evaluable), projects each
// onto the common interface attributes, and compares as sets. `strategy`
// picks the join implementation for both evaluations (hash by default;
// kAuto upgrades large inputs to the vectorized path).
Result<ExtentRelation> CompareExtentsEmpirically(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const Database& db, const Catalog& old_catalog,
    const Catalog& new_catalog, const FunctionRegistry* registry = nullptr,
    JoinStrategy strategy = JoinStrategy::kHash);

}  // namespace eve

#endif  // EVE_CVS_EXTENT_H_
