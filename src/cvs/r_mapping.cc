#include "cvs/r_mapping.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "cvs/implication.h"

namespace eve {

namespace {

// Returns the indices of view clauses that make `jc` implied by the view.
// Each JC clause is first matched syntactically (modulo comparison
// symmetry) so the consuming view clause can be attributed; clauses with
// no syntactic twin fall back to the semantic implication engine
// (congruence closure + bounds) and consume nothing — they stay in the
// view, which is conservative and correct. Empty optional when the JC is
// not implied at all.
std::optional<std::vector<size_t>> ImpliedBy(
    const JoinConstraint& jc, const ViewDefinition& view,
    const ImplicationContext& context) {
  std::vector<size_t> used;
  for (const ExprPtr& jc_clause : jc.clauses) {
    bool found = false;
    for (size_t i = 0; i < view.where().size(); ++i) {
      if (ClausesEquivalent(*jc_clause, *view.where()[i].clause)) {
        used.push_back(i);
        found = true;
        break;
      }
    }
    if (!found && !context.Implies(*jc_clause)) return std::nullopt;
  }
  return used;
}

}  // namespace

std::string RMapping::ToString() const {
  std::ostringstream os;
  os << "R-mapping for " << relation << ":\n  Max/Min relations: {";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) os << ", ";
    os << relations[i];
  }
  os << "}\n  Min edges: ";
  for (size_t i = 0; i < min_edges.size(); ++i) {
    if (i > 0) os << ", ";
    os << min_edges[i].id;
  }
  os << "\n  consumed=" << consumed_conditions.size()
     << " local=" << local_conditions.size()
     << " rest=" << rest_conditions.size();
  return os.str();
}

Result<RMapping> ComputeRMapping(const ViewDefinition& view,
                                 const std::string& relation,
                                 const Mkb& mkb) {
  if (!view.HasFromRelation(relation)) {
    return Status::InvalidArgument("view " + view.name() +
                                   " does not use relation " + relation);
  }
  if (!mkb.catalog().HasRelation(relation)) {
    return Status::NotFound("relation not described in MKB: " + relation);
  }

  RMapping mapping;
  mapping.relation = relation;

  // Closure of the view's conjunction, shared across every JC probe.
  std::vector<ExprPtr> premises;
  premises.reserve(view.where().size());
  for (const ViewCondition& cond : view.where()) {
    premises.push_back(cond.clause);
  }
  const ImplicationContext context(premises);

  // Greedy closure from R (Def. 2 (IV) maximality): repeatedly absorb a
  // view relation joined to the current set by an implied MKB JC.
  std::set<std::string> max_set{relation};
  std::set<size_t> consumed;
  const std::vector<std::string> from = view.FromRelationNames();
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::string& candidate : from) {
      if (max_set.count(candidate) > 0) continue;
      for (const std::string& anchor : max_set) {
        bool absorbed = false;
        for (const JoinConstraint* jc :
             mkb.JoinConstraintsBetween(anchor, candidate)) {
          if (auto used = ImpliedBy(*jc, view, context)) {
            max_set.insert(candidate);
            mapping.min_edges.push_back(*jc);
            consumed.insert(used->begin(), used->end());
            grew = true;
            absorbed = true;
            break;
          }
        }
        if (absorbed) break;
      }
    }
  }

  mapping.relations.assign(max_set.begin(), max_set.end());

  // Classify the view's conditions.
  for (size_t i = 0; i < view.where().size(); ++i) {
    if (consumed.count(i) > 0) {
      mapping.consumed_conditions.push_back(i);
      continue;
    }
    const std::vector<std::string> rels =
        view.where()[i].clause->ReferencedRelations();
    const bool local = std::all_of(
        rels.begin(), rels.end(),
        [&](const std::string& rel) { return max_set.count(rel) > 0; });
    if (local) {
      mapping.local_conditions.push_back(i);
    } else {
      mapping.rest_conditions.push_back(i);
    }
  }
  for (const std::string& rel : from) {
    if (max_set.count(rel) == 0) mapping.rest_relations.push_back(rel);
  }
  return mapping;
}

}  // namespace eve
