// Explanation of a synchronization outcome: a human-readable, structured
// diff between the original view and its rewriting — which attributes were
// replaced by what (and through which constraint), which components were
// dropped, which relations and join conditions were added, and why the
// extent guarantee holds. Surfaces in EveSystem reports and evectl.

#ifndef EVE_CVS_EXPLAIN_H_
#define EVE_CVS_EXPLAIN_H_

#include <string>
#include <vector>

#include "cvs/cvs.h"

namespace eve {

struct RewritingExplanation {
  // "Customer.Name -> Accident-Ins.Holder via F2" per replaced attribute.
  std::vector<std::string> replaced_attributes;
  // Output names of SELECT items that were dropped.
  std::vector<std::string> dropped_attributes;
  // Rendered clauses that were dropped.
  std::vector<std::string> dropped_conditions;
  // Relations joined in by the rewriting.
  std::vector<std::string> added_relations;
  // Rendered join conditions added by the rewriting.
  std::vector<std::string> added_conditions;
  // One sentence on the extent guarantee.
  std::string extent_note;
  // One sentence on the ranking: the itemized cost and, for streamed
  // candidates, the admissible lower bound they were scheduled at.
  std::string cost_note;

  // Multi-line rendering ("  replaced: ...\n  dropped: ...").
  std::string ToString() const;
};

// Explains `synced` as a rewriting of `original`.
RewritingExplanation ExplainRewriting(const ViewDefinition& original,
                                      const SynchronizedView& synced);

// One line describing how much of the candidate space the enumeration
// behind `result` explored — counters plus whether it ran to exhaustion,
// stopped on the top-k bound, or was cut by a cap ("enumeration: combos 4,
// trees expanded 37, ... [exhausted]").
std::string ExplainEnumeration(const CvsResult& result);

}  // namespace eve

#endif  // EVE_CVS_EXPLAIN_H_
