#include "cvs/rewriting.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "algebra/eval.h"

namespace eve {

namespace {

bool MentionsRelation(const Expr& expr, const std::string& relation) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  return std::any_of(cols.begin(), cols.end(), [&](const AttributeRef& ref) {
    return ref.relation == relation;
  });
}

// Applies every substitution in `map` to `expr`; returns nullopt when the
// expression still references `relation` afterwards (an uncovered attr).
std::optional<ExprPtr> SubstituteAll(
    const ExprPtr& expr, const std::map<AttributeRef, ExprPtr>& map,
    const std::string& relation) {
  ExprPtr result = expr;
  for (const auto& [from, to] : map) {
    result = result->SubstituteColumn(from, to);
  }
  if (MentionsRelation(*result, relation)) return std::nullopt;
  return result;
}

}  // namespace

Result<ViewDefinition> SpliceRewriting(const ViewDefinition& view,
                                       const RMapping& mapping,
                                       const ReplacementCandidate& candidate,
                                       const std::string& new_name) {
  const std::string& r = mapping.relation;

  std::map<AttributeRef, ExprPtr> substitution;
  for (const AttributeReplacement& repl : candidate.replacements) {
    substitution.emplace(repl.original, repl.replacement);
  }

  // Evolution params of R in the original view, inherited by the
  // replacement relations (Step 5).
  EvolutionParams r_params;
  for (const ViewRelation& rel : view.from()) {
    if (rel.name == r) r_params = rel.params;
  }

  // --- SELECT ------------------------------------------------------------
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!MentionsRelation(*item.expr, r)) {
      select.push_back(item);
      continue;
    }
    const std::optional<ExprPtr> substituted =
        SubstituteAll(item.expr, substitution, r);
    if (substituted.has_value()) {
      select.push_back(
          ViewSelectItem{*substituted, item.output_name, item.params});
      continue;
    }
    if (!item.params.dispensable) {
      return Status::Internal(
          "mandatory SELECT item '" + item.output_name +
          "' has no replacement; candidate enumeration is inconsistent");
    }
    // Dispensable and uncovered: dropped.
  }
  if (select.empty()) {
    return Status::ViewDisabled("rewriting of " + view.name() +
                                " would have an empty SELECT list");
  }

  // --- FROM ---------------------------------------------------------------
  std::vector<ViewRelation> from;
  std::set<std::string> present;
  for (const ViewRelation& rel : view.from()) {
    if (rel.name == r) continue;
    from.push_back(rel);
    present.insert(rel.name);
  }
  for (const std::string& rel : candidate.tree.relations) {
    if (present.insert(rel).second) {
      from.push_back(ViewRelation{rel, r_params});
    }
  }

  // --- WHERE ---------------------------------------------------------------
  std::vector<ViewCondition> where;
  const std::set<size_t> consumed(mapping.consumed_conditions.begin(),
                                  mapping.consumed_conditions.end());
  // Ids of Min edges that survive in the candidate (kept join conditions).
  std::set<std::string> kept_edge_ids;
  for (const JoinConstraint& edge : mapping.min_edges) {
    if (!edge.Involves(r)) kept_edge_ids.insert(edge.id);
  }

  for (size_t i = 0; i < view.where().size(); ++i) {
    const ViewCondition& cond = view.where()[i];
    if (consumed.count(i) > 0) {
      // Join condition of Min(H_R): keep it only when it does not touch R
      // (the R-side join conditions are superseded by the new tree edges).
      if (!MentionsRelation(*cond.clause, r)) where.push_back(cond);
      continue;
    }
    if (!MentionsRelation(*cond.clause, r)) {
      where.push_back(cond);
      continue;
    }
    const std::optional<ExprPtr> substituted =
        SubstituteAll(cond.clause, substitution, r);
    if (substituted.has_value()) {
      where.push_back(ViewCondition{*substituted, cond.params});
      continue;
    }
    if (!cond.params.dispensable) {
      return Status::Internal(
          "mandatory condition '" + cond.clause->ToString() +
          "' has no replacement; candidate enumeration is inconsistent");
    }
    // Dispensable and uncovered: dropped.
  }

  // Join conditions of new tree edges (Def. 3 (I)): indispensable,
  // replaceable.
  for (const JoinConstraint& edge : candidate.tree.edges) {
    if (kept_edge_ids.count(edge.id) > 0) continue;
    for (const ExprPtr& clause : edge.clauses) {
      where.push_back(
          ViewCondition{clause, EvolutionParams{false, true}});
    }
  }

  // Step 4's consistency check.
  std::vector<ExprPtr> conjuncts;
  conjuncts.reserve(where.size());
  for (const ViewCondition& cond : where) conjuncts.push_back(cond.clause);
  EVE_RETURN_IF_ERROR(CheckConjunctionConsistency(conjuncts));

  return ViewDefinition(new_name, view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

Result<ViewDefinition> DropRelationRewriting(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& new_name) {
  for (const ViewRelation& rel : view.from()) {
    if (rel.name == relation && !rel.params.dispensable) {
      return Status::ViewDisabled("relation " + relation +
                                  " is indispensable in view " + view.name());
    }
  }
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!MentionsRelation(*item.expr, relation)) {
      select.push_back(item);
      continue;
    }
    if (!item.params.dispensable) {
      return Status::ViewDisabled(
          "SELECT item '" + item.output_name +
          "' is indispensable but references dropped relation " + relation);
    }
  }
  if (select.empty()) {
    return Status::ViewDisabled("dropping " + relation + " from " +
                                view.name() +
                                " would empty the SELECT list");
  }
  std::vector<ViewCondition> where;
  for (const ViewCondition& cond : view.where()) {
    if (!MentionsRelation(*cond.clause, relation)) {
      where.push_back(cond);
      continue;
    }
    if (!cond.params.dispensable) {
      return Status::ViewDisabled(
          "condition '" + cond.clause->ToString() +
          "' is indispensable but references dropped relation " + relation);
    }
  }
  std::vector<ViewRelation> from;
  for (const ViewRelation& rel : view.from()) {
    if (rel.name != relation) from.push_back(rel);
  }
  return ViewDefinition(new_name, view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

namespace {

// Equality-group representative finder for the consistency check.
class ColumnGroups {
 public:
  std::string Find(const std::string& col) {
    auto it = parent_.find(col);
    if (it == parent_.end()) {
      parent_[col] = col;
      return col;
    }
    std::string root = col;
    while (parent_[root] != root) root = parent_[root];
    return root;
  }
  void Unite(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }

 private:
  std::map<std::string, std::string> parent_;
};

struct Range {
  std::optional<double> lower;
  bool lower_strict = false;
  std::optional<double> upper;
  bool upper_strict = false;

  bool Empty() const {
    if (!lower || !upper) return false;
    if (*lower > *upper) return true;
    return *lower == *upper && (lower_strict || upper_strict);
  }
};

}  // namespace

Status CheckConjunctionConsistency(const std::vector<ExprPtr>& conjuncts) {
  ColumnGroups groups;
  // First pass: union column=column equalities.
  for (const ExprPtr& clause : conjuncts) {
    if (clause->kind() != ExprKind::kBinary ||
        clause->binary_op() != BinaryOp::kEq) {
      continue;
    }
    const Expr& lhs = *clause->child(0);
    const Expr& rhs = *clause->child(1);
    if (lhs.kind() == ExprKind::kColumn && rhs.kind() == ExprKind::kColumn) {
      groups.Unite(lhs.column().ToString(), rhs.column().ToString());
    }
  }

  std::map<std::string, Value> constants;
  std::map<std::string, Range> ranges;
  const RowBinding empty_binding;

  for (const ExprPtr& clause : conjuncts) {
    if (clause->kind() != ExprKind::kBinary ||
        !IsComparisonOp(clause->binary_op())) {
      continue;
    }
    const Expr* lhs = clause->child(0).get();
    const Expr* rhs = clause->child(1).get();
    BinaryOp op = clause->binary_op();

    // Constant-only comparison: evaluate directly.
    if (lhs->kind() == ExprKind::kLiteral &&
        rhs->kind() == ExprKind::kLiteral) {
      const Result<Value> value = EvalExpr(*clause, empty_binding, nullptr);
      if (value.ok() && value.value().type() == DataType::kBool &&
          !value.value().bool_value()) {
        return Status::FailedPrecondition(
            "inconsistent WHERE clause: " + clause->ToString() +
            " is always false");
      }
      continue;
    }

    // Normalize to column-op-literal.
    if (lhs->kind() == ExprKind::kLiteral &&
        rhs->kind() == ExprKind::kColumn) {
      std::swap(lhs, rhs);
      op = FlipComparison(op);
    }
    if (lhs->kind() != ExprKind::kColumn ||
        rhs->kind() != ExprKind::kLiteral) {
      continue;  // complex clause: out of scope for this check
    }
    const std::string group = groups.Find(lhs->column().ToString());
    const Value& lit = rhs->literal();

    if (op == BinaryOp::kEq) {
      auto [it, inserted] = constants.emplace(group, lit);
      if (!inserted && !(it->second == lit)) {
        return Status::FailedPrecondition(
            "inconsistent WHERE clause: " + group + " bound to both " +
            it->second.ToString() + " and " + lit.ToString());
      }
      continue;
    }
    // Range bounds for numeric literals.
    const Result<double> numeric = lit.AsDouble();
    if (!numeric.ok()) continue;
    Range& range = ranges[group];
    const double bound = numeric.value();
    switch (op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        if (!range.upper || bound < *range.upper) {
          range.upper = bound;
          range.upper_strict = op == BinaryOp::kLt;
        } else if (bound == *range.upper && op == BinaryOp::kLt) {
          range.upper_strict = true;
        }
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (!range.lower || bound > *range.lower) {
          range.lower = bound;
          range.lower_strict = op == BinaryOp::kGt;
        } else if (bound == *range.lower && op == BinaryOp::kGt) {
          range.lower_strict = true;
        }
        break;
      default:
        break;
    }
    if (range.Empty()) {
      return Status::FailedPrecondition(
          "inconsistent WHERE clause: empty range for " + group);
    }
  }

  // Cross-check constants against ranges.
  for (const auto& [group, value] : constants) {
    auto it = ranges.find(group);
    if (it == ranges.end()) continue;
    const Result<double> numeric = value.AsDouble();
    if (!numeric.ok()) continue;
    const Range& range = it->second;
    const double v = numeric.value();
    if (range.lower &&
        (v < *range.lower || (v == *range.lower && range.lower_strict))) {
      return Status::FailedPrecondition(
          "inconsistent WHERE clause: " + group + " = " + value.ToString() +
          " violates a lower bound");
    }
    if (range.upper &&
        (v > *range.upper || (v == *range.upper && range.upper_strict))) {
      return Status::FailedPrecondition(
          "inconsistent WHERE clause: " + group + " = " + value.ToString() +
          " violates an upper bound");
    }
  }
  return Status::OK();
}

}  // namespace eve
