// CVS Steps 4–5: splicing a replacement candidate into the affected view —
// substitute R's attributes with their replacements, swap Min(H_R) for
// Max(V_{j,R}), re-derive evolution parameters, and check the new WHERE
// clause for inconsistencies.

#ifndef EVE_CVS_REWRITING_H_
#define EVE_CVS_REWRITING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/view_definition.h"
#include "mkb/mkb.h"

namespace eve {

// Builds the rewritten view V' (paper Eq. 10 with Max(V_R) replaced by
// Max(V_{j,R})). Evolution parameters of V' (Step 5): surviving components
// keep theirs; replacement relations inherit R's; join conditions
// introduced by new tree edges are (indispensable, replaceable).
// Fails with kFailedPrecondition when the spliced WHERE clause is
// inconsistent (Step 4's check).
Result<ViewDefinition> SpliceRewriting(const ViewDefinition& view,
                                       const RMapping& mapping,
                                       const ReplacementCandidate& candidate,
                                       const std::string& new_name);

// Drop-based rewriting for a dispensable relation R: removes R, every
// SELECT item and WHERE clause referencing it. Legal only when all those
// components are dispensable (checked).
Result<ViewDefinition> DropRelationRewriting(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& new_name);

// Conservative conjunction satisfiability check used by Step 4:
// detects (a) constant comparisons that are false, (b) conflicting
// constant bindings within a column equality group, and (c) empty numeric
// ranges from </<=/>/>= bounds. Returns OK when no inconsistency is found.
Status CheckConjunctionConsistency(const std::vector<ExprPtr>& conjuncts);

}  // namespace eve

#endif  // EVE_CVS_REWRITING_H_
