// R-mapping (paper Def. 2): decomposes a view V with respect to a relation
// R into
//   Max(V_R): the maximal join of view relations around R whose join
//             conditions imply MKB join constraints, and
//   Min(H_R): the minimal MKB join expression containing it,
// so that V = π( σ_{C_Max/Min}(Min(H_R)) ⋈_{C_Rest} Rest )   (Eq. 10).

#ifndef EVE_CVS_R_MAPPING_H_
#define EVE_CVS_R_MAPPING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "esql/view_definition.h"
#include "mkb/mkb.h"

namespace eve {

struct RMapping {
  // The relation being analyzed (R).
  std::string relation;
  // Relations of Max(V_R) / Min(H_R): R plus every view relation reachable
  // from R through implied join constraints. Sorted.
  std::vector<std::string> relations;
  // The join constraints of Min(H_R) — a spanning tree over `relations`.
  std::vector<JoinConstraint> min_edges;
  // Indices into view.where() of clauses consumed by Min's join
  // constraints (they are implied join conditions, Eq. 6/7).
  std::vector<size_t> consumed_conditions;
  // Indices of clauses over `relations` only, not consumed: C_{Max/Min}.
  std::vector<size_t> local_conditions;
  // Indices of the remaining clauses: C_Rest.
  std::vector<size_t> rest_conditions;
  // View FROM relations outside Max(V_R): Rest.
  std::vector<std::string> rest_relations;

  std::string ToString() const;
};

// Computes the R-mapping of `view` w.r.t. `relation` against `mkb`
// (which must still contain `relation` — this is the *pre-change* MKB).
// A view JC-implication uses syntactic matching: an MKB join constraint is
// implied when each of its clauses appears among the view's WHERE clauses
// (modulo comparison symmetry).
Result<RMapping> ComputeRMapping(const ViewDefinition& view,
                                 const std::string& relation,
                                 const Mkb& mkb);

}  // namespace eve

#endif  // EVE_CVS_R_MAPPING_H_
