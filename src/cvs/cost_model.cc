#include "cvs/cost_model.h"

#include <algorithm>
#include <sstream>

namespace eve {

std::string RewritingCost::ToString() const {
  std::ostringstream os;
  os << "cost " << total << " (dropped attrs: " << dropped_attributes
     << ", dropped conds: " << dropped_conditions
     << ", extra relations: " << extra_relations << ", extent "
     << ExtentRelationToString(extent) << ")";
  return os.str();
}

RewritingCost ScoreRewriting(const ViewDefinition& original,
                             const ViewDefinition& rewriting,
                             ExtentRelation extent,
                             const RewritingCostModel& model) {
  RewritingCost cost;
  cost.extent = extent;

  // Dropped interface attributes (by output name).
  const std::vector<std::string> new_names = rewriting.InterfaceNames();
  for (const ViewSelectItem& item : original.select()) {
    if (std::find(new_names.begin(), new_names.end(), item.output_name) ==
        new_names.end()) {
      ++cost.dropped_attributes;
    }
  }

  // Dropped conditions: an original clause with no counterpart. A clause
  // that referenced a relation no longer in the rewriting counts as
  // substituted (its join role was re-routed), not dropped, when the
  // rewriting added replacement join conditions; we approximate by
  // counting clauses over surviving relations only.
  for (const ViewCondition& cond : original.where()) {
    const std::vector<std::string> rels =
        cond.clause->ReferencedRelations();
    const bool over_survivors = std::all_of(
        rels.begin(), rels.end(), [&](const std::string& rel) {
          return rewriting.HasFromRelation(rel);
        });
    if (!over_survivors) continue;
    const bool survives = std::any_of(
        rewriting.where().begin(), rewriting.where().end(),
        [&](const ViewCondition& nc) {
          return ClausesEquivalent(*nc.clause, *cond.clause);
        });
    if (!survives) ++cost.dropped_conditions;
  }

  if (rewriting.from().size() > original.from().size()) {
    cost.extra_relations = rewriting.from().size() - original.from().size();
  }

  cost.total =
      model.dropped_attribute_penalty *
          static_cast<double>(cost.dropped_attributes) +
      model.dropped_condition_penalty *
          static_cast<double>(cost.dropped_conditions) +
      model.extra_relation_penalty *
          static_cast<double>(cost.extra_relations);
  switch (extent) {
    case ExtentRelation::kEqual:
      break;
    case ExtentRelation::kSuperset:
    case ExtentRelation::kSubset:
      cost.total += model.extent_directional_penalty;
      break;
    case ExtentRelation::kUnknown:
      cost.total += model.extent_unknown_penalty;
      break;
  }
  return cost;
}

}  // namespace eve
