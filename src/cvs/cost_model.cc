#include "cvs/cost_model.h"

#include <algorithm>
#include <sstream>

namespace eve {

std::string RewritingCost::ToString() const {
  std::ostringstream os;
  os << "cost " << total << " (dropped attrs: " << dropped_attributes
     << ", dropped conds: " << dropped_conditions
     << ", extra relations: " << extra_relations << ", extent "
     << ExtentRelationToString(extent) << ")";
  return os.str();
}

double ExtentPenalty(const RewritingCostModel& model, ExtentRelation extent) {
  switch (extent) {
    case ExtentRelation::kEqual:
      return 0.0;
    case ExtentRelation::kSuperset:
      return model.extent_directional_penalty;
    case ExtentRelation::kSubset:
      return model.extent_subset_penalty >= 0.0
                 ? model.extent_subset_penalty
                 : model.extent_directional_penalty;
    case ExtentRelation::kUnknown:
      return model.extent_unknown_penalty;
  }
  return model.extent_unknown_penalty;
}

bool ExtentPenaltiesMonotone(const RewritingCostModel& model) {
  const double sup = ExtentPenalty(model, ExtentRelation::kSuperset);
  const double sub = ExtentPenalty(model, ExtentRelation::kSubset);
  const double unk = ExtentPenalty(model, ExtentRelation::kUnknown);
  return sup >= 0.0 && sub >= 0.0 && unk >= sup && unk >= sub;
}

RewritingCostModel DefaultRankingCostModel() {
  RewritingCostModel model;
  // Strictly separated bands: extent ≫ dropped attributes ≫ join width.
  model.dropped_attribute_penalty = 1000.0;
  model.dropped_condition_penalty = 0.0;
  model.extra_relation_penalty = 0.0;
  model.join_width_penalty = 1.0;
  model.extent_directional_penalty = 1e6;  // ⊇
  model.extent_subset_penalty = 2e6;       // ⊆ ranks below ⊇
  model.extent_unknown_penalty = 3e6;
  return model;
}

double LowerBound(const PartialCandidate& partial,
                  const RewritingCostModel& model) {
  double bound =
      model.dropped_attribute_penalty *
          static_cast<double>(partial.dropped_attributes) +
      model.join_width_penalty * static_cast<double>(partial.join_width);
  if (partial.join_width > partial.original_from_size) {
    bound += model.extra_relation_penalty *
             static_cast<double>(partial.join_width -
                                 partial.original_from_size);
  }
  if (ExtentPenaltiesMonotone(model)) {
    bound += ExtentPenalty(model, partial.extent_floor);
  }
  return bound;
}

RewritingCost ScoreRewriting(const ViewDefinition& original,
                             const ViewDefinition& rewriting,
                             ExtentRelation extent,
                             const RewritingCostModel& model) {
  RewritingCost cost;
  cost.extent = extent;

  // Dropped interface attributes (by output name).
  const std::vector<std::string> new_names = rewriting.InterfaceNames();
  for (const ViewSelectItem& item : original.select()) {
    if (std::find(new_names.begin(), new_names.end(), item.output_name) ==
        new_names.end()) {
      ++cost.dropped_attributes;
    }
  }

  // Dropped conditions: an original clause with no counterpart. A clause
  // that referenced a relation no longer in the rewriting counts as
  // substituted (its join role was re-routed), not dropped, when the
  // rewriting added replacement join conditions; we approximate by
  // counting clauses over surviving relations only.
  for (const ViewCondition& cond : original.where()) {
    const std::vector<std::string> rels =
        cond.clause->ReferencedRelations();
    const bool over_survivors = std::all_of(
        rels.begin(), rels.end(), [&](const std::string& rel) {
          return rewriting.HasFromRelation(rel);
        });
    if (!over_survivors) continue;
    const bool survives = std::any_of(
        rewriting.where().begin(), rewriting.where().end(),
        [&](const ViewCondition& nc) {
          return ClausesEquivalent(*nc.clause, *cond.clause);
        });
    if (!survives) ++cost.dropped_conditions;
  }

  if (rewriting.from().size() > original.from().size()) {
    cost.extra_relations = rewriting.from().size() - original.from().size();
  }
  cost.join_width = rewriting.from().size();

  cost.total =
      model.dropped_attribute_penalty *
          static_cast<double>(cost.dropped_attributes) +
      model.dropped_condition_penalty *
          static_cast<double>(cost.dropped_conditions) +
      model.extra_relation_penalty *
          static_cast<double>(cost.extra_relations) +
      model.join_width_penalty * static_cast<double>(cost.join_width) +
      ExtentPenalty(model, extent);
  return cost;
}

}  // namespace eve
