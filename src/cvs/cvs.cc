#include "cvs/cvs.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "cvs/extent.h"
#include "cvs/rewriting.h"
#include "hypergraph/join_graph.h"

namespace eve {

namespace {

// Ranks an extent relation for result ordering (stronger first).
int ExtentRank(ExtentRelation relation) {
  switch (relation) {
    case ExtentRelation::kEqual:
      return 0;
    case ExtentRelation::kSuperset:
      return 1;
    case ExtentRelation::kSubset:
      return 2;
    case ExtentRelation::kUnknown:
      return 3;
  }
  return 4;
}

}  // namespace

std::string SynchronizedView::ToString() const {
  std::ostringstream os;
  os << (is_drop ? "[drop-based]" : "[replacement-based]") << " "
     << legality.ToString() << "\n";
  if (!is_drop) os << candidate.ToString() << "\n";
  os << view.ToString();
  return os.str();
}

const JoinGraph& SyncContext::graph_prime() const {
  std::call_once(graph_once_,
                 [this] { graph_prime_.emplace(JoinGraph::Build(mkb_prime_)); });
  return *graph_prime_;
}

Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const SyncContext& context,
                                            const CvsOptions& options) {
  CvsResult result;
  if (!view.HasFromRelation(relation)) {
    // Unaffected view: CVS is a no-op (the caller detects affectedness;
    // returning the view unchanged keeps the API composable).
    SynchronizedView unchanged;
    unchanged.view = view;
    unchanged.legality.p1_unaffected = true;
    unchanged.legality.p2_evaluable = true;
    unchanged.legality.p3_extent = true;
    unchanged.legality.p4_parameters = true;
    unchanged.legality.inferred_extent = ExtentRelation::kEqual;
    result.rewritings.push_back(std::move(unchanged));
    return result;
  }

  const CapabilityChange change = CapabilityChange::DeleteRelation(relation);
  const Mkb& mkb = context.mkb();
  const Mkb& mkb_prime = context.mkb_prime();

  // Step 1: H_R(MKB) — we work on the relation-level join graph of MKB'
  // (H'_R is its restriction to R's former component), built once per
  // change and shared by every affected view.
  const JoinGraph& graph_prime = context.graph_prime();

  // Step 2: R-mapping (Def. 2).
  EVE_ASSIGN_OR_RETURN(const RMapping mapping,
                       ComputeRMapping(view, relation, mkb));

  // Step 3: R-replacement (Def. 3).
  Result<std::vector<ReplacementCandidate>> candidates_or =
      ComputeRReplacements(view, mapping, mkb, graph_prime,
                           options.replacement);
  std::vector<ReplacementCandidate> candidates;
  if (candidates_or.ok()) {
    candidates = candidates_or.MoveValue();
  } else {
    result.diagnostics.push_back(candidates_or.status().ToString());
  }
  if (candidates.empty() && candidates_or.ok()) {
    result.diagnostics.push_back(
        "R-replacement(" + view.name() + ", H'_" + relation +
        "(MKB')) is empty: no join chain in MKB' covers the required "
        "attributes");
  }

  // Relation evolution parameters gate the replacement path (P4).
  EvolutionParams r_params{false, true};
  for (const ViewRelation& rel : view.from()) {
    if (rel.name == relation) r_params = rel.params;
  }

  int name_counter = 0;
  auto next_name = [&]() {
    ++name_counter;
    std::string name = view.name() + options.rename_suffix;
    if (name_counter > 1) name += std::to_string(name_counter);
    return name;
  };

  // Steps 4-6 per candidate.
  if (r_params.replaceable) {
    for (const ReplacementCandidate& candidate : candidates) {
      Result<ViewDefinition> spliced =
          SpliceRewriting(view, mapping, candidate, next_name());
      if (!spliced.ok()) {
        result.diagnostics.push_back("candidate rejected: " +
                                     spliced.status().ToString());
        continue;
      }
      // One local copy, moved into the result below (the definition used
      // to be copied three times per candidate).
      ViewDefinition spliced_view = spliced.MoveValue();
      std::map<AttributeRef, ExprPtr> substitution;
      for (const AttributeReplacement& repl : candidate.replacements) {
        substitution.emplace(repl.original, repl.replacement);
      }
      const ExtentRelation extent =
          InferExtentRelation(view, spliced_view, mapping, candidate, mkb);
      SynchronizedView synced;
      synced.mapping = mapping;
      synced.candidate = candidate;
      synced.legality = CheckLegality(view, spliced_view, change, mkb_prime,
                                      extent, substitution);
      synced.view = std::move(spliced_view);
      if (!synced.legality.legal()) {
        if (options.require_view_extent || !synced.legality.p1_unaffected ||
            !synced.legality.p2_evaluable ||
            !synced.legality.p4_parameters) {
          result.diagnostics.push_back("candidate rejected: " +
                                       synced.legality.ToString());
          continue;
        }
      }
      result.rewritings.push_back(std::move(synced));
    }
  } else {
    result.diagnostics.push_back("relation " + relation +
                                 " is non-replaceable (RR=false); "
                                 "replacement path skipped");
  }

  // Drop-based rewriting for a dispensable relation.
  if (options.include_drop_rewriting && r_params.dispensable) {
    Result<ViewDefinition> dropped =
        DropRelationRewriting(view, relation, next_name());
    if (dropped.ok()) {
      ViewDefinition dropped_view = dropped.MoveValue();
      SynchronizedView synced;
      synced.mapping = mapping;
      synced.is_drop = true;
      // Dropping a relation (and only dispensable components with it)
      // projects away columns and removes join filters: on the common
      // interface the new extent contains the old one.
      synced.legality = CheckLegality(view, dropped_view, change, mkb_prime,
                                      ExtentRelation::kSuperset, {});
      synced.view = std::move(dropped_view);
      if (synced.legality.legal() || !options.require_view_extent) {
        result.rewritings.push_back(std::move(synced));
      } else {
        result.diagnostics.push_back("drop-based rewriting rejected: " +
                                     synced.legality.ToString());
      }
    } else {
      result.diagnostics.push_back("drop-based rewriting not possible: " +
                                   dropped.status().ToString());
    }
  }

  if (options.cost_model.has_value()) {
    // Cost-model ranking (paper Sec. 7 future work): lowest cost first.
    for (SynchronizedView& rewriting : result.rewritings) {
      rewriting.cost =
          ScoreRewriting(view, rewriting.view,
                         rewriting.legality.inferred_extent,
                         *options.cost_model);
    }
    std::stable_sort(
        result.rewritings.begin(), result.rewritings.end(),
        [](const SynchronizedView& a, const SynchronizedView& b) {
          return a.cost.total < b.cost.total;
        });
    return result;
  }
  // Default rank: strongest extent first, then maximal preservation (most
  // SELECT items kept — EVE's "preserve as much as possible"), then
  // smaller joins.
  std::stable_sort(result.rewritings.begin(), result.rewritings.end(),
                   [](const SynchronizedView& a, const SynchronizedView& b) {
                     const int ra = ExtentRank(a.legality.inferred_extent);
                     const int rb = ExtentRank(b.legality.inferred_extent);
                     if (ra != rb) return ra < rb;
                     if (a.view.select().size() != b.view.select().size()) {
                       return a.view.select().size() >
                              b.view.select().size();
                     }
                     return a.view.from().size() < b.view.from().size();
                   });
  return result;
}

ViewDefinition ApplyRenameToView(const ViewDefinition& view,
                                 const CapabilityChange& change) {
  auto rename_ref = [&](const AttributeRef& ref) -> AttributeRef {
    if (change.kind == CapabilityChange::Kind::kRenameRelation &&
        ref.relation == change.relation) {
      return AttributeRef{change.new_name, ref.attribute};
    }
    if (change.kind == CapabilityChange::Kind::kRenameAttribute &&
        ref.relation == change.relation && ref.attribute == change.attribute) {
      return AttributeRef{ref.relation, change.new_name};
    }
    return ref;
  };
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    select.push_back(ViewSelectItem{item.expr->TransformColumns(rename_ref),
                                    item.output_name, item.params});
  }
  std::vector<ViewRelation> from;
  for (const ViewRelation& rel : view.from()) {
    std::string name = rel.name;
    if (change.kind == CapabilityChange::Kind::kRenameRelation &&
        name == change.relation) {
      name = change.new_name;
    }
    from.push_back(ViewRelation{std::move(name), rel.params});
  }
  std::vector<ViewCondition> where;
  for (const ViewCondition& cond : view.where()) {
    where.push_back(ViewCondition{cond.clause->TransformColumns(rename_ref),
                                  cond.params});
  }
  return ViewDefinition(view.name(), view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change,
                              const SyncContext& context,
                              const CvsOptions& options) {
  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation:
    case CapabilityChange::Kind::kAddAttribute: {
      CvsResult result;
      SynchronizedView unchanged;
      unchanged.view = view;
      unchanged.legality.p1_unaffected = true;
      unchanged.legality.p2_evaluable = true;
      unchanged.legality.p3_extent = true;
      unchanged.legality.p4_parameters = true;
      unchanged.legality.inferred_extent = ExtentRelation::kEqual;
      result.rewritings.push_back(std::move(unchanged));
      return result;
    }
    case CapabilityChange::Kind::kRenameRelation:
    case CapabilityChange::Kind::kRenameAttribute: {
      CvsResult result;
      SynchronizedView renamed;
      renamed.view = ApplyRenameToView(view, change);
      renamed.legality.p1_unaffected = true;
      renamed.legality.p2_evaluable = true;
      renamed.legality.p3_extent = true;
      renamed.legality.p4_parameters = true;
      renamed.legality.inferred_extent = ExtentRelation::kEqual;
      result.rewritings.push_back(std::move(renamed));
      return result;
    }
    case CapabilityChange::Kind::kDeleteRelation:
      return SynchronizeDeleteRelation(view, change.relation, context,
                                       options);
    case CapabilityChange::Kind::kDeleteAttribute:
      return SynchronizeDeleteAttribute(view, change.relation,
                                        change.attribute, context, options);
  }
  return Status::Internal("unexpected capability change kind");
}

Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const Mkb& mkb,
                                            const Mkb& mkb_prime,
                                            const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return SynchronizeDeleteRelation(view, relation, context, options);
}

Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const Mkb& mkb,
                                             const Mkb& mkb_prime,
                                             const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return SynchronizeDeleteAttribute(view, relation, attribute, context,
                                    options);
}

Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change, const Mkb& mkb,
                              const Mkb& mkb_prime,
                              const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return Synchronize(view, change, context, options);
}

}  // namespace eve
