#include "cvs/cvs.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "cvs/extent.h"
#include "cvs/rewriting.h"
#include "hypergraph/join_graph.h"

namespace eve {

std::string SynchronizedView::ToString() const {
  std::ostringstream os;
  os << (is_drop ? "[drop-based]" : "[replacement-based]") << " "
     << legality.ToString() << "\n";
  if (!is_drop) os << candidate.ToString() << "\n";
  os << view.ToString();
  return os.str();
}

const JoinGraph& SyncContext::graph_prime() const {
  std::call_once(graph_once_, [this] {
    graph_prime_.emplace(JoinGraph::Build(*mkb_prime_));
  });
  return *graph_prime_;
}

Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const SyncContext& context,
                                            const CvsOptions& options) {
  CvsResult result;
  if (!view.HasFromRelation(relation)) {
    // Unaffected view: CVS is a no-op (the caller detects affectedness;
    // returning the view unchanged keeps the API composable).
    SynchronizedView unchanged;
    unchanged.view = view;
    unchanged.legality.p1_unaffected = true;
    unchanged.legality.p2_evaluable = true;
    unchanged.legality.p3_extent = true;
    unchanged.legality.p4_parameters = true;
    unchanged.legality.inferred_extent = ExtentRelation::kEqual;
    result.rewritings.push_back(std::move(unchanged));
    return result;
  }

  const CapabilityChange change = CapabilityChange::DeleteRelation(relation);
  const Mkb& mkb = context.mkb();
  const Mkb& mkb_prime = context.mkb_prime();

  // Step 1: H_R(MKB) — we work on the relation-level join graph of MKB'
  // (H'_R is its restriction to R's former component), built once per
  // change and shared by every affected view.
  const JoinGraph& graph_prime = context.graph_prime();

  // Step 2: R-mapping (Def. 2).
  EVE_ASSIGN_OR_RETURN(const RMapping mapping,
                       ComputeRMapping(view, relation, mkb));

  // One ranking path: the explicit cost model or the built-in default
  // encoding the historical lexicographic order.
  const RewritingCostModel model =
      options.cost_model.has_value() ? *options.cost_model
                                     : DefaultRankingCostModel();

  // Step 3: R-replacement (Def. 3), as a lazy best-first stream.
  std::optional<CandidateStream> stream;
  {
    Result<CandidateStream> stream_or = CandidateStream::Create(
        view, mapping, mkb, graph_prime, options.replacement, model);
    if (stream_or.ok()) {
      stream.emplace(stream_or.MoveValue());
    } else {
      result.diagnostics.push_back(stream_or.status().ToString());
    }
  }

  // Relation evolution parameters gate the replacement path (P4).
  EvolutionParams r_params{false, true};
  for (const ViewRelation& rel : view.from()) {
    if (rel.name == relation) r_params = rel.params;
  }

  int name_counter = 0;
  auto next_name = [&]() {
    ++name_counter;
    std::string name = view.name() + options.rename_suffix;
    if (name_counter > 1) name += std::to_string(name_counter);
    return name;
  };

  // Accepted rewritings in arrival order with their ranking totals; the
  // drop-based rewriting (when legal) is appended last, as before.
  std::vector<SynchronizedView> accepted;
  std::multiset<double> accepted_totals;
  const double kInf = std::numeric_limits<double>::infinity();
  // The total the next candidate must beat once top_k rewritings are in
  // hand. A candidate tying the k-th best cannot displace it (ties keep
  // the earlier arrival), so >= is the correct stopping comparison.
  auto kth_best = [&]() -> double {
    if (options.top_k == 0 || accepted_totals.size() < options.top_k) {
      return kInf;
    }
    auto it = accepted_totals.begin();
    std::advance(it, options.top_k - 1);
    return *it;
  };

  // Probe the drop-based rewriting up front: its cost participates in the
  // top-k bound, letting the pull loop stop before exploring candidates
  // that cannot beat it. The real drop rewriting (with its proper name)
  // is built after the loop to keep the historical result order.
  bool drop_seeded = false;
  if (options.include_drop_rewriting && r_params.dispensable) {
    Result<ViewDefinition> probe =
        DropRelationRewriting(view, relation, view.name());
    if (probe.ok()) {
      const LegalityReport legality =
          CheckLegality(view, probe.value(), change, mkb_prime,
                        ExtentRelation::kSuperset, {});
      if (legality.legal() || !options.require_view_extent) {
        accepted_totals.insert(
            ScoreRewriting(view, probe.value(), legality.inferred_extent,
                           model)
                .total);
        drop_seeded = true;
      }
    }
  }

  // Effective pull cap: the historical max_results plus the per-sync
  // candidate budget; whichever is tighter.
  size_t pull_cap = options.replacement.max_results;
  const char* cap_name = "max_results";
  if (options.candidate_budget > 0 &&
      (pull_cap == 0 || options.candidate_budget < pull_cap)) {
    pull_cap = options.candidate_budget;
    cap_name = "candidate_budget";
  }

  // Steps 4-6, pull-driven: splice/legality-check candidates strictly in
  // lower-bound order, stopping as soon as the stream provably cannot
  // improve the top-k.
  size_t pulled = 0;
  if (stream.has_value()) {
    const size_t probe_limit = r_params.replaceable ? pull_cap : 1;
    while (true) {
      const double bound = kth_best();
      if (bound < kInf && stream->NextLowerBound() >= bound) {
        if (!stream->Exhausted()) {
          result.enumeration.terminated_early = true;
          std::ostringstream note;
          note << "top-k early termination: next candidate lower bound "
               << stream->NextLowerBound() << " >= k-th best cost " << bound
               << " with " << stream->PendingStates()
               << " queue states unexplored";
          result.diagnostics.push_back(note.str());
        }
        break;
      }
      if (probe_limit > 0 && pulled >= probe_limit) {
        if (!stream->Exhausted() && r_params.replaceable) {
          result.diagnostics.push_back(
              std::string(cap_name) + "=" + std::to_string(pull_cap) +
              " stopped the enumeration after " + std::to_string(pulled) +
              " candidates with " + std::to_string(stream->PendingStates()) +
              " queue states unexplored; the result may be incomplete");
        }
        break;
      }
      std::optional<ReplacementCandidate> candidate_or = stream->Next();
      if (!candidate_or.has_value()) break;
      ++pulled;
      if (!r_params.replaceable) continue;  // emptiness probe only
      const ReplacementCandidate candidate = std::move(*candidate_or);

      Result<ViewDefinition> spliced =
          SpliceRewriting(view, mapping, candidate, next_name());
      if (!spliced.ok()) {
        result.diagnostics.push_back("candidate rejected: " +
                                     spliced.status().ToString());
        ++result.enumeration.candidates_rejected;
        continue;
      }
      // One local copy, moved into the result below (the definition used
      // to be copied three times per candidate).
      ViewDefinition spliced_view = spliced.MoveValue();
      std::map<AttributeRef, ExprPtr> substitution;
      for (const AttributeReplacement& repl : candidate.replacements) {
        substitution.emplace(repl.original, repl.replacement);
      }
      const ExtentRelation extent =
          InferExtentRelation(view, spliced_view, mapping, candidate, mkb);
      SynchronizedView synced;
      synced.mapping = mapping;
      synced.candidate = candidate;
      synced.legality = CheckLegality(view, spliced_view, change, mkb_prime,
                                      extent, substitution);
      synced.cost = ScoreRewriting(view, spliced_view, extent, model);
      synced.view = std::move(spliced_view);
      if (!synced.legality.legal()) {
        if (options.require_view_extent || !synced.legality.p1_unaffected ||
            !synced.legality.p2_evaluable ||
            !synced.legality.p4_parameters) {
          result.diagnostics.push_back("candidate rejected: " +
                                       synced.legality.ToString());
          ++result.enumeration.candidates_rejected;
          continue;
        }
      }
      accepted_totals.insert(synced.cost.total);
      accepted.push_back(std::move(synced));
    }
  }
  if (!r_params.replaceable) {
    result.diagnostics.push_back("relation " + relation +
                                 " is non-replaceable (RR=false); "
                                 "replacement path skipped");
  }
  if (stream.has_value() && stream->stats().candidates_yielded == 0 &&
      stream->Exhausted()) {
    result.diagnostics.push_back(
        "R-replacement(" + view.name() + ", H'_" + relation +
        "(MKB')) is empty: no join chain in MKB' covers the required "
        "attributes");
  }

  // Drop-based rewriting for a dispensable relation.
  if (options.include_drop_rewriting && r_params.dispensable) {
    Result<ViewDefinition> dropped =
        DropRelationRewriting(view, relation, next_name());
    if (dropped.ok()) {
      ViewDefinition dropped_view = dropped.MoveValue();
      SynchronizedView synced;
      synced.mapping = mapping;
      synced.is_drop = true;
      // Dropping a relation (and only dispensable components with it)
      // projects away columns and removes join filters: on the common
      // interface the new extent contains the old one.
      synced.legality = CheckLegality(view, dropped_view, change, mkb_prime,
                                      ExtentRelation::kSuperset, {});
      synced.cost = ScoreRewriting(view, dropped_view,
                                   synced.legality.inferred_extent, model);
      synced.view = std::move(dropped_view);
      if (synced.legality.legal() || !options.require_view_extent) {
        accepted.push_back(std::move(synced));
      } else {
        result.diagnostics.push_back("drop-based rewriting rejected: " +
                                     synced.legality.ToString());
        if (drop_seeded) {
          // The probe admitted a rewriting the full check rejected; its
          // total is no longer attainable. (CheckLegality is
          // deterministic, so this cannot happen — kept for safety.)
          accepted_totals.erase(accepted_totals.begin());
        }
      }
    } else {
      result.diagnostics.push_back("drop-based rewriting not possible: " +
                                   dropped.status().ToString());
    }
  }

  // Final ranking: lowest total first; ties keep arrival order
  // (replacement candidates in stream order, then the drop rewriting).
  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const SynchronizedView& a, const SynchronizedView& b) {
                     return a.cost.total < b.cost.total;
                   });
  if (options.top_k > 0 && accepted.size() > options.top_k) {
    result.diagnostics.push_back(
        "ranked " + std::to_string(accepted.size()) +
        " legal rewritings; returning the top " +
        std::to_string(options.top_k));
    accepted.resize(options.top_k);
  }
  result.rewritings = std::move(accepted);

  if (stream.has_value()) {
    EnumerationStats stats = stream->stats();
    stats.candidates_rejected = result.enumeration.candidates_rejected;
    stats.terminated_early = result.enumeration.terminated_early;
    stats.states_pending = stream->PendingStates();
    stats.exhausted = stream->Exhausted();
    result.enumeration = stats;
    for (std::string& note : stream->TruncationNotes()) {
      result.diagnostics.push_back(std::move(note));
    }
  }
  // Fold the token's accounting in after the stream stats (which carry
  // partial/frontier_bound from the stop itself). The rewritings list is
  // a valid best-first prefix either way; `partial` tells the caller it
  // is a prefix, not the full space.
  const DeadlineToken& token = options.replacement.token;
  if (token.valid()) {
    result.enumeration.deadline.work_spent = token.work_spent();
    result.enumeration.deadline.work_budget = token.work_budget();
    result.enumeration.deadline.stop_cause = token.cause();
    if (result.enumeration.deadline.partial) {
      result.diagnostics.push_back(
          "deadline stopped the enumeration (" +
          std::string(StopCauseToString(token.cause())) + " after " +
          std::to_string(token.work_spent()) +
          " work units); returning the best-under-budget prefix");
    }
  }
  return result;
}

ViewDefinition ApplyRenameToView(const ViewDefinition& view,
                                 const CapabilityChange& change) {
  auto rename_ref = [&](const AttributeRef& ref) -> AttributeRef {
    if (change.kind == CapabilityChange::Kind::kRenameRelation &&
        ref.relation == change.relation) {
      return AttributeRef{change.new_name, ref.attribute};
    }
    if (change.kind == CapabilityChange::Kind::kRenameAttribute &&
        ref.relation == change.relation && ref.attribute == change.attribute) {
      return AttributeRef{ref.relation, change.new_name};
    }
    return ref;
  };
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    select.push_back(ViewSelectItem{item.expr->TransformColumns(rename_ref),
                                    item.output_name, item.params});
  }
  std::vector<ViewRelation> from;
  for (const ViewRelation& rel : view.from()) {
    std::string name = rel.name;
    if (change.kind == CapabilityChange::Kind::kRenameRelation &&
        name == change.relation) {
      name = change.new_name;
    }
    from.push_back(ViewRelation{std::move(name), rel.params});
  }
  std::vector<ViewCondition> where;
  for (const ViewCondition& cond : view.where()) {
    where.push_back(ViewCondition{cond.clause->TransformColumns(rename_ref),
                                  cond.params});
  }
  return ViewDefinition(view.name(), view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change,
                              const SyncContext& context,
                              const CvsOptions& options) {
  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation:
    case CapabilityChange::Kind::kAddAttribute: {
      CvsResult result;
      SynchronizedView unchanged;
      unchanged.view = view;
      unchanged.legality.p1_unaffected = true;
      unchanged.legality.p2_evaluable = true;
      unchanged.legality.p3_extent = true;
      unchanged.legality.p4_parameters = true;
      unchanged.legality.inferred_extent = ExtentRelation::kEqual;
      result.rewritings.push_back(std::move(unchanged));
      return result;
    }
    case CapabilityChange::Kind::kRenameRelation:
    case CapabilityChange::Kind::kRenameAttribute: {
      CvsResult result;
      SynchronizedView renamed;
      renamed.view = ApplyRenameToView(view, change);
      renamed.legality.p1_unaffected = true;
      renamed.legality.p2_evaluable = true;
      renamed.legality.p3_extent = true;
      renamed.legality.p4_parameters = true;
      renamed.legality.inferred_extent = ExtentRelation::kEqual;
      result.rewritings.push_back(std::move(renamed));
      return result;
    }
    case CapabilityChange::Kind::kDeleteRelation:
      return SynchronizeDeleteRelation(view, change.relation, context,
                                       options);
    case CapabilityChange::Kind::kDeleteAttribute:
      return SynchronizeDeleteAttribute(view, change.relation,
                                        change.attribute, context, options);
  }
  return Status::Internal("unexpected capability change kind");
}

Result<CvsResult> SynchronizeDeleteRelation(const ViewDefinition& view,
                                            const std::string& relation,
                                            const Mkb& mkb,
                                            const Mkb& mkb_prime,
                                            const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return SynchronizeDeleteRelation(view, relation, context, options);
}

Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const Mkb& mkb,
                                             const Mkb& mkb_prime,
                                             const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return SynchronizeDeleteAttribute(view, relation, attribute, context,
                                    options);
}

Result<CvsResult> Synchronize(const ViewDefinition& view,
                              const CapabilityChange& change, const Mkb& mkb,
                              const Mkb& mkb_prime,
                              const CvsOptions& options) {
  const SyncContext context(mkb, mkb_prime);
  return Synchronize(view, change, context, options);
}

}  // namespace eve
