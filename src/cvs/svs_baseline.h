// SVS: the "one-step-away" baseline from the authors' earlier work
// (Lee/Nica/Rundensteiner, CASCON'97; discussed in the paper's
// introduction as the simple solution CVS supersedes). SVS only considers
// replacements directly join-connected to the surviving view relations —
// no chains of join constraints and no intermediate (Steiner) relations.
//
// Implemented as CVS restricted to max_extra_relations = 0, so benchmark
// E6 can contrast preservation rates as the required join distance grows.

#ifndef EVE_CVS_SVS_BASELINE_H_
#define EVE_CVS_SVS_BASELINE_H_

#include "cvs/cvs.h"

namespace eve {

// One-step-away synchronization for ch = delete-relation R.
Result<CvsResult> SvsSynchronizeDeleteRelation(const ViewDefinition& view,
                                               const std::string& relation,
                                               const Mkb& mkb,
                                               const Mkb& mkb_prime,
                                               CvsOptions options = {});

// One-step-away synchronization for ch = delete-attribute R.A.
Result<CvsResult> SvsSynchronizeDeleteAttribute(const ViewDefinition& view,
                                                const std::string& relation,
                                                const std::string& attribute,
                                                const Mkb& mkb,
                                                const Mkb& mkb_prime,
                                                CvsOptions options = {});

}  // namespace eve

#endif  // EVE_CVS_SVS_BASELINE_H_
