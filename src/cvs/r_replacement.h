// R-replacement (paper Def. 3): candidate join expressions built from
// H'(MKB') that avoid R, retain the surviving part of Min(H_R), and cover
// every attribute of R the view cannot lose, via function-of constraints.

#ifndef EVE_CVS_R_REPLACEMENT_H_
#define EVE_CVS_R_REPLACEMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cvs/r_mapping.h"
#include "esql/view_definition.h"
#include "hypergraph/join_graph.h"
#include "mkb/mkb.h"

namespace eve {

// One attribute substitution R.A -> f(S.B) (Def. 3 (IV)): S is the cover,
// f(S.B) the replacement.
struct AttributeReplacement {
  AttributeRef original;
  ExprPtr replacement;          // f over the cover's source attribute
  std::string cover_relation;   // S
  std::string constraint_id;    // the function-of constraint used

  std::string ToString() const {
    return original.ToString() + " -> " + replacement->ToString() + "  [" +
           constraint_id + "]";
  }
};

// One Max(V_{j,R}) candidate: the join skeleton plus the attribute
// substitutions it supports.
struct ReplacementCandidate {
  JoinTree tree;
  std::vector<AttributeReplacement> replacements;
  // Attributes of R used only in dispensable components for which no cover
  // exists in this candidate; the splice step drops those components.
  std::vector<AttributeRef> unreplaced;

  std::string ToString() const;
};

struct RReplacementOptions {
  // Bounds passed to the join-tree search.
  size_t max_extra_relations = 3;
  size_t max_results = 32;
  // Bound on the cartesian product of per-attribute cover choices.
  size_t max_cover_combinations = 256;
  // When true, covers of *dispensable* attributes are chased too: the
  // enumeration also proposes join trees that reach them, instead of only
  // replacing them opportunistically when a cover happens to sit in the
  // tree (paper Ex. 10). Default off — the paper's Ex. 9 enumerates
  // candidates anchored by indispensable attributes only; turn on for
  // maximal preservation (see cvs/cost_model.h and bench_cost_model).
  bool chase_optional_covers = false;
};

// How each attribute of R is used by the view, derived from evolution
// parameters: attributes in indispensable components must be covered;
// attributes only in dispensable components are covered opportunistically.
struct AttributeNeeds {
  std::vector<AttributeRef> mandatory;
  std::vector<AttributeRef> optional;
};

// Classifies R's attributes in `view`. Fails with kViewDisabled when an
// indispensable, non-replaceable component references R (P4 can never be
// met by any rewriting).
Result<AttributeNeeds> ClassifyAttributeNeeds(const ViewDefinition& view,
                                              const RMapping& mapping);

// Enumerates replacement candidates. `mkb` is the PRE-change MKB: the
// function-of constraints that cover R's attributes mention R and are
// therefore dropped from MKB', yet they still describe the data (paper
// Ex. 9 uses F1/F2/F4 after Customer is deleted). `graph_prime` is the
// join graph of MKB' — candidate join chains must avoid R and be
// evaluable post-change. An empty result means CVS fails for this view
// (Def. 3's R-replacement set is empty).
Result<std::vector<ReplacementCandidate>> ComputeRReplacements(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options);

}  // namespace eve

#endif  // EVE_CVS_R_REPLACEMENT_H_
