// R-replacement (paper Def. 3): candidate join expressions built from
// H'(MKB') that avoid R, retain the surviving part of Min(H_R), and cover
// every attribute of R the view cannot lose, via function-of constraints.

#ifndef EVE_CVS_R_REPLACEMENT_H_
#define EVE_CVS_R_REPLACEMENT_H_

#include <optional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "cvs/cost_model.h"
#include "cvs/r_mapping.h"
#include "esql/view_definition.h"
#include "hypergraph/join_graph.h"
#include "mkb/mkb.h"

namespace eve {

// One attribute substitution R.A -> f(S.B) (Def. 3 (IV)): S is the cover,
// f(S.B) the replacement.
struct AttributeReplacement {
  AttributeRef original;
  ExprPtr replacement;          // f over the cover's source attribute
  std::string cover_relation;   // S
  std::string constraint_id;    // the function-of constraint used

  std::string ToString() const {
    return original.ToString() + " -> " + replacement->ToString() + "  [" +
           constraint_id + "]";
  }
};

// One Max(V_{j,R}) candidate: the join skeleton plus the attribute
// substitutions it supports.
struct ReplacementCandidate {
  JoinTree tree;
  std::vector<AttributeReplacement> replacements;
  // Attributes of R used only in dispensable components for which no cover
  // exists in this candidate; the splice step drops those components.
  std::vector<AttributeRef> unreplaced;
  // Admissible lower bound on this candidate's final ranking cost under
  // the cost model the stream was built with (see CandidateStream; 0 for
  // the eager enumeration). Candidates leave the stream in nondecreasing
  // cost_lower_bound order.
  double cost_lower_bound = 0.0;

  std::string ToString() const;
};

struct RReplacementOptions {
  // Bounds passed to the join-tree search.
  size_t max_extra_relations = 3;
  size_t max_results = 32;
  // Bound on the cartesian product of per-attribute cover choices.
  size_t max_cover_combinations = 256;
  // When true, covers of *dispensable* attributes are chased too: the
  // enumeration also proposes join trees that reach them, instead of only
  // replacing them opportunistically when a cover happens to sit in the
  // tree (paper Ex. 10). Default off — the paper's Ex. 9 enumerates
  // candidates anchored by indispensable attributes only; turn on for
  // maximal preservation (see cvs/cost_model.h and bench_cost_model).
  bool chase_optional_covers = false;
  // Optional deadline/cancellation scope for the whole enumeration: the
  // join-tree enumerators spend one unit per frontier set expanded, the
  // stream one per candidate emitted. When the token refuses, Next()
  // returns nullopt with deadline_stopped() set — the candidates already
  // yielded form a valid (partial) prefix. The null token costs nothing.
  DeadlineToken token;
};

// How each attribute of R is used by the view, derived from evolution
// parameters: attributes in indispensable components must be covered;
// attributes only in dispensable components are covered opportunistically.
struct AttributeNeeds {
  std::vector<AttributeRef> mandatory;
  std::vector<AttributeRef> optional;
};

// Classifies R's attributes in `view`. Fails with kViewDisabled when an
// indispensable, non-replaceable component references R (P4 can never be
// met by any rewriting).
Result<AttributeNeeds> ClassifyAttributeNeeds(const ViewDefinition& view,
                                              const RMapping& mapping);

// Deadline/budget accounting for one enumeration run (or, merged, for
// every view of one change). Distinct from the count bounds above: those
// cap HOW MANY results come back, this block records whether a
// DeadlineToken stopped the search and how much work it admitted first.
struct DeadlineStats {
  uint64_t work_spent = 0;   // token units consumed (expansions+emissions)
  uint64_t work_budget = 0;  // configured logical budget; 0 = unlimited
  // First limit that fired (work-budget / deadline / cancelled); kNone
  // when the run finished inside its limits.
  StopCause stop_cause = StopCause::kNone;
  // Smallest join-tree relation count the interrupted search had not yet
  // explored — the first-cut frontier bound, i.e. how deep the search was
  // when it was stopped. 0 when no tree search was interrupted.
  size_t frontier_bound = 0;
  bool partial = false;  // the result is a best-under-budget prefix

  // "; deadline: spent 12/10 units, stopped: work-budget, frontier bound
  // 4, partial" — empty when no budget was set and nothing fired.
  std::string ToString() const;
  // Deterministic aggregation in view-name order: work adds, budgets and
  // bounds take the first nonzero, the first recorded cause wins, partial
  // ORs.
  void MergeFrom(const DeadlineStats& other);
};

// Counters describing one enumeration run — how much of the candidate
// space was explored, and whether any bound cut it short. Surfaced in
// CvsResult (and, aggregated per change, by evectl) so a capped result is
// never mistaken for a complete one.
struct EnumerationStats {
  size_t combos_generated = 0;   // cover combinations materialized
  size_t combos_truncated = 0;   // combinations dropped by
                                 // max_cover_combinations
  size_t trees_expanded = 0;     // frontier sets expanded across all
                                 // join-tree enumerators
  size_t search_sets_cut = 0;    // frontier sets cut by
                                 // max_extra_relations
  size_t candidates_yielded = 0; // candidates pulled from the stream
  size_t duplicates_skipped = 0; // candidates deduped away
  size_t candidates_rejected = 0;  // legality/splice rejections (driver)
  size_t states_pending = 0;     // queue states left when the driver
                                 // stopped pulling
  bool exhausted = false;        // the stream was drained to the end
  bool terminated_early = false; // the top-k bound stopped the pull loop
  // Deadline/budget accounting; deadline.partial distinguishes a
  // best-under-budget prefix from a complete (or merely count-capped)
  // result.
  DeadlineStats deadline;

  // "combos 4 (+2 truncated), trees expanded 37, ..." one-liner.
  std::string ToString() const;
  // Aggregation across views of one change: counters add; exhausted ANDs;
  // terminated_early ORs; deadline merges per DeadlineStats::MergeFrom.
  void MergeFrom(const EnumerationStats& other);
};

// Lazy best-first enumeration of replacement candidates: the streaming
// replacement for the historical eager cartesian-product loop. Cover
// combinations are materialized eagerly (they are cheap set unions,
// bounded by max_cover_combinations), but join-tree search and candidate
// assembly run lazily, merged across combinations by a priority queue
// keyed on admissible lower bounds (cvs/cost_model.h LowerBound).
//
// Contract: Next() yields candidates in nondecreasing cost_lower_bound
// order, and cost_lower_bound never exceeds the candidate's final
// ScoreRewriting total under the same model. NextLowerBound() bounds every
// candidate not yet yielded, which is what lets a top-k driver stop
// pulling the moment NextLowerBound() >= its k-th best accepted total.
//
// The stream borrows `view`, `mapping`, `mkb` and `graph_prime`; it must
// not outlive any of them. `mkb` is the PRE-change MKB (covers of R's
// attributes only exist there); `graph_prime` is the join graph of MKB'.
class CandidateStream {
 public:
  // Fails with kViewDisabled when an indispensable, non-replaceable
  // component references R (same contract as ClassifyAttributeNeeds).
  static Result<CandidateStream> Create(const ViewDefinition& view,
                                        const RMapping& mapping,
                                        const Mkb& mkb,
                                        const JoinGraph& graph_prime,
                                        const RReplacementOptions& options,
                                        const RewritingCostModel& model);

  CandidateStream(CandidateStream&&) = default;
  CandidateStream& operator=(CandidateStream&&) = default;

  // The next candidate in nondecreasing cost_lower_bound order, or
  // nullopt when the space is exhausted.
  std::optional<ReplacementCandidate> Next();

  // Admissible lower bound on every candidate not yet yielded; +infinity
  // once exhausted.
  double NextLowerBound() const;

  bool Exhausted() const { return heap_.empty(); }
  size_t PendingStates() const { return heap_.size(); }

  // True once options.token stopped the stream: Next() returned nullopt
  // with pending states (or an interrupted enumerator) left, so the
  // candidates yielded so far are a partial prefix, not the full space.
  bool deadline_stopped() const { return deadline_stopped_; }

  const EnumerationStats& stats() const { return stats_; }

  // One diagnostic line per bound that has cut the search so far, with
  // exact dropped/pruned counts. Empty when no bound fired.
  std::vector<std::string> TruncationNotes() const;

 private:
  // One choice of cover per choice-attribute, plus the lazily created
  // enumerator over join trees connecting kept ∪ cover sources.
  struct Combo {
    std::vector<const FunctionOfConstraint*> chosen;  // null = skipped
    std::set<std::string> required;
    ExtentRelation extent_floor = ExtentRelation::kEqual;
    double base_lower_bound = 0.0;
    std::optional<JoinTreeEnumerator> enumerator;
    // Enumerator counters already folded into stats_.
    size_t seen_expanded = 0;
    size_t seen_cut = 0;
  };
  enum class StateKind { kSearch, kReady };
  struct State {
    double lower_bound = 0.0;
    uint64_t seq = 0;  // deterministic tie-break: creation order
    StateKind kind = StateKind::kSearch;
    size_t combo_index = 0;
    std::optional<ReplacementCandidate> ready;
  };
  struct StateGreater {
    bool operator()(const State& a, const State& b) const {
      if (a.lower_bound != b.lower_bound) {
        return a.lower_bound > b.lower_bound;
      }
      return a.seq > b.seq;
    }
  };

  CandidateStream() = default;

  void PushState(State state);
  // Lower bound for the combo given its enumerator's current frontier.
  double SearchLowerBound(const Combo& combo) const;
  // Lower bound on the spliced FROM size given a tree-relation lower
  // bound `tree_size` and the relations `required` of the combo.
  size_t JoinWidthLowerBound(const std::set<std::string>& required,
                             size_t tree_size) const;
  // Exact count of SELECT items the splice step will drop for
  // `replacements` (every item mentioning an attribute of R outside the
  // substitution set).
  size_t CountDroppedSelectItems(
      const std::vector<AttributeReplacement>& replacements) const;
  void FoldEnumeratorStats(Combo* combo);

  const ViewDefinition* view_ = nullptr;
  const RMapping* mapping_ = nullptr;
  const Mkb* mkb_ = nullptr;
  const JoinGraph* graph_ = nullptr;
  RReplacementOptions options_;
  RewritingCostModel model_;

  std::vector<AttributeRef> choice_attrs_;   // parallel to Combo::chosen
  std::vector<AttributeRef> optional_attrs_; // opportunistically covered
  std::set<std::string> kept_;
  std::vector<JoinConstraint> mandatory_edges_;
  std::set<std::string> from_minus_r_;  // FROM relations minus R
  size_t dropped_floor_ = 0;  // SELECT items no candidate can preserve

  std::vector<Combo> combos_;
  std::priority_queue<State, std::vector<State>, StateGreater> heap_;
  // Records a token stop: sets deadline_stopped_ and folds the
  // interrupted search's frontier bound (0 = none) into stats_.
  void MarkDeadlineStop(size_t frontier_bound);

  std::set<std::string> dedup_keys_;
  uint64_t next_seq_ = 0;
  EnumerationStats stats_;
  bool deadline_stopped_ = false;
};

// Enumerates replacement candidates. `mkb` is the PRE-change MKB: the
// function-of constraints that cover R's attributes mention R and are
// therefore dropped from MKB', yet they still describe the data (paper
// Ex. 9 uses F1/F2/F4 after Customer is deleted). `graph_prime` is the
// join graph of MKB' — candidate join chains must avoid R and be
// evaluable post-change. An empty result means CVS fails for this view
// (Def. 3's R-replacement set is empty).
//
// Compatibility wrapper: drains a CandidateStream for up to
// options.max_results candidates and re-applies the historical
// smallest-tree-first ordering.
Result<std::vector<ReplacementCandidate>> ComputeRReplacements(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options);

// The pre-refactor eager enumeration, kept verbatim as the reference
// implementation: the equivalence property test checks the stream against
// it, and bench_enumeration uses it as the before/after baseline. Not
// used by the synchronization drivers.
Result<std::vector<ReplacementCandidate>> ComputeRReplacementsEager(
    const ViewDefinition& view, const RMapping& mapping, const Mkb& mkb,
    const JoinGraph& graph_prime, const RReplacementOptions& options);

}  // namespace eve

#endif  // EVE_CVS_R_REPLACEMENT_H_
