#include "cvs/implication.h"

#include <algorithm>

#include "algebra/eval.h"

namespace eve {

namespace {

bool IsTermExpr(const Expr& expr) {
  return expr.kind() == ExprKind::kColumn ||
         expr.kind() == ExprKind::kLiteral;
}

// Numeric view of a constant term, when it has one.
std::optional<double> NumericOf(const Value& v) {
  const Result<double> d = v.AsDouble();
  if (d.ok()) return d.value();
  return std::nullopt;
}

}  // namespace

ImplicationContext::ImplicationContext(const std::vector<ExprPtr>& premises)
    : premises_(premises) {
  // Pass 1: create terms and union equalities.
  for (const ExprPtr& clause : premises) {
    if (clause->kind() != ExprKind::kBinary) continue;
    const Expr& lhs = *clause->child(0);
    const Expr& rhs = *clause->child(1);
    if (!IsTermExpr(lhs) || !IsTermExpr(rhs)) continue;
    const int a = ClassOf(lhs);
    const int b = ClassOf(rhs);
    switch (clause->binary_op()) {
      case BinaryOp::kEq:
        Union(a, b);
        break;
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
      case BinaryOp::kNe:
        order_facts_.push_back(OrderFact{a, clause->binary_op(), b});
        break;
      default:
        break;
    }
  }
  // Pass 2: attach constants to class roots.
  class_constant_.assign(terms_.size(), -1);
  for (size_t t = 0; t < terms_.size(); ++t) {
    if (!terms_[t].first) continue;  // columns carry no constant
    const int root = Root(static_cast<int>(t));
    class_constant_[root] = static_cast<int>(t);
  }
}

int ImplicationContext::ClassOf(const Expr& expr) {
  const int existing = FindClass(expr);
  if (existing >= 0) return existing;
  if (expr.kind() == ExprKind::kColumn) {
    columns_.push_back(expr.column());
    terms_.emplace_back(false, columns_.size() - 1);
  } else {
    constants_.push_back(expr.literal());
    terms_.emplace_back(true, constants_.size() - 1);
  }
  parent_.push_back(static_cast<int>(terms_.size()) - 1);
  if (!class_constant_.empty()) {
    class_constant_.push_back(-1);  // keep aligned after construction
  }
  return static_cast<int>(terms_.size()) - 1;
}

int ImplicationContext::FindClass(const Expr& expr) const {
  for (size_t t = 0; t < terms_.size(); ++t) {
    if (expr.kind() == ExprKind::kColumn && !terms_[t].first &&
        columns_[terms_[t].second] == expr.column()) {
      return static_cast<int>(t);
    }
    if (expr.kind() == ExprKind::kLiteral && terms_[t].first &&
        constants_[terms_[t].second] == expr.literal()) {
      return static_cast<int>(t);
    }
  }
  return -1;
}

int ImplicationContext::Root(int cls) const {
  while (parent_[cls] != cls) {
    parent_[cls] = parent_[parent_[cls]];
    cls = parent_[cls];
  }
  return cls;
}

void ImplicationContext::Union(int a, int b) {
  parent_[Root(a)] = Root(b);
}

bool ImplicationContext::Implies(const Expr& conclusion) const {
  // Fallback first: an identical premise always implies.
  for (const ExprPtr& premise : premises_) {
    if (ClausesEquivalent(*premise, conclusion)) return true;
  }
  if (conclusion.kind() != ExprKind::kBinary) return false;
  const Expr& lhs = *conclusion.child(0);
  const Expr& rhs = *conclusion.child(1);
  if (!IsTermExpr(lhs) || !IsTermExpr(rhs)) return false;

  const int lc = FindClass(lhs);
  const int rc = FindClass(rhs);

  // Constant-only conclusions evaluate directly.
  if (lhs.kind() == ExprKind::kLiteral && rhs.kind() == ExprKind::kLiteral) {
    const RowBinding empty;
    const Result<Value> v = EvalExpr(conclusion, empty, nullptr);
    return v.ok() && v.value().type() == DataType::kBool &&
           v.value().bool_value();
  }

  const BinaryOp op = conclusion.binary_op();

  // Resolve each side to (class root, attached constant).
  auto resolve = [&](const Expr& side,
                     int cls) -> std::pair<int, std::optional<Value>> {
    if (cls < 0) {
      // Unknown term: a literal still has its own value; a column is
      // unconstrained.
      if (side.kind() == ExprKind::kLiteral) {
        return {-1, side.literal()};
      }
      return {-1, std::nullopt};
    }
    const int root = Root(cls);
    std::optional<Value> constant;
    if (class_constant_[root] >= 0) {
      constant = constants_[terms_[class_constant_[root]].second];
    } else if (side.kind() == ExprKind::kLiteral) {
      constant = side.literal();
    }
    return {root, constant};
  };
  const auto [lroot, lconst] = resolve(lhs, lc);
  const auto [rroot, rconst] = resolve(rhs, rc);

  if (op == BinaryOp::kEq) {
    if (lroot >= 0 && lroot == rroot) return true;
    if (lconst && rconst) {
      return Compare(*lconst, *rconst) == CompareResult::kEqual;
    }
    return false;
  }

  // Comparisons between known constants decide immediately.
  if (lconst && rconst) {
    const CompareResult cmp = Compare(*lconst, *rconst);
    if (cmp == CompareResult::kNull || cmp == CompareResult::kIncomparable) {
      return false;
    }
    switch (op) {
      case BinaryOp::kLt:
        return cmp == CompareResult::kLess;
      case BinaryOp::kLe:
        return cmp != CompareResult::kGreater;
      case BinaryOp::kGt:
        return cmp == CompareResult::kGreater;
      case BinaryOp::kGe:
        return cmp != CompareResult::kLess;
      case BinaryOp::kNe:
        return cmp != CompareResult::kEqual;
      default:
        return false;
    }
  }

  // Order facts over the same equality classes (x < y implied by x' < y'
  // with x≡x', y≡y'; strict implies non-strict).
  auto implies_op = [](BinaryOp premise, BinaryOp wanted) {
    if (premise == wanted) return true;
    if (premise == BinaryOp::kLt &&
        (wanted == BinaryOp::kLe || wanted == BinaryOp::kNe)) {
      return true;
    }
    if (premise == BinaryOp::kGt &&
        (wanted == BinaryOp::kGe || wanted == BinaryOp::kNe)) {
      return true;
    }
    return false;
  };
  for (const OrderFact& fact : order_facts_) {
    const int froot_l = Root(fact.lhs);
    const int froot_r = Root(fact.rhs);
    if (lroot >= 0 && rroot >= 0 && froot_l == lroot && froot_r == rroot &&
        implies_op(fact.op, op)) {
      return true;
    }
    // Flipped orientation.
    if (lroot >= 0 && rroot >= 0 && froot_l == rroot && froot_r == lroot &&
        implies_op(FlipComparison(fact.op), op)) {
      return true;
    }
  }

  // Constant-bound strengthening: "x > 5" implies "x > 1" etc. Look for a
  // fact relating lroot (or rroot) to a constant class.
  auto numeric_const_of_root = [&](int root) -> std::optional<double> {
    if (root < 0 || class_constant_[root] < 0) return std::nullopt;
    return NumericOf(constants_[terms_[class_constant_[root]].second]);
  };
  // Normalize the conclusion to "column-root OP constant".
  int var_root = -1;
  std::optional<double> bound;
  BinaryOp norm_op = op;
  if (rconst && !lconst && lroot >= 0) {
    var_root = lroot;
    bound = NumericOf(*rconst);
  } else if (lconst && !rconst && rroot >= 0) {
    var_root = rroot;
    bound = NumericOf(*lconst);
    norm_op = FlipComparison(op);
  }
  if (var_root >= 0 && bound) {
    for (const OrderFact& fact : order_facts_) {
      int fact_var = -1;
      std::optional<double> fact_bound;
      BinaryOp fact_op = fact.op;
      if (Root(fact.lhs) == var_root) {
        fact_var = var_root;
        fact_bound = numeric_const_of_root(Root(fact.rhs));
      } else if (Root(fact.rhs) == var_root) {
        fact_var = var_root;
        fact_bound = numeric_const_of_root(Root(fact.lhs));
        fact_op = FlipComparison(fact.op);
      }
      if (fact_var < 0 || !fact_bound) continue;
      // fact: x fact_op fact_bound; wanted: x norm_op bound.
      const double fb = *fact_bound;
      const double wb = *bound;
      switch (norm_op) {
        case BinaryOp::kGt:
          if ((fact_op == BinaryOp::kGt && fb >= wb) ||
              (fact_op == BinaryOp::kGe && fb > wb)) {
            return true;
          }
          break;
        case BinaryOp::kGe:
          if ((fact_op == BinaryOp::kGt && fb >= wb) ||
              (fact_op == BinaryOp::kGe && fb >= wb)) {
            return true;
          }
          break;
        case BinaryOp::kLt:
          if ((fact_op == BinaryOp::kLt && fb <= wb) ||
              (fact_op == BinaryOp::kLe && fb < wb)) {
            return true;
          }
          break;
        case BinaryOp::kLe:
          if ((fact_op == BinaryOp::kLt && fb <= wb) ||
              (fact_op == BinaryOp::kLe && fb <= wb)) {
            return true;
          }
          break;
        default:
          break;
      }
    }
    // Equality to a constant also bounds: x = 7 implies x > 5.
    const std::optional<double> eq_const = numeric_const_of_root(var_root);
    if (eq_const) {
      switch (norm_op) {
        case BinaryOp::kGt:
          return *eq_const > *bound;
        case BinaryOp::kGe:
          return *eq_const >= *bound;
        case BinaryOp::kLt:
          return *eq_const < *bound;
        case BinaryOp::kLe:
          return *eq_const <= *bound;
        case BinaryOp::kNe:
          return *eq_const != *bound;
        default:
          break;
      }
    }
  }
  return false;
}

bool ConjunctionImplies(const std::vector<ExprPtr>& premises,
                        const Expr& conclusion) {
  return ImplicationContext(premises).Implies(conclusion);
}

}  // namespace eve
