#include "cvs/explain.h"

#include <algorithm>
#include <sstream>

namespace eve {

std::string RewritingExplanation::ToString() const {
  std::ostringstream os;
  auto section = [&](const char* label,
                     const std::vector<std::string>& items) {
    if (items.empty()) return;
    os << "  " << label << ":";
    for (const std::string& item : items) os << "\n    " << item;
    os << "\n";
  };
  section("replaced attributes", replaced_attributes);
  section("dropped attributes", dropped_attributes);
  section("dropped conditions", dropped_conditions);
  section("added relations", added_relations);
  section("added join conditions", added_conditions);
  if (!extent_note.empty()) os << "  extent: " << extent_note << "\n";
  if (!cost_note.empty()) os << "  cost: " << cost_note << "\n";
  return os.str();
}

RewritingExplanation ExplainRewriting(const ViewDefinition& original,
                                      const SynchronizedView& synced) {
  RewritingExplanation explanation;
  const ViewDefinition& rewritten = synced.view;

  for (const AttributeReplacement& repl : synced.candidate.replacements) {
    explanation.replaced_attributes.push_back(
        repl.original.ToString() + " -> " + repl.replacement->ToString() +
        " via " + repl.constraint_id);
  }

  const std::vector<std::string> new_names = rewritten.InterfaceNames();
  for (const ViewSelectItem& item : original.select()) {
    if (std::find(new_names.begin(), new_names.end(), item.output_name) ==
        new_names.end()) {
      explanation.dropped_attributes.push_back(item.output_name);
    }
  }

  for (const ViewCondition& cond : original.where()) {
    const bool survives = std::any_of(
        rewritten.where().begin(), rewritten.where().end(),
        [&](const ViewCondition& nc) {
          return ClausesEquivalent(*nc.clause, *cond.clause);
        });
    if (survives) continue;
    // A condition whose attributes were substituted is "replaced", not
    // dropped; approximate by checking whether it mentions a replaced
    // attribute.
    bool substituted = false;
    std::vector<AttributeRef> cols;
    cond.clause->CollectColumns(&cols);
    for (const AttributeReplacement& repl : synced.candidate.replacements) {
      if (std::find(cols.begin(), cols.end(), repl.original) != cols.end()) {
        substituted = true;
      }
    }
    // Join conditions against the deleted relation are superseded too.
    const bool touches_deleted = std::any_of(
        cols.begin(), cols.end(), [&](const AttributeRef& ref) {
          return ref.relation == synced.mapping.relation;
        });
    if (!substituted && !touches_deleted) {
      explanation.dropped_conditions.push_back(cond.clause->ToString());
    }
  }

  for (const ViewRelation& rel : rewritten.from()) {
    if (!original.HasFromRelation(rel.name)) {
      explanation.added_relations.push_back(rel.name);
    }
  }
  // Substituted images of the original conditions are not "added".
  std::vector<ExprPtr> substituted_originals;
  for (const ViewCondition& cond : original.where()) {
    ExprPtr image = cond.clause;
    for (const AttributeReplacement& repl : synced.candidate.replacements) {
      image = image->SubstituteColumn(repl.original, repl.replacement);
    }
    substituted_originals.push_back(std::move(image));
  }
  for (const ViewCondition& cond : rewritten.where()) {
    const bool existed = std::any_of(
        original.where().begin(), original.where().end(),
        [&](const ViewCondition& oc) {
          return ClausesEquivalent(*oc.clause, *cond.clause);
        });
    const bool is_image = std::any_of(
        substituted_originals.begin(), substituted_originals.end(),
        [&](const ExprPtr& image) {
          return ClausesEquivalent(*image, *cond.clause);
        });
    if (!existed && !is_image) {
      explanation.added_conditions.push_back(cond.clause->ToString());
    }
  }

  std::ostringstream extent;
  extent << "V' " << ExtentRelationToString(synced.legality.inferred_extent)
         << " V";
  if (synced.is_drop) {
    extent << " (drop-based rewriting)";
  } else if (synced.legality.inferred_extent != ExtentRelation::kUnknown) {
    extent << " (PC-justified)";
  } else {
    extent << " (no PC justification found)";
  }
  explanation.extent_note = extent.str();

  std::ostringstream cost;
  cost << "total " << synced.cost.total;
  if (!synced.is_drop && synced.candidate.cost_lower_bound > 0.0) {
    cost << " (scheduled at lower bound "
         << synced.candidate.cost_lower_bound << ")";
  }
  explanation.cost_note = cost.str();
  return explanation;
}

std::string ExplainEnumeration(const CvsResult& result) {
  return "enumeration: " + result.enumeration.ToString();
}

}  // namespace eve
