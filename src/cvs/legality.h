// Legal-rewriting checks (paper Def. 1): P1 the change no longer affects
// the view, P2 the view is evaluable over MKB', P3 the view-extent
// parameter holds, P4 all component evolution parameters are respected.

#ifndef EVE_CVS_LEGALITY_H_
#define EVE_CVS_LEGALITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cvs/extent.h"
#include "esql/view_definition.h"
#include "mkb/capability_change.h"
#include "mkb/mkb.h"

namespace eve {

struct LegalityReport {
  bool p1_unaffected = false;
  bool p2_evaluable = false;
  bool p3_extent = false;
  bool p4_parameters = false;
  ExtentRelation inferred_extent = ExtentRelation::kUnknown;
  std::vector<std::string> violations;

  bool legal() const {
    return p1_unaffected && p2_evaluable && p3_extent && p4_parameters;
  }
  std::string ToString() const;
};

// Checks Def. 1 for `new_view` as a rewriting of `old_view` under `change`.
// `inferred_extent` comes from InferExtentRelation (or an empirical check).
// `substitution` maps old attributes to their replacement expressions; it
// lets P4 verify that indispensable-replaceable components survived in
// substituted form. Pass an empty map for rewritings with no attribute
// replacement (e.g. drop-based ones).
LegalityReport CheckLegality(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const CapabilityChange& change, const Mkb& mkb_prime,
    ExtentRelation inferred_extent,
    const std::map<AttributeRef, ExprPtr>& substitution);

}  // namespace eve

#endif  // EVE_CVS_LEGALITY_H_
