// The delete-attribute synchronization algorithm — the paper describes it
// as "a simplified version" of the delete-relation CVS (Sec. 5) and
// illustrates it in Ex. 4: the affected attribute is either dropped (when
// dispensable) or replaced by f(S.B) from a function-of constraint, with
// the cover relation S joined in through a chain of MKB' join constraints
// anchored at the attribute's own relation R (which still exists).

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "cvs/cvs.h"
#include "cvs/extent.h"
#include "cvs/rewriting.h"
#include "hypergraph/join_graph.h"

namespace eve {

namespace {

bool ExprMentions(const Expr& expr, const AttributeRef& attr) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  return std::find(cols.begin(), cols.end(), attr) != cols.end();
}

// Builds the rewriting for one cover choice: joins the tree's new
// relations into the view and substitutes the deleted attribute.
Result<ViewDefinition> SpliceAttributeReplacement(
    const ViewDefinition& view, const AttributeRef& attr,
    const FunctionOfConstraint& cover, const JoinTree& tree,
    const std::string& new_name) {
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) {
      select.push_back(item);
      continue;
    }
    select.push_back(
        ViewSelectItem{item.expr->SubstituteColumn(attr, cover.fn),
                       item.output_name, item.params});
  }

  std::vector<ViewRelation> from = view.from();
  std::set<std::string> present;
  for (const ViewRelation& rel : from) present.insert(rel.name);
  for (const std::string& rel : tree.relations) {
    if (present.insert(rel).second) {
      // New relations stand in for the deleted attribute's source; they are
      // indispensable for the replacement but themselves replaceable.
      from.push_back(ViewRelation{rel, EvolutionParams{false, true}});
    }
  }

  std::vector<ViewCondition> where;
  std::set<std::string> existing_clauses;
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) {
      where.push_back(cond);
      existing_clauses.insert(cond.clause->ToString());
      continue;
    }
    where.push_back(ViewCondition{
        cond.clause->SubstituteColumn(attr, cover.fn), cond.params});
    existing_clauses.insert(where.back().clause->ToString());
  }
  for (const JoinConstraint& edge : tree.edges) {
    for (const ExprPtr& clause : edge.clauses) {
      // The view may already contain this join condition (e.g. the cover
      // relation was in the FROM list); avoid duplicating it.
      const bool duplicate = std::any_of(
          where.begin(), where.end(), [&](const ViewCondition& wc) {
            return ClausesEquivalent(*wc.clause, *clause);
          });
      if (!duplicate) {
        where.push_back(ViewCondition{clause, EvolutionParams{false, true}});
      }
    }
  }

  std::vector<ExprPtr> conjuncts;
  conjuncts.reserve(where.size());
  for (const ViewCondition& cond : where) conjuncts.push_back(cond.clause);
  EVE_RETURN_IF_ERROR(CheckConjunctionConsistency(conjuncts));

  return ViewDefinition(new_name, view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

// Drop-based rewriting: removes every component referencing the attribute
// (all must be dispensable).
Result<ViewDefinition> DropAttributeRewriting(const ViewDefinition& view,
                                              const AttributeRef& attr,
                                              const std::string& new_name) {
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) {
      select.push_back(item);
      continue;
    }
    if (!item.params.dispensable) {
      return Status::ViewDisabled("SELECT item '" + item.output_name +
                                  "' is indispensable but references " +
                                  attr.ToString());
    }
  }
  if (select.empty()) {
    return Status::ViewDisabled("dropping " + attr.ToString() +
                                " would empty the SELECT list of " +
                                view.name());
  }
  std::vector<ViewCondition> where;
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) {
      where.push_back(cond);
      continue;
    }
    if (!cond.params.dispensable) {
      return Status::ViewDisabled("condition '" + cond.clause->ToString() +
                                  "' is indispensable but references " +
                                  attr.ToString());
    }
  }
  return ViewDefinition(new_name, view.extent(), std::move(select),
                        view.from(), std::move(where));
}

// Extent contribution of replacing `attr` via the cover pair
// (R.attr -> S.source), from PC constraints in the pre-change MKB. Only a
// constraint that certifies this correspondence counts (Ex. 4 (iv):
// π[Name, PAddr](Person) ⊇ π[Name, Addr](Customer) lists the pair
// (Addr, PAddr)).
ExtentRelation AttrPcJustification(const Mkb& mkb, const AttributeRef& attr,
                                   const AttributeRef& source) {
  const std::string& r = attr.relation;
  const std::string& s = source.relation;
  ExtentRelation best = ExtentRelation::kUnknown;
  for (const PCConstraint* pc : mkb.PCConstraintsBetween(r, s)) {
    const bool s_is_lhs = pc->lhs_relation == s;
    const std::vector<AttributeRef>& s_attrs =
        s_is_lhs ? pc->lhs_attrs : pc->rhs_attrs;
    const std::vector<AttributeRef>& r_attrs =
        s_is_lhs ? pc->rhs_attrs : pc->lhs_attrs;
    bool certifies = false;
    for (size_t i = 0; i < s_attrs.size(); ++i) {
      if (s_attrs[i] == source && r_attrs[i] == attr) certifies = true;
    }
    if (!certifies) continue;
    SetRelation rel = pc->relation;
    if (pc->lhs_relation == r) rel = FlipSetRelation(rel);
    ExtentRelation contribution = ExtentRelation::kUnknown;
    switch (rel) {
      case SetRelation::kEqual:
        contribution = ExtentRelation::kEqual;
        break;
      case SetRelation::kSuperset:
      case SetRelation::kProperSuperset:
        contribution = ExtentRelation::kSuperset;
        break;
      case SetRelation::kSubset:
      case SetRelation::kProperSubset:
        contribution = ExtentRelation::kSubset;
        break;
    }
    if (contribution == ExtentRelation::kEqual) return contribution;
    if (best == ExtentRelation::kUnknown) best = contribution;
  }
  return best;
}

}  // namespace

Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const SyncContext& context,
                                             const CvsOptions& options) {
  CvsResult result;
  const Mkb& mkb = context.mkb();
  const Mkb& mkb_prime = context.mkb_prime();
  const AttributeRef attr{relation, attribute};
  const CapabilityChange change =
      CapabilityChange::DeleteAttribute(relation, attribute);

  if (!view.ReferencesAttribute(attr)) {
    SynchronizedView unchanged;
    unchanged.view = view;
    unchanged.legality.p1_unaffected = true;
    unchanged.legality.p2_evaluable = true;
    unchanged.legality.p3_extent = true;
    unchanged.legality.p4_parameters = true;
    unchanged.legality.inferred_extent = ExtentRelation::kEqual;
    result.rewritings.push_back(std::move(unchanged));
    return result;
  }

  // Classify usages of the attribute.
  bool any_indispensable = false;
  bool replacement_allowed = true;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) continue;
    if (!item.params.dispensable) {
      any_indispensable = true;
      if (!item.params.replaceable) replacement_allowed = false;
    }
  }
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) continue;
    if (!cond.params.dispensable) {
      any_indispensable = true;
      if (!cond.params.replaceable) replacement_allowed = false;
    }
  }
  if (any_indispensable && !replacement_allowed) {
    result.diagnostics.push_back(
        attr.ToString() +
        " is used by an indispensable, non-replaceable component; the view "
        "must be disabled");
    return result;
  }

  int name_counter = 0;
  auto next_name = [&]() {
    ++name_counter;
    std::string name = view.name() + options.rename_suffix;
    if (name_counter > 1) name += std::to_string(name_counter);
    return name;
  };

  // Replacement path: cover the attribute via a function-of constraint
  // from the pre-change MKB, joined in through MKB' (anchored at R, which
  // still exists after a delete-attribute change). The join graph is built
  // once per change and shared by every affected view.
  const JoinGraph& graph_prime = context.graph_prime();
  for (const FunctionOfConstraint* cover : mkb.CoversOf(attr)) {
    if (cover->source.relation == relation) continue;
    if (!graph_prime.HasRelation(cover->source.relation)) continue;
    JoinTreeSearchOptions search;
    search.max_extra_relations = options.replacement.max_extra_relations;
    search.max_results = options.replacement.max_results;
    const std::vector<JoinTree> trees = graph_prime.FindConnectingTrees(
        {relation, cover->source.relation}, {}, search);
    if (trees.empty()) {
      result.diagnostics.push_back(
          "cover " + cover->id + " (" + cover->source.relation +
          ") is not reachable from " + relation + " in H'(MKB')");
    }
    for (const JoinTree& tree : trees) {
      Result<ViewDefinition> spliced =
          SpliceAttributeReplacement(view, attr, *cover, tree, next_name());
      if (!spliced.ok()) {
        result.diagnostics.push_back("candidate rejected: " +
                                     spliced.status().ToString());
        continue;
      }
      // One local copy, moved into the result below.
      ViewDefinition spliced_view = spliced.MoveValue();
      std::map<AttributeRef, ExprPtr> substitution;
      substitution.emplace(attr, cover->fn);
      const ExtentRelation extent =
          AttrPcJustification(mkb, attr, cover->source);
      SynchronizedView synced;
      synced.candidate.tree = tree;
      synced.candidate.replacements.push_back(AttributeReplacement{
          attr, cover->fn, cover->source.relation, cover->id});
      synced.legality = CheckLegality(view, spliced_view, change, mkb_prime,
                                      extent, substitution);
      synced.view = std::move(spliced_view);
      if (!synced.legality.legal() && options.require_view_extent) {
        result.diagnostics.push_back("candidate rejected: " +
                                     synced.legality.ToString());
        continue;
      }
      if (!synced.legality.p1_unaffected || !synced.legality.p2_evaluable ||
          !synced.legality.p4_parameters) {
        result.diagnostics.push_back("candidate rejected: " +
                                     synced.legality.ToString());
        continue;
      }
      result.rewritings.push_back(std::move(synced));
      if (result.rewritings.size() >= options.replacement.max_results) break;
    }
  }

  // Drop path: only when every usage is dispensable.
  if (options.include_drop_rewriting && !any_indispensable) {
    Result<ViewDefinition> dropped =
        DropAttributeRewriting(view, attr, next_name());
    if (dropped.ok()) {
      ViewDefinition dropped_view = dropped.MoveValue();
      SynchronizedView synced;
      synced.is_drop = true;
      // Dropping a dispensable projection column leaves the extent equal
      // on the common interface; dropping a dispensable filter widens it.
      bool dropped_condition = false;
      for (const ViewCondition& cond : view.where()) {
        if (ExprMentions(*cond.clause, attr)) dropped_condition = true;
      }
      const ExtentRelation extent = dropped_condition
                                        ? ExtentRelation::kSuperset
                                        : ExtentRelation::kEqual;
      synced.legality =
          CheckLegality(view, dropped_view, change, mkb_prime, extent, {});
      synced.view = std::move(dropped_view);
      if (synced.legality.legal() || !options.require_view_extent) {
        result.rewritings.push_back(std::move(synced));
      } else {
        result.diagnostics.push_back("drop-based rewriting rejected: " +
                                     synced.legality.ToString());
      }
    } else {
      result.diagnostics.push_back("drop-based rewriting not possible: " +
                                   dropped.status().ToString());
    }
  }

  if (options.cost_model.has_value()) {
    for (SynchronizedView& rewriting : result.rewritings) {
      rewriting.cost =
          ScoreRewriting(view, rewriting.view,
                         rewriting.legality.inferred_extent,
                         *options.cost_model);
    }
    std::stable_sort(
        result.rewritings.begin(), result.rewritings.end(),
        [](const SynchronizedView& a, const SynchronizedView& b) {
          return a.cost.total < b.cost.total;
        });
  }

  if (result.rewritings.empty()) {
    result.diagnostics.push_back("no legal rewriting found for " +
                                 view.name() + " under " + change.ToString());
  }
  return result;
}

}  // namespace eve
