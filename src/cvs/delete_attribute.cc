// The delete-attribute synchronization algorithm — the paper describes it
// as "a simplified version" of the delete-relation CVS (Sec. 5) and
// illustrates it in Ex. 4: the affected attribute is either dropped (when
// dispensable) or replaced by f(S.B) from a function-of constraint, with
// the cover relation S joined in through a chain of MKB' join constraints
// anchored at the attribute's own relation R (which still exists).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <sstream>

#include "cvs/cvs.h"
#include "cvs/extent.h"
#include "cvs/rewriting.h"
#include "hypergraph/join_graph.h"

namespace eve {

namespace {

bool ExprMentions(const Expr& expr, const AttributeRef& attr) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  return std::find(cols.begin(), cols.end(), attr) != cols.end();
}

// Builds the rewriting for one cover choice: joins the tree's new
// relations into the view and substitutes the deleted attribute.
Result<ViewDefinition> SpliceAttributeReplacement(
    const ViewDefinition& view, const AttributeRef& attr,
    const FunctionOfConstraint& cover, const JoinTree& tree,
    const std::string& new_name) {
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) {
      select.push_back(item);
      continue;
    }
    select.push_back(
        ViewSelectItem{item.expr->SubstituteColumn(attr, cover.fn),
                       item.output_name, item.params});
  }

  std::vector<ViewRelation> from = view.from();
  std::set<std::string> present;
  for (const ViewRelation& rel : from) present.insert(rel.name);
  for (const std::string& rel : tree.relations) {
    if (present.insert(rel).second) {
      // New relations stand in for the deleted attribute's source; they are
      // indispensable for the replacement but themselves replaceable.
      from.push_back(ViewRelation{rel, EvolutionParams{false, true}});
    }
  }

  std::vector<ViewCondition> where;
  std::set<std::string> existing_clauses;
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) {
      where.push_back(cond);
      existing_clauses.insert(cond.clause->ToString());
      continue;
    }
    where.push_back(ViewCondition{
        cond.clause->SubstituteColumn(attr, cover.fn), cond.params});
    existing_clauses.insert(where.back().clause->ToString());
  }
  for (const JoinConstraint& edge : tree.edges) {
    for (const ExprPtr& clause : edge.clauses) {
      // The view may already contain this join condition (e.g. the cover
      // relation was in the FROM list); avoid duplicating it.
      const bool duplicate = std::any_of(
          where.begin(), where.end(), [&](const ViewCondition& wc) {
            return ClausesEquivalent(*wc.clause, *clause);
          });
      if (!duplicate) {
        where.push_back(ViewCondition{clause, EvolutionParams{false, true}});
      }
    }
  }

  std::vector<ExprPtr> conjuncts;
  conjuncts.reserve(where.size());
  for (const ViewCondition& cond : where) conjuncts.push_back(cond.clause);
  EVE_RETURN_IF_ERROR(CheckConjunctionConsistency(conjuncts));

  return ViewDefinition(new_name, view.extent(), std::move(select),
                        std::move(from), std::move(where));
}

// Drop-based rewriting: removes every component referencing the attribute
// (all must be dispensable).
Result<ViewDefinition> DropAttributeRewriting(const ViewDefinition& view,
                                              const AttributeRef& attr,
                                              const std::string& new_name) {
  std::vector<ViewSelectItem> select;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) {
      select.push_back(item);
      continue;
    }
    if (!item.params.dispensable) {
      return Status::ViewDisabled("SELECT item '" + item.output_name +
                                  "' is indispensable but references " +
                                  attr.ToString());
    }
  }
  if (select.empty()) {
    return Status::ViewDisabled("dropping " + attr.ToString() +
                                " would empty the SELECT list of " +
                                view.name());
  }
  std::vector<ViewCondition> where;
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) {
      where.push_back(cond);
      continue;
    }
    if (!cond.params.dispensable) {
      return Status::ViewDisabled("condition '" + cond.clause->ToString() +
                                  "' is indispensable but references " +
                                  attr.ToString());
    }
  }
  return ViewDefinition(new_name, view.extent(), std::move(select),
                        view.from(), std::move(where));
}

// Extent contribution of replacing `attr` via the cover pair
// (R.attr -> S.source), from PC constraints in the pre-change MKB. Only a
// constraint that certifies this correspondence counts (Ex. 4 (iv):
// π[Name, PAddr](Person) ⊇ π[Name, Addr](Customer) lists the pair
// (Addr, PAddr)).
ExtentRelation AttrPcJustification(const Mkb& mkb, const AttributeRef& attr,
                                   const AttributeRef& source) {
  const std::string& r = attr.relation;
  const std::string& s = source.relation;
  ExtentRelation best = ExtentRelation::kUnknown;
  for (const PCConstraint* pc : mkb.PCConstraintsBetween(r, s)) {
    const bool s_is_lhs = pc->lhs_relation == s;
    const std::vector<AttributeRef>& s_attrs =
        s_is_lhs ? pc->lhs_attrs : pc->rhs_attrs;
    const std::vector<AttributeRef>& r_attrs =
        s_is_lhs ? pc->rhs_attrs : pc->lhs_attrs;
    bool certifies = false;
    for (size_t i = 0; i < s_attrs.size(); ++i) {
      if (s_attrs[i] == source && r_attrs[i] == attr) certifies = true;
    }
    if (!certifies) continue;
    SetRelation rel = pc->relation;
    if (pc->lhs_relation == r) rel = FlipSetRelation(rel);
    ExtentRelation contribution = ExtentRelation::kUnknown;
    switch (rel) {
      case SetRelation::kEqual:
        contribution = ExtentRelation::kEqual;
        break;
      case SetRelation::kSuperset:
      case SetRelation::kProperSuperset:
        contribution = ExtentRelation::kSuperset;
        break;
      case SetRelation::kSubset:
      case SetRelation::kProperSubset:
        contribution = ExtentRelation::kSubset;
        break;
    }
    if (contribution == ExtentRelation::kEqual) return contribution;
    if (best == ExtentRelation::kUnknown) best = contribution;
  }
  return best;
}

}  // namespace

Result<CvsResult> SynchronizeDeleteAttribute(const ViewDefinition& view,
                                             const std::string& relation,
                                             const std::string& attribute,
                                             const SyncContext& context,
                                             const CvsOptions& options) {
  CvsResult result;
  const Mkb& mkb = context.mkb();
  const Mkb& mkb_prime = context.mkb_prime();
  const AttributeRef attr{relation, attribute};
  const CapabilityChange change =
      CapabilityChange::DeleteAttribute(relation, attribute);

  if (!view.ReferencesAttribute(attr)) {
    SynchronizedView unchanged;
    unchanged.view = view;
    unchanged.legality.p1_unaffected = true;
    unchanged.legality.p2_evaluable = true;
    unchanged.legality.p3_extent = true;
    unchanged.legality.p4_parameters = true;
    unchanged.legality.inferred_extent = ExtentRelation::kEqual;
    result.rewritings.push_back(std::move(unchanged));
    return result;
  }

  // Classify usages of the attribute.
  bool any_indispensable = false;
  bool replacement_allowed = true;
  for (const ViewSelectItem& item : view.select()) {
    if (!ExprMentions(*item.expr, attr)) continue;
    if (!item.params.dispensable) {
      any_indispensable = true;
      if (!item.params.replaceable) replacement_allowed = false;
    }
  }
  for (const ViewCondition& cond : view.where()) {
    if (!ExprMentions(*cond.clause, attr)) continue;
    if (!cond.params.dispensable) {
      any_indispensable = true;
      if (!cond.params.replaceable) replacement_allowed = false;
    }
  }
  if (any_indispensable && !replacement_allowed) {
    result.diagnostics.push_back(
        attr.ToString() +
        " is used by an indispensable, non-replaceable component; the view "
        "must be disabled");
    return result;
  }

  int name_counter = 0;
  auto next_name = [&]() {
    ++name_counter;
    std::string name = view.name() + options.rename_suffix;
    if (name_counter > 1) name += std::to_string(name_counter);
    return name;
  };

  const RewritingCostModel model =
      options.cost_model.has_value() ? *options.cost_model
                                     : DefaultRankingCostModel();

  const size_t from_size = view.from().size();
  std::set<std::string> from_set;
  for (const ViewRelation& rel : view.from()) from_set.insert(rel.name);

  // Replacement path: cover the attribute via a function-of constraint
  // from the pre-change MKB, joined in through MKB' (anchored at R, which
  // still exists after a delete-attribute change). The join graph is built
  // once per change and shared by every affected view.
  //
  // Like the delete-relation driver, the candidates are explored lazily in
  // nondecreasing lower-bound order: one resumable join-tree enumerator per
  // cover, merged through a priority queue. A cover's extent contribution
  // (AttrPcJustification) is fixed up front and is the exact final extent,
  // so the only component the search refines is the join width.
  const JoinGraph& graph_prime = context.graph_prime();

  struct CoverState {
    const FunctionOfConstraint* cover;
    ExtentRelation extent;
    JoinTreeEnumerator enumerator;
    size_t yielded = 0;
    size_t seen_expanded = 0;
    size_t seen_cut = 0;
  };
  enum class Kind { kSearch, kReady };
  struct State {
    double lower_bound = 0.0;
    uint64_t seq = 0;  // deterministic tie-break: creation order
    Kind kind = Kind::kSearch;
    size_t cover_index = 0;
    std::optional<JoinTree> tree;  // set for kReady
  };
  struct StateGreater {
    bool operator()(const State& a, const State& b) const {
      if (a.lower_bound != b.lower_bound) {
        return a.lower_bound > b.lower_bound;
      }
      return a.seq > b.seq;
    }
  };

  std::vector<CoverState> cover_states;
  std::priority_queue<State, std::vector<State>, StateGreater> heap;
  uint64_t next_seq = 0;

  // Admissible lower bound given a cover and a tree-relation count f: the
  // spliced FROM is FROM ∪ tree, so its size is at least
  // |FROM| + max(|{R, S} \ FROM|, f - |FROM|). Nothing is ever dropped on
  // this path (components are substituted, not removed), and the extent is
  // exact, so the bound is tight up to the final tree choice.
  auto width_bound = [&](const CoverState& cs, size_t tree_size) {
    const size_t missing =
        from_set.count(cs.cover->source.relation) ? 0u : 1u;
    const size_t beyond = tree_size > from_size ? tree_size - from_size : 0u;
    return from_size + std::max(missing, beyond);
  };
  auto cover_lower_bound = [&](const CoverState& cs, size_t join_width) {
    PartialCandidate partial;
    partial.original_from_size = from_size;
    partial.join_width = join_width;
    partial.extent_floor = cs.extent;
    return LowerBound(partial, model);
  };
  auto search_lower_bound = [&](const CoverState& cs) {
    return cover_lower_bound(
        cs, width_bound(cs, cs.enumerator.NextTreeSizeLowerBound()));
  };
  auto fold_stats = [&](CoverState& cs) {
    result.enumeration.trees_expanded +=
        cs.enumerator.sets_expanded() - cs.seen_expanded;
    cs.seen_expanded = cs.enumerator.sets_expanded();
    result.enumeration.search_sets_cut +=
        cs.enumerator.sets_cut() - cs.seen_cut;
    cs.seen_cut = cs.enumerator.sets_cut();
  };
  auto unreachable_note = [&](const CoverState& cs) {
    result.diagnostics.push_back(
        "cover " + cs.cover->id + " (" + cs.cover->source.relation +
        ") is not reachable from " + relation + " in H'(MKB')");
  };

  JoinTreeSearchOptions search;
  search.max_extra_relations = options.replacement.max_extra_relations;
  search.max_results = options.replacement.max_results;
  search.token = options.replacement.token;
  for (const FunctionOfConstraint* cover : mkb.CoversOf(attr)) {
    if (cover->source.relation == relation) continue;
    if (!graph_prime.HasRelation(cover->source.relation)) continue;
    CoverState cs{cover, AttrPcJustification(mkb, attr, cover->source),
                  JoinTreeEnumerator(graph_prime,
                                     {relation, cover->source.relation}, {},
                                     search)};
    ++result.enumeration.combos_generated;
    if (cs.enumerator.Exhausted()) {
      // Dead on arrival: different component, so no tree can exist.
      unreachable_note(cs);
      continue;
    }
    const size_t index = cover_states.size();
    cover_states.push_back(std::move(cs));
    heap.push(State{search_lower_bound(cover_states[index]), next_seq++,
                    Kind::kSearch, index, std::nullopt});
  }

  // Accepted replacement-based rewritings in arrival (lower-bound) order;
  // the drop-based rewriting is appended after the loop, as before.
  std::vector<SynchronizedView> accepted;
  std::multiset<double> accepted_totals;
  const double kInf = std::numeric_limits<double>::infinity();
  auto kth_best = [&]() -> double {
    if (options.top_k == 0 || accepted_totals.size() < options.top_k) {
      return kInf;
    }
    auto it = accepted_totals.begin();
    std::advance(it, options.top_k - 1);
    return *it;
  };

  // Probe the drop-based rewriting up front so its cost participates in
  // the top-k bound; the real rewriting (with its proper name) is built
  // after the loop to keep the historical result order.
  const bool drop_possible =
      options.include_drop_rewriting && !any_indispensable;
  bool dropped_condition = false;
  for (const ViewCondition& cond : view.where()) {
    if (ExprMentions(*cond.clause, attr)) dropped_condition = true;
  }
  // Dropping a dispensable projection column leaves the extent equal on
  // the common interface; dropping a dispensable filter widens it.
  const ExtentRelation drop_extent = dropped_condition
                                         ? ExtentRelation::kSuperset
                                         : ExtentRelation::kEqual;
  if (drop_possible) {
    Result<ViewDefinition> probe =
        DropAttributeRewriting(view, attr, view.name());
    if (probe.ok()) {
      const LegalityReport legality = CheckLegality(
          view, probe.value(), change, mkb_prime, drop_extent, {});
      if (legality.legal() || !options.require_view_extent) {
        accepted_totals.insert(
            ScoreRewriting(view, probe.value(), legality.inferred_extent,
                           model)
                .total);
      }
    }
  }

  size_t pull_cap = options.replacement.max_results;
  const char* cap_name = "max_results";
  if (options.candidate_budget > 0 &&
      (pull_cap == 0 || options.candidate_budget < pull_cap)) {
    pull_cap = options.candidate_budget;
    cap_name = "candidate_budget";
  }

  size_t pulled = 0;
  bool deadline_partial = false;
  size_t deadline_frontier = 0;
  while (!heap.empty()) {
    // Safe point: stop before more work once the token expired (its own
    // limits, an ancestor's cancellation, or an enumerator's refusal
    // observed below). The accepted prefix stays valid.
    if (options.replacement.token.Expired()) {
      deadline_partial = true;
      break;
    }
    const double bound = kth_best();
    if (bound < kInf && heap.top().lower_bound >= bound) {
      result.enumeration.terminated_early = true;
      std::ostringstream note;
      note << "top-k early termination: next candidate lower bound "
           << heap.top().lower_bound << " >= k-th best cost " << bound
           << " with " << heap.size() << " queue states unexplored";
      result.diagnostics.push_back(note.str());
      break;
    }
    if (pull_cap > 0 && pulled >= pull_cap) {
      result.diagnostics.push_back(
          std::string(cap_name) + "=" + std::to_string(pull_cap) +
          " stopped the enumeration after " + std::to_string(pulled) +
          " candidates with " + std::to_string(heap.size()) +
          " queue states unexplored; the result may be incomplete");
      break;
    }
    State state = heap.top();
    heap.pop();
    CoverState& cs = cover_states[state.cover_index];

    if (state.kind == Kind::kSearch) {
      // Lazy key update: the frontier may have shrunk to larger trees
      // since this state was pushed.
      const double fresh = search_lower_bound(cs);
      if (fresh > state.lower_bound) {
        state.lower_bound = fresh;
        heap.push(std::move(state));
        continue;
      }
      std::optional<JoinTree> tree = cs.enumerator.Next();
      fold_stats(cs);
      if (!tree.has_value() && cs.enumerator.interrupted() &&
          deadline_frontier == 0) {
        // First-cut frontier bound: the smallest tree the interrupted
        // search had not yet explored. The Expired() check above ends
        // the loop on the next iteration.
        deadline_frontier = cs.enumerator.NextTreeSizeLowerBound();
      }
      if (!cs.enumerator.Exhausted()) {
        heap.push(State{std::max(search_lower_bound(cs), state.lower_bound),
                        next_seq++, Kind::kSearch, state.cover_index,
                        std::nullopt});
      }
      if (tree.has_value()) {
        ++cs.yielded;
        std::set<std::string> merged = from_set;
        for (const std::string& rel : tree->relations) merged.insert(rel);
        const double lb =
            std::max(cover_lower_bound(cs, merged.size()), state.lower_bound);
        heap.push(State{lb, next_seq++, Kind::kReady, state.cover_index,
                        std::move(tree)});
      } else if (cs.enumerator.Exhausted() && cs.yielded == 0) {
        // The search drained (possibly cut by max_extra_relations) without
        // a single connecting tree.
        unreachable_note(cs);
      }
      continue;
    }

    // kReady: splice and legality-check the candidate.
    ++pulled;
    ++result.enumeration.candidates_yielded;
    const JoinTree tree = std::move(*state.tree);
    const FunctionOfConstraint& cover = *cs.cover;
    Result<ViewDefinition> spliced =
        SpliceAttributeReplacement(view, attr, cover, tree, next_name());
    if (!spliced.ok()) {
      result.diagnostics.push_back("candidate rejected: " +
                                   spliced.status().ToString());
      ++result.enumeration.candidates_rejected;
      continue;
    }
    // One local copy, moved into the result below.
    ViewDefinition spliced_view = spliced.MoveValue();
    std::map<AttributeRef, ExprPtr> substitution;
    substitution.emplace(attr, cover.fn);
    SynchronizedView synced;
    synced.candidate.tree = tree;
    synced.candidate.cost_lower_bound = state.lower_bound;
    synced.candidate.replacements.push_back(AttributeReplacement{
        attr, cover.fn, cover.source.relation, cover.id});
    synced.legality = CheckLegality(view, spliced_view, change, mkb_prime,
                                    cs.extent, substitution);
    synced.cost = ScoreRewriting(view, spliced_view,
                                 synced.legality.inferred_extent, model);
    synced.view = std::move(spliced_view);
    if (!synced.legality.legal() && options.require_view_extent) {
      result.diagnostics.push_back("candidate rejected: " +
                                   synced.legality.ToString());
      ++result.enumeration.candidates_rejected;
      continue;
    }
    if (!synced.legality.p1_unaffected || !synced.legality.p2_evaluable ||
        !synced.legality.p4_parameters) {
      result.diagnostics.push_back("candidate rejected: " +
                                   synced.legality.ToString());
      ++result.enumeration.candidates_rejected;
      continue;
    }
    accepted_totals.insert(synced.cost.total);
    accepted.push_back(std::move(synced));
  }
  result.enumeration.states_pending = heap.size();
  result.enumeration.exhausted = heap.empty();
  {
    const DeadlineToken& token = options.replacement.token;
    if (token.valid()) {
      result.enumeration.deadline.work_spent = token.work_spent();
      result.enumeration.deadline.work_budget = token.work_budget();
      result.enumeration.deadline.stop_cause = token.cause();
      if (deadline_partial) {
        result.enumeration.deadline.partial = true;
        result.enumeration.deadline.frontier_bound = deadline_frontier;
        result.diagnostics.push_back(
            "deadline stopped the enumeration (" +
            std::string(StopCauseToString(token.cause())) + " after " +
            std::to_string(token.work_spent()) +
            " work units); returning the best-under-budget prefix");
      }
    }
  }
  if (result.enumeration.search_sets_cut > 0) {
    result.diagnostics.push_back(
        "join-tree search cut " +
        std::to_string(result.enumeration.search_sets_cut) +
        " frontier sets at max_extra_relations=" +
        std::to_string(options.replacement.max_extra_relations) +
        "; the enumeration may be incomplete");
  }

  result.rewritings = std::move(accepted);

  // Drop path: only when every usage is dispensable.
  if (drop_possible) {
    Result<ViewDefinition> dropped =
        DropAttributeRewriting(view, attr, next_name());
    if (dropped.ok()) {
      ViewDefinition dropped_view = dropped.MoveValue();
      SynchronizedView synced;
      synced.is_drop = true;
      synced.legality = CheckLegality(view, dropped_view, change, mkb_prime,
                                      drop_extent, {});
      synced.cost = ScoreRewriting(view, dropped_view,
                                   synced.legality.inferred_extent, model);
      synced.view = std::move(dropped_view);
      if (synced.legality.legal() || !options.require_view_extent) {
        result.rewritings.push_back(std::move(synced));
      } else {
        result.diagnostics.push_back("drop-based rewriting rejected: " +
                                     synced.legality.ToString());
      }
    } else {
      result.diagnostics.push_back("drop-based rewriting not possible: " +
                                   dropped.status().ToString());
    }
  }

  // One ranking path: sort by the model in effect. Ties keep arrival
  // order — stream order for replacements, then the drop-based rewriting.
  std::stable_sort(result.rewritings.begin(), result.rewritings.end(),
                   [](const SynchronizedView& a, const SynchronizedView& b) {
                     return a.cost.total < b.cost.total;
                   });
  if (options.top_k > 0 && result.rewritings.size() > options.top_k) {
    result.diagnostics.push_back(
        "ranked " + std::to_string(result.rewritings.size()) +
        " legal rewritings; returning top " +
        std::to_string(options.top_k));
    result.rewritings.resize(options.top_k);
  }

  if (result.rewritings.empty()) {
    result.diagnostics.push_back("no legal rewriting found for " +
                                 view.name() + " under " + change.ToString());
  }
  return result;
}

}  // namespace eve
