// The extent-relationship lattice used by P3 reasoning (split out of
// cvs/extent.h so cvs/cost_model.h can price extents without pulling in
// the full extent-inference machinery — and, through it, r_replacement.h,
// which itself needs the cost model for lower bounds).

#ifndef EVE_CVS_EXTENT_RELATION_H_
#define EVE_CVS_EXTENT_RELATION_H_

#include <string_view>

namespace eve {

// Relationship between the new extent V' and the old extent V, projected
// on the common interface: V' <rel> V.
enum class ExtentRelation {
  kEqual,     // V' ≡ V
  kSuperset,  // V' ⊇ V
  kSubset,    // V' ⊆ V
  kUnknown,   // cannot be established
};

std::string_view ExtentRelationToString(ExtentRelation relation);

// Lattice meet for composing per-component effects: Equal is neutral,
// Superset/Subset absorb Equal, mixing Superset with Subset (or anything
// with Unknown) yields Unknown. Composing in more contributions never
// strengthens the result — it moves up the lattice
// Equal < {Superset, Subset} < Unknown — which is what makes extent
// floors admissible during lazy enumeration (see cvs/cost_model.h).
ExtentRelation CombineExtent(ExtentRelation a, ExtentRelation b);

}  // namespace eve

#endif  // EVE_CVS_EXTENT_RELATION_H_
