#include "esql/view_definition.h"

#include <algorithm>

#include "sql/printer.h"

namespace eve {

std::vector<std::string> ViewDefinition::InterfaceNames() const {
  std::vector<std::string> names;
  names.reserve(select_.size());
  for (const ViewSelectItem& item : select_) {
    names.push_back(item.output_name);
  }
  return names;
}

std::vector<std::string> ViewDefinition::FromRelationNames() const {
  std::vector<std::string> names;
  names.reserve(from_.size());
  for (const ViewRelation& rel : from_) names.push_back(rel.name);
  return names;
}

bool ViewDefinition::HasFromRelation(const std::string& relation) const {
  return std::any_of(from_.begin(), from_.end(),
                     [&](const ViewRelation& r) { return r.name == relation; });
}

bool ViewDefinition::ReferencesRelation(const std::string& relation) const {
  if (HasFromRelation(relation)) return true;
  std::vector<AttributeRef> cols;
  for (const ViewSelectItem& item : select_) item.expr->CollectColumns(&cols);
  for (const ViewCondition& cond : where_) cond.clause->CollectColumns(&cols);
  return std::any_of(cols.begin(), cols.end(), [&](const AttributeRef& ref) {
    return ref.relation == relation;
  });
}

bool ViewDefinition::ReferencesAttribute(const AttributeRef& ref) const {
  std::vector<AttributeRef> cols;
  for (const ViewSelectItem& item : select_) item.expr->CollectColumns(&cols);
  for (const ViewCondition& cond : where_) cond.clause->CollectColumns(&cols);
  return std::find(cols.begin(), cols.end(), ref) != cols.end();
}

std::vector<AttributeRef> ViewDefinition::AttributesOf(
    const std::string& relation) const {
  std::vector<AttributeRef> cols;
  for (const ViewSelectItem& item : select_) item.expr->CollectColumns(&cols);
  for (const ViewCondition& cond : where_) cond.clause->CollectColumns(&cols);
  std::vector<AttributeRef> out;
  for (const AttributeRef& ref : cols) {
    if (ref.relation == relation &&
        std::find(out.begin(), out.end(), ref) == out.end()) {
      out.push_back(ref);
    }
  }
  return out;
}

std::vector<std::string> ViewDefinition::ReferencedRelations() const {
  std::vector<std::string> out;
  for (const ViewRelation& rel : from_) out.push_back(rel.name);
  std::vector<AttributeRef> cols;
  for (const ViewSelectItem& item : select_) item.expr->CollectColumns(&cols);
  for (const ViewCondition& cond : where_) cond.clause->CollectColumns(&cols);
  for (const AttributeRef& ref : cols) out.push_back(ref.relation);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<AttributeRef> ViewDefinition::ReferencedAttributes() const {
  std::vector<AttributeRef> cols;
  for (const ViewSelectItem& item : select_) item.expr->CollectColumns(&cols);
  for (const ViewCondition& cond : where_) cond.clause->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

ParsedView ViewDefinition::ToParsedView() const {
  ParsedView parsed;
  parsed.name = name_;
  parsed.extent = extent_;
  for (const ViewSelectItem& item : select_) {
    parsed.select.push_back(
        ParsedSelectItem{item.expr, item.output_name, item.params});
  }
  for (const ViewRelation& rel : from_) {
    parsed.from.push_back(ParsedFromItem{rel.name, "", rel.params});
  }
  for (const ViewCondition& cond : where_) {
    parsed.where.push_back(ParsedCondition{cond.clause, cond.params});
  }
  return parsed;
}

std::string ViewDefinition::ToString() const {
  return PrintView(ToParsedView());
}

}  // namespace eve
