#include "esql/evaluator.h"

namespace eve {

Result<Table> EvaluateView(const ViewDefinition& view, const Database& db,
                           const Catalog& catalog,
                           const FunctionRegistry* registry,
                           JoinStrategy strategy) {
  ConjunctiveQuery query;
  query.relations = view.FromRelationNames();
  query.conjuncts.reserve(view.where().size());
  for (const ViewCondition& cond : view.where()) {
    query.conjuncts.push_back(cond.clause);
  }
  query.projections.reserve(view.select().size());
  for (const ViewSelectItem& item : view.select()) {
    query.projections.push_back(item.expr);
    query.output_names.push_back(item.output_name);
  }
  query.distinct = true;
  return Execute(query, db, catalog, registry, strategy);
}

}  // namespace eve
