// Binder: resolves a ParsedView against the catalog into a ViewDefinition —
// alias resolution, attribute qualification, type checking, and validation
// of the paper's well-formedness assumptions (Sec. 4).

#ifndef EVE_ESQL_BINDER_H_
#define EVE_ESQL_BINDER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/view_definition.h"
#include "sql/ast.h"

namespace eve {

// Binds `parsed` against `catalog`. Checks:
//  * every FROM relation exists; no relation appears twice (paper Sec. 4),
//  * every column reference resolves to exactly one FROM relation,
//  * SELECT expressions and WHERE clauses type-check,
//  * the explicit column-name list (if given) matches the SELECT arity.
Result<ViewDefinition> BindView(const ParsedView& parsed,
                                const Catalog& catalog);

// Convenience: parse + bind.
Result<ViewDefinition> ParseAndBindView(std::string_view text,
                                        const Catalog& catalog);

// Structurally converts `parsed` to a ViewDefinition WITHOUT consulting a
// catalog: aliases are resolved from the FROM list alone, qualified columns
// are taken at face value, and no existence or type checks run. Used to
// restore disabled views from persistence — their definitions may reference
// capabilities the federation no longer has, yet the pool must reload
// exactly. Unqualified columns (impossible in SaveViews output, which is
// fully qualified) are rejected.
Result<ViewDefinition> BindViewUnchecked(const ParsedView& parsed);

// Checks the paper's *strict* assumption that every distinguished attribute
// (one used in an indispensable WHERE clause) appears in the SELECT list.
// The paper's own running example violates it, so this is advisory and not
// part of BindView.
Status CheckDistinguishedAttributesPreserved(const ViewDefinition& view);

// True when the view is in the fragment CVS synchronizes: every WHERE
// clause is a primitive comparison (no OR / NOT / nested logic).
bool IsConjunctiveView(const ViewDefinition& view);

}  // namespace eve

#endif  // EVE_ESQL_BINDER_H_
