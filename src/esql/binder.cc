#include "esql/binder.h"

#include <map>
#include <set>

#include "algebra/eval.h"
#include "sql/parser.h"

namespace eve {

namespace {

// Maps alias-or-relation qualifiers to canonical relation names.
class ScopeResolver {
 public:
  static Result<ScopeResolver> Create(const ParsedView& parsed,
                                      const Catalog& catalog) {
    ScopeResolver resolver(&catalog);
    std::set<std::string> seen_relations;
    for (const ParsedFromItem& item : parsed.from) {
      if (!catalog.HasRelation(item.relation)) {
        return Status::NotFound("unknown relation in FROM: " + item.relation);
      }
      if (!seen_relations.insert(item.relation).second) {
        return Status::InvalidArgument(
            "relation appears more than once in FROM: " + item.relation +
            " (the paper assumes each relation occurs at most once)");
      }
      const std::string alias =
          item.alias.empty() ? item.relation : item.alias;
      if (!resolver.alias_to_relation_.emplace(alias, item.relation).second) {
        return Status::InvalidArgument("duplicate FROM alias: " + alias);
      }
      // The canonical name is always usable as a qualifier too.
      resolver.alias_to_relation_.emplace(item.relation, item.relation);
      resolver.relations_.push_back(item.relation);
    }
    return resolver;
  }

  // Resolves one column reference (possibly unqualified) to canonical form.
  Result<AttributeRef> Resolve(const AttributeRef& ref) const {
    if (!ref.relation.empty()) {
      auto it = alias_to_relation_.find(ref.relation);
      if (it == alias_to_relation_.end()) {
        return Status::NotFound("unknown qualifier: " + ref.relation);
      }
      const AttributeRef resolved{it->second, ref.attribute};
      if (!catalog_->HasAttribute(resolved)) {
        return Status::NotFound("unknown attribute: " + resolved.ToString());
      }
      return resolved;
    }
    // Unqualified: must resolve in exactly one FROM relation.
    std::string found_relation;
    for (const std::string& rel : relations_) {
      if (catalog_->HasAttribute(AttributeRef{rel, ref.attribute})) {
        if (!found_relation.empty()) {
          return Status::InvalidArgument(
              "ambiguous attribute '" + ref.attribute + "': found in " +
              found_relation + " and " + rel);
        }
        found_relation = rel;
      }
    }
    if (found_relation.empty()) {
      return Status::NotFound("attribute '" + ref.attribute +
                              "' not found in any FROM relation");
    }
    return AttributeRef{found_relation, ref.attribute};
  }

  // Rewrites every column in `expr` to canonical form.
  Result<ExprPtr> ResolveExpr(const ExprPtr& expr) const {
    if (expr->kind() == ExprKind::kColumn) {
      EVE_ASSIGN_OR_RETURN(AttributeRef resolved, Resolve(expr->column()));
      return Expr::Column(std::move(resolved));
    }
    if (expr->kind() == ExprKind::kLiteral) return expr;
    std::vector<ExprPtr> children;
    children.reserve(expr->children().size());
    for (const ExprPtr& child : expr->children()) {
      EVE_ASSIGN_OR_RETURN(ExprPtr resolved, ResolveExpr(child));
      children.push_back(std::move(resolved));
    }
    switch (expr->kind()) {
      case ExprKind::kUnary:
        return Expr::Unary(expr->unary_op(), std::move(children[0]));
      case ExprKind::kBinary:
        return Expr::Binary(expr->binary_op(), std::move(children[0]),
                            std::move(children[1]));
      case ExprKind::kFunctionCall:
        return Expr::Func(expr->function_name(), std::move(children));
      default:
        return Status::Internal("unexpected expression kind in binder");
    }
  }

 private:
  explicit ScopeResolver(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog* catalog_;
  std::map<std::string, std::string> alias_to_relation_;
  std::vector<std::string> relations_;
};

// Default output name for a SELECT expression with no alias.
std::string DeriveOutputName(const ExprPtr& expr, size_t index) {
  if (expr->kind() == ExprKind::kColumn) return expr->column().attribute;
  return "col" + std::to_string(index + 1);
}

}  // namespace

Result<ViewDefinition> BindView(const ParsedView& parsed,
                                const Catalog& catalog) {
  if (parsed.select.empty()) {
    return Status::InvalidArgument("view has an empty SELECT list");
  }
  if (parsed.from.empty()) {
    return Status::InvalidArgument("view has an empty FROM list");
  }
  if (!parsed.column_names.empty() &&
      parsed.column_names.size() != parsed.select.size()) {
    return Status::InvalidArgument(
        "view column list has " + std::to_string(parsed.column_names.size()) +
        " names but SELECT has " + std::to_string(parsed.select.size()) +
        " items");
  }
  EVE_ASSIGN_OR_RETURN(const ScopeResolver resolver,
                       ScopeResolver::Create(parsed, catalog));

  std::vector<ViewSelectItem> select;
  select.reserve(parsed.select.size());
  std::set<std::string> output_names;
  for (size_t i = 0; i < parsed.select.size(); ++i) {
    const ParsedSelectItem& item = parsed.select[i];
    EVE_ASSIGN_OR_RETURN(ExprPtr expr, resolver.ResolveExpr(item.expr));
    EVE_ASSIGN_OR_RETURN(const DataType type, InferType(*expr, catalog));
    if (type == DataType::kNull) {
      return Status::TypeError("SELECT item " + std::to_string(i + 1) +
                               " has NULL type");
    }
    std::string output_name = !parsed.column_names.empty()
                                  ? parsed.column_names[i]
                                  : (!item.alias.empty()
                                         ? item.alias
                                         : DeriveOutputName(expr, i));
    if (!output_names.insert(output_name).second) {
      return Status::InvalidArgument("duplicate output column name: " +
                                     output_name);
    }
    select.push_back(
        ViewSelectItem{std::move(expr), std::move(output_name), item.params});
  }

  std::vector<ViewRelation> from;
  from.reserve(parsed.from.size());
  for (const ParsedFromItem& item : parsed.from) {
    from.push_back(ViewRelation{item.relation, item.params});
  }

  std::vector<ViewCondition> where;
  where.reserve(parsed.where.size());
  for (const ParsedCondition& cond : parsed.where) {
    EVE_ASSIGN_OR_RETURN(ExprPtr clause, resolver.ResolveExpr(cond.clause));
    EVE_ASSIGN_OR_RETURN(const DataType type, InferType(*clause, catalog));
    if (type != DataType::kBool) {
      return Status::TypeError("WHERE clause is not boolean: " +
                               clause->ToString());
    }
    where.push_back(ViewCondition{std::move(clause), cond.params});
  }

  return ViewDefinition(parsed.name, parsed.extent, std::move(select),
                        std::move(from), std::move(where));
}

Result<ViewDefinition> ParseAndBindView(std::string_view text,
                                        const Catalog& catalog) {
  EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
  return BindView(parsed, catalog);
}

namespace {

// Catalog-free column canonicalization for BindViewUnchecked.
class LenientResolver {
 public:
  static Result<LenientResolver> Create(const ParsedView& parsed) {
    LenientResolver resolver;
    for (const ParsedFromItem& item : parsed.from) {
      const std::string alias =
          item.alias.empty() ? item.relation : item.alias;
      resolver.alias_to_relation_.emplace(alias, item.relation);
      resolver.alias_to_relation_.emplace(item.relation, item.relation);
    }
    return resolver;
  }

  Result<ExprPtr> ResolveExpr(const ExprPtr& expr) const {
    if (expr->kind() == ExprKind::kColumn) {
      const AttributeRef& ref = expr->column();
      if (ref.relation.empty()) {
        return Status::InvalidArgument(
            "cannot restore unqualified column '" + ref.attribute +
            "' without a catalog");
      }
      auto it = alias_to_relation_.find(ref.relation);
      // Unknown qualifiers are kept verbatim: a disabled view may reference
      // relations that are gone from the FROM list after partial rewriting.
      const std::string& relation =
          it == alias_to_relation_.end() ? ref.relation : it->second;
      return Expr::Column(AttributeRef{relation, ref.attribute});
    }
    if (expr->kind() == ExprKind::kLiteral) return expr;
    std::vector<ExprPtr> children;
    children.reserve(expr->children().size());
    for (const ExprPtr& child : expr->children()) {
      EVE_ASSIGN_OR_RETURN(ExprPtr resolved, ResolveExpr(child));
      children.push_back(std::move(resolved));
    }
    switch (expr->kind()) {
      case ExprKind::kUnary:
        return Expr::Unary(expr->unary_op(), std::move(children[0]));
      case ExprKind::kBinary:
        return Expr::Binary(expr->binary_op(), std::move(children[0]),
                            std::move(children[1]));
      case ExprKind::kFunctionCall:
        return Expr::Func(expr->function_name(), std::move(children));
      default:
        return Status::Internal("unexpected expression kind in binder");
    }
  }

 private:
  std::map<std::string, std::string> alias_to_relation_;
};

}  // namespace

Result<ViewDefinition> BindViewUnchecked(const ParsedView& parsed) {
  if (parsed.select.empty()) {
    return Status::InvalidArgument("view has an empty SELECT list");
  }
  if (parsed.from.empty()) {
    return Status::InvalidArgument("view has an empty FROM list");
  }
  if (!parsed.column_names.empty() &&
      parsed.column_names.size() != parsed.select.size()) {
    return Status::InvalidArgument("view column list arity mismatch");
  }
  EVE_ASSIGN_OR_RETURN(const LenientResolver resolver,
                       LenientResolver::Create(parsed));
  std::vector<ViewSelectItem> select;
  select.reserve(parsed.select.size());
  for (size_t i = 0; i < parsed.select.size(); ++i) {
    const ParsedSelectItem& item = parsed.select[i];
    EVE_ASSIGN_OR_RETURN(ExprPtr expr, resolver.ResolveExpr(item.expr));
    std::string output_name =
        !parsed.column_names.empty()
            ? parsed.column_names[i]
            : (!item.alias.empty() ? item.alias : DeriveOutputName(expr, i));
    select.push_back(
        ViewSelectItem{std::move(expr), std::move(output_name), item.params});
  }
  std::vector<ViewRelation> from;
  from.reserve(parsed.from.size());
  for (const ParsedFromItem& item : parsed.from) {
    from.push_back(ViewRelation{item.relation, item.params});
  }
  std::vector<ViewCondition> where;
  where.reserve(parsed.where.size());
  for (const ParsedCondition& cond : parsed.where) {
    EVE_ASSIGN_OR_RETURN(ExprPtr clause, resolver.ResolveExpr(cond.clause));
    where.push_back(ViewCondition{std::move(clause), cond.params});
  }
  return ViewDefinition(parsed.name, parsed.extent, std::move(select),
                        std::move(from), std::move(where));
}

Status CheckDistinguishedAttributesPreserved(const ViewDefinition& view) {
  std::vector<AttributeRef> preserved;
  for (const ViewSelectItem& item : view.select()) {
    item.expr->CollectColumns(&preserved);
  }
  for (const ViewCondition& cond : view.where()) {
    if (cond.params.dispensable) continue;  // only indispensable conditions
    std::vector<AttributeRef> distinguished;
    cond.clause->CollectColumns(&distinguished);
    for (const AttributeRef& ref : distinguished) {
      if (std::find(preserved.begin(), preserved.end(), ref) ==
          preserved.end()) {
        return Status::FailedPrecondition(
            "distinguished attribute " + ref.ToString() +
            " (used in indispensable condition " + cond.clause->ToString() +
            ") is not among the preserved attributes");
      }
    }
  }
  return Status::OK();
}

bool IsConjunctiveView(const ViewDefinition& view) {
  for (const ViewCondition& cond : view.where()) {
    const Expr& clause = *cond.clause;
    if (clause.kind() != ExprKind::kBinary ||
        !IsComparisonOp(clause.binary_op())) {
      return false;
    }
  }
  return true;
}

}  // namespace eve
