// ViewDefinition: a semantically bound E-SQL view. All column references
// are canonical (qualified by real relation names), aliases are gone, and
// the WHERE clause is a flat conjunction of annotated primitive clauses —
// the form the paper's Definitions 1–3 operate on.

#ifndef EVE_ESQL_VIEW_DEFINITION_H_
#define EVE_ESQL_VIEW_DEFINITION_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/attribute_ref.h"
#include "common/result.h"
#include "sql/ast.h"
#include "sql/evolution_params.h"

namespace eve {

// SELECT-list entry. `expr` is a plain column for user-authored views and
// may be a function-of expression (e.g. years_since(Accident-Ins.Birthday))
// after synchronization (paper Eq. (13)).
struct ViewSelectItem {
  ExprPtr expr;
  std::string output_name;
  EvolutionParams params;  // AD / AR
};

struct ViewRelation {
  std::string name;        // canonical relation name
  EvolutionParams params;  // RD / RR
};

struct ViewCondition {
  ExprPtr clause;          // one primitive clause (comparison) typically
  EvolutionParams params;  // CD / CR
};

class ViewDefinition {
 public:
  ViewDefinition() = default;
  ViewDefinition(std::string name, ViewExtent extent,
                 std::vector<ViewSelectItem> select,
                 std::vector<ViewRelation> from,
                 std::vector<ViewCondition> where)
      : name_(std::move(name)),
        extent_(extent),
        select_(std::move(select)),
        from_(std::move(from)),
        where_(std::move(where)) {}

  const std::string& name() const { return name_; }
  ViewExtent extent() const { return extent_; }
  const std::vector<ViewSelectItem>& select() const { return select_; }
  const std::vector<ViewRelation>& from() const { return from_; }
  const std::vector<ViewCondition>& where() const { return where_; }

  std::vector<ViewSelectItem>* mutable_select() { return &select_; }
  std::vector<ViewRelation>* mutable_from() { return &from_; }
  std::vector<ViewCondition>* mutable_where() { return &where_; }
  void set_name(std::string name) { name_ = std::move(name); }
  void set_extent(ViewExtent extent) { extent_ = extent; }

  // Interface attribute names (B̄_V in the paper).
  std::vector<std::string> InterfaceNames() const;

  // All relation names in FROM, in order.
  std::vector<std::string> FromRelationNames() const;

  bool HasFromRelation(const std::string& relation) const;

  // True if the view mentions `relation` anywhere (FROM, SELECT or WHERE).
  bool ReferencesRelation(const std::string& relation) const;

  // True if the view mentions attribute `ref` in SELECT or WHERE.
  bool ReferencesAttribute(const AttributeRef& ref) const;

  // All distinct attributes of `relation` used anywhere in the view.
  std::vector<AttributeRef> AttributesOf(const std::string& relation) const;

  // All distinct relations the view mentions (FROM plus column references),
  // sorted: the set ReferencesRelation answers membership queries against.
  std::vector<std::string> ReferencedRelations() const;

  // All distinct attributes mentioned in SELECT or WHERE, sorted: the set
  // ReferencesAttribute answers membership queries against.
  std::vector<AttributeRef> ReferencedAttributes() const;

  // Converts back to a printable AST (aliases = relation names).
  ParsedView ToParsedView() const;

  // E-SQL text (round-trips through the parser).
  std::string ToString() const;

 private:
  std::string name_;
  ViewExtent extent_ = ViewExtent::kAny;
  std::vector<ViewSelectItem> select_;
  std::vector<ViewRelation> from_;
  std::vector<ViewCondition> where_;
};

}  // namespace eve

#endif  // EVE_ESQL_VIEW_DEFINITION_H_
