// Evaluates bound views over the federated Database — the bridge between
// esql (view definitions) and algebra (execution). Used by legality checks
// to compare old/new view extents empirically.

#ifndef EVE_ESQL_EVALUATOR_H_
#define EVE_ESQL_EVALUATOR_H_

#include "algebra/eval.h"
#include "algebra/executor.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/view_definition.h"
#include "storage/database.h"

namespace eve {

// Materializes `view` over `db` with set semantics. `strategy` picks the
// join implementation; results are identical.
Result<Table> EvaluateView(const ViewDefinition& view, const Database& db,
                           const Catalog& catalog,
                           const FunctionRegistry* registry = nullptr,
                           JoinStrategy strategy = JoinStrategy::kNestedLoop);

}  // namespace eve

#endif  // EVE_ESQL_EVALUATOR_H_
