#include "workload/travel_agency.h"

#include <random>

#include "mkb/builder.h"
#include "types/date.h"

namespace eve {

namespace {

RelationDef MakeRelation(std::string source, std::string name,
                         std::vector<AttributeDef> attrs) {
  RelationDef def;
  def.source = std::move(source);
  def.name = std::move(name);
  def.schema = Schema(std::move(attrs));
  return def;
}

}  // namespace

Result<Mkb> MakeTravelAgencyMkb() {
  Mkb mkb;
  // Content descriptions (Fig. 2). Attributes sharing a name across
  // relations share a type, per the MISD convention.
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS1", "Customer",
      {{"Name", DataType::kString},
       {"Addr", DataType::kString},
       {"Phone", DataType::kString},
       {"Age", DataType::kInt}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS2", "Tour",
      {{"TourID", DataType::kInt},
       {"TourName", DataType::kString},
       {"Type", DataType::kString},
       {"NoDays", DataType::kInt}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS3", "Participant",
      {{"Participant", DataType::kString},
       {"TourID", DataType::kInt},
       {"StartDate", DataType::kDate},
       {"Loc", DataType::kString}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS4", "FlightRes",
      {{"PName", DataType::kString},
       {"Airline", DataType::kString},
       {"FlightNo", DataType::kInt},
       {"Source", DataType::kString},
       {"Dest", DataType::kString},
       {"Date", DataType::kDate}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS5", "Accident-Ins",
      {{"Holder", DataType::kString},
       {"Type", DataType::kString},
       {"Amount", DataType::kDouble},
       {"Birthday", DataType::kDate}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS6", "Hotels",
      {{"City", DataType::kString},
       {"Address", DataType::kString},
       {"PhoneNumber", DataType::kString}})));
  EVE_RETURN_IF_ERROR(mkb.AddRelation(MakeRelation(
      "IS7", "RentACar",
      {{"Company", DataType::kString},
       {"City", DataType::kString},
       {"PhoneNumber", DataType::kString},
       {"Location", DataType::kString}})));

  // Join constraints JC1–JC6.
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC1", "Customer", "FlightRes",
      "Customer.Name = FlightRes.PName"));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC2", "Customer", "Accident-Ins",
      "Customer.Name = \"Accident-Ins\".Holder AND Customer.Age > 1"));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC3", "Customer", "Participant",
      "Customer.Name = Participant.Participant"));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC4", "Participant", "Tour",
      "Participant.TourID = Tour.TourID"));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC5", "Hotels", "RentACar",
      "Hotels.Address = RentACar.Location"));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      &mkb, "JC6", "FlightRes", "Accident-Ins",
      "FlightRes.PName = \"Accident-Ins\".Holder"));

  // Function-of constraints F1–F7. F3 is the paper's
  // Customer.Age = (today − Accident-Ins.Birthday)/365.
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F1", "Customer.Name",
                                        "FlightRes.PName"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F2", "Customer.Name",
                                        "\"Accident-Ins\".Holder"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(
      &mkb, "F3", "Customer.Age",
      "(DATE '2026-07-07' - \"Accident-Ins\".Birthday) / 365"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F4", "Customer.Name",
                                        "Participant.Participant"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F5", "Participant.TourID",
                                        "Tour.TourID"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F6", "Hotels.Address",
                                        "RentACar.Location"));
  EVE_RETURN_IF_ERROR(AddFunctionOfText(&mkb, "F7", "Hotels.City",
                                        "RentACar.City"));
  return mkb;
}

Status AddPersonExtension(Mkb* mkb) {
  EVE_RETURN_IF_ERROR(mkb->AddRelation(MakeRelation(
      "IS8", "Person",
      {{"Name", DataType::kString},
       {"SSN", DataType::kString},
       {"PAddr", DataType::kString}})));
  EVE_RETURN_IF_ERROR(AddJoinConstraintText(
      mkb, "JC-CP", "Customer", "Person", "Customer.Name = Person.Name"));
  EVE_RETURN_IF_ERROR(
      AddFunctionOfText(mkb, "F-ADDR", "Customer.Addr", "Person.PAddr"));
  EVE_RETURN_IF_ERROR(AddProjectionPC(mkb, "PC-CP", "Person", "Name, PAddr",
                                      SetRelation::kSuperset, "Customer",
                                      "Name, Addr"));
  return Status::OK();
}

Status AddAccidentInsPc(Mkb* mkb) {
  return AddProjectionPC(mkb, "PC-AI", "Accident-Ins", "Holder",
                         SetRelation::kSuperset, "Customer", "Name");
}

Status AddFlightResPc(Mkb* mkb) {
  return AddProjectionPC(mkb, "PC-FR", "FlightRes", "PName",
                         SetRelation::kSuperset, "Customer", "Name");
}

std::string AsiaCustomerSql() {
  // Eq. (3): VE = ⊇, C.Addr indispensable but replaceable.
  return R"sql(
    CREATE VIEW AsiaCustomer (AName, AAddr, APh) (VE = >=) AS
    SELECT C.Name (AD = false, AR = true),
           C.Addr (AD = false, AR = true),
           C.Phone (AD = true, AR = false)
    FROM Customer C (RD = false, RR = true), FlightRes F
    WHERE (C.Name = F.PName) (CD = false, CR = true)
      AND (F.Dest = 'Asia') (CD = true, CR = true)
  )sql";
}

std::string CustomerPassengersAsiaSql() {
  // Eq. (5) with its positional annotations.
  return R"sql(
    CREATE VIEW CustomerPassengersAsia (VE = ~) AS
    SELECT C.Name (false, true), C.Age (true, true),
           P.Participant (true, true), P.TourID (true, true)
    FROM Customer C (true, true), FlightRes F (true, true),
         Participant P (true, true)
    WHERE (C.Name = F.PName) (false, true)
      AND (F.Dest = 'Asia') (false, true)
      AND (P.StartDate = F.Date) (false, true)
      AND (P.Loc = 'Asia') (false, true)
  )sql";
}

Status PopulateTravelAgencyDatabase(const Mkb& mkb, Database* db,
                                    size_t num_customers, uint64_t seed) {
  EVE_RETURN_IF_ERROR(db->CreateAllTables(mkb.catalog()));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> age_dist(2, 80);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> tour_dist(1, 8);
  std::uniform_int_distribution<int> day_dist(0, 60);
  std::uniform_int_distribution<int> flight_dist(100, 999);

  const Date today = Date::FromYmd(2026, 7, 7).value();
  const Date base = Date::FromYmd(2026, 8, 1).value();
  const char* destinations[] = {"Asia", "Europe"};

  for (size_t i = 0; i < num_customers; ++i) {
    const std::string name = "cust_" + std::to_string(i);
    const std::string addr = "addr_" + std::to_string(i);
    const int age = age_dist(rng);

    EVE_RETURN_IF_ERROR(db->Insert(
        "Customer", {Value::String(name), Value::String(addr),
                     Value::String("phone_" + std::to_string(i)),
                     Value::Int(age)}));

    // Accident-Ins holds EVERY customer (PC-AI ⊇) with a birthday that
    // reproduces the age under F3.
    EVE_RETURN_IF_ERROR(db->Insert(
        "Accident-Ins",
        {Value::String(name), Value::String("life"),
         Value::Double(1000.0 + static_cast<double>(i)),
         Value::MakeDate(today.AddDays(-static_cast<int64_t>(age) * 365))}));

    if (mkb.catalog().HasRelation("Person")) {
      EVE_RETURN_IF_ERROR(db->Insert(
          "Person", {Value::String(name),
                     Value::String("ssn_" + std::to_string(i)),
                     Value::String(addr)}));
    }

    // About half the customers fly; destination alternates.
    if (coin(rng) == 0) {
      const Date flight_date = base.AddDays(day_dist(rng));
      EVE_RETURN_IF_ERROR(db->Insert(
          "FlightRes",
          {Value::String(name), Value::String("AirEVE"),
           Value::Int(flight_dist(rng)), Value::String("Detroit"),
           Value::String(destinations[coin(rng)]),
           Value::MakeDate(flight_date)}));
      // Some flying customers also join a tour starting the same day.
      if (coin(rng) == 0) {
        EVE_RETURN_IF_ERROR(db->Insert(
            "Participant",
            {Value::String(name), Value::Int(tour_dist(rng)),
             Value::MakeDate(flight_date),
             Value::String(destinations[coin(rng)])}));
      }
    }
  }

  for (int tour = 1; tour <= 8; ++tour) {
    EVE_RETURN_IF_ERROR(db->Insert(
        "Tour", {Value::Int(tour),
                 Value::String("tour_" + std::to_string(tour)),
                 Value::String(tour % 2 == 0 ? "cruise" : "hike"),
                 Value::Int(3 + tour)}));
  }
  for (int i = 0; i < 10; ++i) {
    const std::string city = "city_" + std::to_string(i % 3);
    const std::string address = "hotel_addr_" + std::to_string(i);
    EVE_RETURN_IF_ERROR(db->Insert(
        "Hotels", {Value::String(city), Value::String(address),
                   Value::String("hphone_" + std::to_string(i))}));
    EVE_RETURN_IF_ERROR(db->Insert(
        "RentACar", {Value::String("rental_" + std::to_string(i % 4)),
                     Value::String(city),
                     Value::String("rphone_" + std::to_string(i)),
                     Value::String(address)}));
  }
  return Status::OK();
}

}  // namespace eve
