// The paper's running example (Ex. 1, Fig. 2): the travel-agency
// federation — seven relations across seven ISs, join constraints JC1–JC6
// and function-of constraints F1–F7 — plus the Ex. 4 Person extension and
// the PC constraints the extent examples rely on. Used by tests, benches
// and examples as the canonical fixture.

#ifndef EVE_WORKLOAD_TRAVEL_AGENCY_H_
#define EVE_WORKLOAD_TRAVEL_AGENCY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "mkb/mkb.h"
#include "storage/database.h"

namespace eve {

// Builds the Fig. 2 MKB exactly: Customer, Tour, Participant, FlightRes,
// Accident-Ins, Hotels, RentACar; JC1–JC6; F1–F7 (F3 uses the date
// arithmetic (today − Birthday)/365 with today = 2026-07-07).
Result<Mkb> MakeTravelAgencyMkb();

// Ex. 4's extension: adds Person(Name, SSN, PAddr), the join constraint
// JC-CP (Customer.Name = Person.Name), the function-of constraint F-ADDR
// (Customer.Addr = Person.PAddr) and the PC constraint
// π[Name,PAddr](Person) ⊇ π[Name,Addr](Customer).
Status AddPersonExtension(Mkb* mkb);

// PC constraint justifying the Ex. 9/10 rewriting direction:
// π[Holder](Accident-Ins) ⊇ π[Name](Customer).
Status AddAccidentInsPc(Mkb* mkb);

// PC constraint for the FlightRes cover of Customer.Name:
// π[PName](FlightRes) ⊇ π[Name](Customer).
Status AddFlightResPc(Mkb* mkb);

// E-SQL text of the paper's views.
// Eq. (3): Asia-Customer with indispensable-replaceable C.Addr.
std::string AsiaCustomerSql();
// Eq. (5): Customer-Passengers-Asia with the full parameter annotations.
std::string CustomerPassengersAsiaSql();

// Populates `db` with a synthetic but constraint-consistent state:
//  * every Customer.Name appears in Accident-Ins.Holder and Person.Name
//    (when those relations exist), honoring the PC constraints;
//  * Accident-Ins.Birthday is derived from Customer.Age so F3 holds;
//  * FlightRes/Participant reference customer names with mixed
//    destinations so 'Asia' filters select non-trivial subsets.
// Tables are created for every catalog relation.
Status PopulateTravelAgencyDatabase(const Mkb& mkb, Database* db,
                                    size_t num_customers, uint64_t seed);

}  // namespace eve

#endif  // EVE_WORKLOAD_TRAVEL_AGENCY_H_
