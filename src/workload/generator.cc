#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/sharding.h"
#include "mkb/builder.h"

namespace eve {

namespace {

std::string RelName(size_t i) { return "R" + std::to_string(i); }
std::string LinkName(size_t i) { return "L" + std::to_string(i); }
std::string PayloadName(size_t i) { return "P" + std::to_string(i); }
std::string CoverName(size_t i) { return "C" + std::to_string(i); }

Status AddLinkJc(Mkb* mkb, const std::string& id, const std::string& a,
                 const std::string& b, const std::string& link) {
  JoinConstraint jc;
  jc.id = id;
  jc.lhs = a;
  jc.rhs = b;
  jc.clauses.push_back(
      Expr::ColumnsEqual(AttributeRef{a, link}, AttributeRef{b, link}));
  return mkb->AddJoinConstraint(std::move(jc));
}

Status AddCover(Mkb* mkb, size_t covered, const std::string& target,
                bool pc) {
  const std::string covered_rel = RelName(covered);
  EVE_RETURN_IF_ERROR(AddIdentityFunctionOf(
      mkb, "FC" + std::to_string(covered),
      AttributeRef{covered_rel, PayloadName(covered)},
      AttributeRef{target, CoverName(covered)}));
  if (pc) {
    EVE_RETURN_IF_ERROR(AddProjectionPC(
        mkb, "PCC" + std::to_string(covered), target, CoverName(covered),
        SetRelation::kSuperset, covered_rel, PayloadName(covered)));
  }
  return Status::OK();
}

}  // namespace

Result<Mkb> MakeChainMkb(const ChainMkbSpec& spec) {
  if (spec.length < 2) {
    return Status::InvalidArgument("chain length must be at least 2");
  }
  const size_t n = spec.length;
  Mkb mkb;

  // Plan attribute sets first: cover targets depend on the topology.
  std::vector<std::vector<AttributeDef>> attrs(n);
  for (size_t i = 0; i < n; ++i) {
    attrs[i].push_back({PayloadName(i), DataType::kInt});
    for (size_t k = 0; k < spec.extra_attributes; ++k) {
      attrs[i].push_back(
          {"X" + std::to_string(i) + "_" + std::to_string(k),
           DataType::kInt});
    }
    if (i > 0) attrs[i].push_back({LinkName(i - 1), DataType::kInt});
    if (i + 1 < n) attrs[i].push_back({LinkName(i), DataType::kInt});
    if (spec.skip_edges) {
      if (i + 2 < n) {
        attrs[i].push_back({"S" + std::to_string(i), DataType::kInt});
      }
      if (i >= 2) {
        attrs[i].push_back({"S" + std::to_string(i - 2), DataType::kInt});
      }
    }
  }
  std::vector<size_t> cover_target(n, n);  // n = no cover
  if (spec.cover_distance > 0) {
    for (size_t i = 0; i < n; ++i) {
      const size_t target = std::min(i + spec.cover_distance, n - 1);
      if (target == i) continue;  // cannot cover on itself
      cover_target[i] = target;
      attrs[target].push_back({CoverName(i), DataType::kInt});
    }
  }

  for (size_t i = 0; i < n; ++i) {
    RelationDef def;
    def.source = "IS" + std::to_string(i);
    def.name = RelName(i);
    def.schema = Schema(std::move(attrs[i]));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JL" + std::to_string(i), RelName(i),
                                  RelName(i + 1), LinkName(i)));
  }
  if (spec.skip_edges) {
    for (size_t i = 0; i + 2 < n; ++i) {
      EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JS" + std::to_string(i),
                                    RelName(i), RelName(i + 2),
                                    "S" + std::to_string(i)));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (cover_target[i] < n) {
      EVE_RETURN_IF_ERROR(AddCover(&mkb, i, RelName(cover_target[i]),
                                   spec.pc_constraints));
    }
  }
  return mkb;
}

Result<Mkb> MakeCoverFanMkb(const CoverFanMkbSpec& spec) {
  if (spec.num_covers < 1) {
    return Status::InvalidArgument("cover fan needs at least one cover");
  }
  const size_t m = spec.num_covers;
  Mkb mkb;
  auto backbone = [](size_t i) { return "B" + std::to_string(i); };
  auto detour = [](size_t j) { return "D" + std::to_string(j); };

  // Victim R0.
  {
    RelationDef def;
    def.source = "IS_victim";
    def.name = "R0";
    def.schema = Schema({{"P0", DataType::kInt}, {"L0", DataType::kInt}});
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  // Anchor A0: joins the victim, heads the backbone, hosts the L0 cover
  // and the detour links.
  {
    std::vector<AttributeDef> attrs{{"PA", DataType::kInt},
                                    {"L0", DataType::kInt},
                                    {"CL", DataType::kInt},
                                    {"B0", DataType::kInt}};
    for (size_t j = 1; j <= spec.detours; ++j) {
      attrs.push_back({"E" + std::to_string(j), DataType::kInt});
    }
    RelationDef def;
    def.source = "IS_anchor";
    def.name = "A0";
    def.schema = Schema(std::move(attrs));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  // Backbone B1..Bm, each carrying one cover attribute of R0.P0.
  for (size_t i = 1; i <= m; ++i) {
    std::vector<AttributeDef> attrs{
        {"C" + std::to_string(i), DataType::kInt},
        {"B" + std::to_string(i - 1), DataType::kInt}};
    if (i < m) attrs.push_back({"B" + std::to_string(i), DataType::kInt});
    RelationDef def;
    def.source = "IS_backbone";
    def.name = backbone(i);
    def.schema = Schema(std::move(attrs));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  for (size_t j = 1; j <= spec.detours; ++j) {
    RelationDef def;
    def.source = "IS_detour";
    def.name = detour(j);
    def.schema = Schema({{"PD" + std::to_string(j), DataType::kInt},
                         {"E" + std::to_string(j), DataType::kInt}});
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }

  EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JA0", "R0", "A0", "L0"));
  EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JB0", "A0", backbone(1), "B0"));
  for (size_t i = 1; i < m; ++i) {
    EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JB" + std::to_string(i),
                                  backbone(i), backbone(i + 1),
                                  "B" + std::to_string(i)));
  }
  for (size_t j = 1; j <= spec.detours; ++j) {
    EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JD" + std::to_string(j), "A0",
                                  detour(j), "E" + std::to_string(j)));
  }

  // Covers: R0.P0 on every backbone node, R0.L0 on the anchor. The cover
  // PCs double as the Steiner-node justification for path candidates.
  const SetRelation pc_rel =
      spec.equal_pcs ? SetRelation::kEqual : SetRelation::kSuperset;
  for (size_t i = 1; i <= m; ++i) {
    EVE_RETURN_IF_ERROR(AddIdentityFunctionOf(
        &mkb, "FC" + std::to_string(i), AttributeRef{"R0", "P0"},
        AttributeRef{backbone(i), "C" + std::to_string(i)}));
    EVE_RETURN_IF_ERROR(AddProjectionPC(
        &mkb, "PCF" + std::to_string(i), backbone(i),
        "C" + std::to_string(i), pc_rel, "R0", "P0"));
  }
  EVE_RETURN_IF_ERROR(AddIdentityFunctionOf(&mkb, "FCL",
                                            AttributeRef{"R0", "L0"},
                                            AttributeRef{"A0", "CL"}));
  EVE_RETURN_IF_ERROR(
      AddProjectionPC(&mkb, "PCL", "A0", "CL", pc_rel, "R0", "L0"));
  return mkb;
}

Result<ViewDefinition> MakeCoverFanView(const Mkb& mkb) {
  if (!mkb.catalog().HasRelation("R0") || !mkb.catalog().HasRelation("A0")) {
    return Status::InvalidArgument("not a cover-fan MKB");
  }
  std::vector<ViewSelectItem> select;
  select.push_back(ViewSelectItem{Expr::Column(AttributeRef{"R0", "P0"}),
                                  "P0", EvolutionParams{false, true}});
  select.push_back(ViewSelectItem{Expr::Column(AttributeRef{"A0", "PA"}),
                                  "PA", EvolutionParams{false, true}});
  std::vector<ViewRelation> from{
      ViewRelation{"R0", EvolutionParams{false, true}},
      ViewRelation{"A0", EvolutionParams{false, true}}};
  std::vector<ViewCondition> where{
      ViewCondition{Expr::ColumnsEqual(AttributeRef{"R0", "L0"},
                                       AttributeRef{"A0", "L0"}),
                    EvolutionParams{false, true}}};
  return ViewDefinition("cover_fan_view", ViewExtent::kAny,
                        std::move(select), std::move(from),
                        std::move(where));
}

Result<Mkb> MakeStarMkb(size_t num_spokes) {
  if (num_spokes < 1) {
    return Status::InvalidArgument("star needs at least one spoke");
  }
  Mkb mkb;
  const size_t n = num_spokes + 1;  // R0 is the hub

  std::vector<std::vector<AttributeDef>> attrs(n);
  attrs[0].push_back({PayloadName(0), DataType::kInt});
  for (size_t spoke = 1; spoke < n; ++spoke) {
    attrs[0].push_back({LinkName(spoke), DataType::kInt});
    attrs[0].push_back({CoverName(spoke), DataType::kInt});
    attrs[spoke].push_back({PayloadName(spoke), DataType::kInt});
    attrs[spoke].push_back({LinkName(spoke), DataType::kInt});
  }
  attrs[1].push_back({CoverName(0), DataType::kInt});

  for (size_t i = 0; i < n; ++i) {
    RelationDef def;
    def.source = "IS" + std::to_string(i);
    def.name = RelName(i);
    def.schema = Schema(std::move(attrs[i]));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  for (size_t spoke = 1; spoke < n; ++spoke) {
    EVE_RETURN_IF_ERROR(AddLinkJc(&mkb, "JL" + std::to_string(spoke),
                                  RelName(0), RelName(spoke),
                                  LinkName(spoke)));
    EVE_RETURN_IF_ERROR(AddCover(&mkb, spoke, RelName(0), true));
  }
  EVE_RETURN_IF_ERROR(AddCover(&mkb, 0, RelName(1), true));
  return mkb;
}

Result<Mkb> MakeGridMkb(size_t rows, size_t cols) {
  if (rows < 1 || cols < 2) {
    return Status::InvalidArgument("grid needs >= 1 row and >= 2 columns");
  }
  Mkb mkb;
  const size_t n = rows * cols;
  auto idx = [&](size_t r, size_t c) { return r * cols + c; };

  std::vector<std::vector<AttributeDef>> attrs(n);
  auto hlink = [](size_t r, size_t c) {
    return "H" + std::to_string(r) + "_" + std::to_string(c);
  };
  auto vlink = [](size_t r, size_t c) {
    return "V" + std::to_string(r) + "_" + std::to_string(c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const size_t i = idx(r, c);
      attrs[i].push_back({PayloadName(i), DataType::kInt});
      if (c + 1 < cols) attrs[i].push_back({hlink(r, c), DataType::kInt});
      if (c > 0) attrs[i].push_back({hlink(r, c - 1), DataType::kInt});
      if (r + 1 < rows) attrs[i].push_back({vlink(r, c), DataType::kInt});
      if (r > 0) attrs[i].push_back({vlink(r - 1, c), DataType::kInt});
      // Cover of this payload on the right neighbor (wrapping).
      const size_t target = idx(r, (c + 1) % cols);
      if (target != i) attrs[target].push_back({CoverName(i), DataType::kInt});
    }
  }
  for (size_t i = 0; i < n; ++i) {
    RelationDef def;
    def.source = "IS" + std::to_string(i);
    def.name = RelName(i);
    def.schema = Schema(std::move(attrs[i]));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        EVE_RETURN_IF_ERROR(AddLinkJc(
            &mkb, "JH" + std::to_string(r) + "_" + std::to_string(c),
            RelName(idx(r, c)), RelName(idx(r, c + 1)), hlink(r, c)));
      }
      if (r + 1 < rows) {
        EVE_RETURN_IF_ERROR(AddLinkJc(
            &mkb, "JV" + std::to_string(r) + "_" + std::to_string(c),
            RelName(idx(r, c)), RelName(idx(r + 1, c)), vlink(r, c)));
      }
      const size_t i = idx(r, c);
      const size_t target = idx(r, (c + 1) % cols);
      if (target != i) {
        EVE_RETURN_IF_ERROR(AddCover(&mkb, i, RelName(target), true));
      }
    }
  }
  return mkb;
}

Result<Mkb> MakeRandomMkb(const RandomMkbSpec& spec) {
  if (spec.num_relations < 2) {
    return Status::InvalidArgument("random MKB needs at least 2 relations");
  }
  std::mt19937_64 rng(spec.seed);
  const size_t n = spec.num_relations;

  // Plan edges first: a random spanning tree (each node attaches to a
  // random earlier node) plus extra random pairs.
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 1; i < n; ++i) {
    std::uniform_int_distribution<size_t> parent(0, i - 1);
    edges.emplace_back(parent(rng), i);
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool in_tree =
          std::find(edges.begin(), edges.end(), std::make_pair(i, j)) !=
          edges.end();
      if (!in_tree && coin(rng) < spec.extra_edge_probability) {
        edges.emplace_back(i, j);
      }
    }
  }

  // Covers: relation i's payload mirrored on a random edge-neighbor.
  std::vector<int> cover_on(n, -1);
  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (const auto& [a, b] : edges) {
      if (a == i) out.push_back(b);
      if (b == i) out.push_back(a);
    }
    return out;
  };
  for (size_t i = 0; i < n; ++i) {
    if (coin(rng) >= spec.cover_probability) continue;
    const std::vector<size_t> neighbors = neighbors_of(i);
    if (neighbors.empty()) continue;
    std::uniform_int_distribution<size_t> pick(0, neighbors.size() - 1);
    cover_on[i] = static_cast<int>(neighbors[pick(rng)]);
  }

  // Materialize attribute sets.
  std::vector<std::vector<AttributeDef>> attrs(n);
  for (size_t i = 0; i < n; ++i) {
    attrs[i].push_back({PayloadName(i), DataType::kInt});
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    const std::string link = "E" + std::to_string(e);
    attrs[edges[e].first].push_back({link, DataType::kInt});
    attrs[edges[e].second].push_back({link, DataType::kInt});
  }
  for (size_t i = 0; i < n; ++i) {
    if (cover_on[i] >= 0) {
      attrs[static_cast<size_t>(cover_on[i])].push_back(
          {CoverName(i), DataType::kInt});
    }
  }

  Mkb mkb;
  for (size_t i = 0; i < n; ++i) {
    RelationDef def;
    def.source = "IS" + std::to_string(i);
    def.name = RelName(i);
    def.schema = Schema(std::move(attrs[i]));
    EVE_RETURN_IF_ERROR(mkb.AddRelation(std::move(def)));
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    JoinConstraint jc;
    jc.id = "JE" + std::to_string(e);
    jc.lhs = RelName(edges[e].first);
    jc.rhs = RelName(edges[e].second);
    const std::string link = "E" + std::to_string(e);
    jc.clauses.push_back(Expr::ColumnsEqual(AttributeRef{jc.lhs, link},
                                            AttributeRef{jc.rhs, link}));
    EVE_RETURN_IF_ERROR(mkb.AddJoinConstraint(std::move(jc)));
  }
  for (size_t i = 0; i < n; ++i) {
    if (cover_on[i] >= 0) {
      EVE_RETURN_IF_ERROR(AddCover(
          &mkb, i, RelName(static_cast<size_t>(cover_on[i])), true));
    }
  }
  return mkb;
}

Result<ViewDefinition> MakeChainView(const Mkb& mkb, size_t start, size_t span,
                                     ViewExtent extent) {
  if (span < 1) return Status::InvalidArgument("span must be >= 1");
  std::vector<ViewSelectItem> select;
  std::vector<ViewRelation> from;
  std::vector<ViewCondition> where;
  for (size_t i = start; i < start + span; ++i) {
    const std::string rel = RelName(i);
    if (!mkb.catalog().HasRelation(rel)) {
      return Status::NotFound("chain relation missing: " + rel);
    }
    select.push_back(ViewSelectItem{
        Expr::Column(AttributeRef{rel, PayloadName(i)}), PayloadName(i),
        EvolutionParams{false, true}});
    from.push_back(ViewRelation{rel, EvolutionParams{false, true}});
    if (i > start) {
      where.push_back(ViewCondition{
          Expr::ColumnsEqual(AttributeRef{RelName(i - 1), LinkName(i - 1)},
                             AttributeRef{rel, LinkName(i - 1)}),
          EvolutionParams{false, true}});
    }
  }
  return ViewDefinition(
      "chain_view_" + std::to_string(start) + "_" + std::to_string(span),
      extent, std::move(select), std::move(from), std::move(where));
}

Result<ViewDefinition> MakeRandomConnectedView(const Mkb& mkb,
                                               std::mt19937_64* rng,
                                               size_t num_relations) {
  const std::vector<std::string> all = mkb.catalog().RelationNames();
  if (all.empty()) return Status::InvalidArgument("empty MKB");
  std::uniform_int_distribution<size_t> pick(0, all.size() - 1);

  // Start somewhere with at least one join constraint.
  std::string start;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::string candidate = all[pick(*rng)];
    if (!mkb.JoinConstraintsOf(candidate).empty()) {
      start = candidate;
      break;
    }
  }
  if (start.empty()) {
    return Status::FailedPrecondition("MKB has no joinable relation");
  }

  std::set<std::string> chosen{start};
  std::vector<ViewCondition> where;
  while (chosen.size() < num_relations) {
    // Collect frontier edges.
    std::vector<const JoinConstraint*> frontier;
    for (const std::string& rel : chosen) {
      for (const JoinConstraint* jc : mkb.JoinConstraintsOf(rel)) {
        if (chosen.count(jc->Other(rel)) == 0) frontier.push_back(jc);
      }
    }
    if (frontier.empty()) break;
    std::uniform_int_distribution<size_t> edge_pick(0, frontier.size() - 1);
    const JoinConstraint* jc = frontier[edge_pick(*rng)];
    chosen.insert(jc->lhs);
    chosen.insert(jc->rhs);
    for (const ExprPtr& clause : jc->clauses) {
      where.push_back(ViewCondition{clause, EvolutionParams{false, true}});
    }
  }

  std::vector<ViewSelectItem> select;
  std::vector<ViewRelation> from;
  for (const std::string& rel : chosen) {
    from.push_back(ViewRelation{rel, EvolutionParams{false, true}});
    const RelationDef& def = *mkb.catalog().GetRelation(rel).value();
    // Prefer the payload attribute; fall back to the first attribute.
    std::string attr = def.schema.attribute(0).name;
    for (const AttributeDef& a : def.schema.attributes()) {
      if (!a.name.empty() && a.name[0] == 'P') {
        attr = a.name;
        break;
      }
    }
    select.push_back(ViewSelectItem{Expr::Column(AttributeRef{rel, attr}),
                                    rel + "_" + attr,
                                    EvolutionParams{false, true}});
  }
  return ViewDefinition("random_view", ViewExtent::kAny, std::move(select),
                        std::move(from), std::move(where));
}

Result<std::vector<ViewDefinition>> MakeViewPool(const Mkb& mkb,
                                                 const ViewPoolSpec& spec) {
  if (spec.max_span < 1) {
    return Status::InvalidArgument("max_span must be >= 1");
  }
  if (spec.shard_skew < 0.0 || spec.shard_skew > 1.0) {
    return Status::InvalidArgument("shard_skew must be in [0, 1]");
  }
  // Chain length = contiguous R0..R{n-1} present in the catalog.
  size_t chain = 0;
  while (mkb.catalog().HasRelation(RelName(chain))) ++chain;
  if (chain == 0) {
    return Status::InvalidArgument("MKB has no chain relations R0..");
  }
  // Zipf CDF over chain positions: P(rank r) ∝ 1/(r+1)^s.
  std::vector<double> cdf(chain);
  double mass = 0.0;
  for (size_t r = 0; r < chain; ++r) {
    mass += 1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s);
    cdf[r] = mass;
  }
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<ViewDefinition> pool;
  pool.reserve(spec.num_views);
  for (size_t v = 0; v < spec.num_views; ++v) {
    const double target = unit(rng) * mass;
    const size_t anchor = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), target) - cdf.begin());
    const size_t span =
        std::min(1 + rng() % spec.max_span, chain - std::min(anchor, chain - 1));
    const size_t start = std::min(anchor, chain - span);

    std::string name = "wv" + std::to_string(v);
    if (spec.shard_skew > 0.0 && spec.skew_shards > 1 &&
        unit(rng) < spec.shard_skew) {
      // Hash placement cannot be steered, so steer the name: append the
      // first salt that hashes the view onto shard 0.
      for (uint64_t salt = 0; ShardOf(name, spec.skew_shards) != 0; ++salt) {
        name = "wv" + std::to_string(v) + "_s" + std::to_string(salt);
      }
    }

    std::vector<ViewSelectItem> select;
    std::vector<ViewRelation> from;
    std::vector<ViewCondition> where;
    for (size_t i = start; i < start + span; ++i) {
      select.push_back(ViewSelectItem{
          Expr::Column(AttributeRef{RelName(i), PayloadName(i)}),
          PayloadName(i), EvolutionParams{false, true}});
      from.push_back(ViewRelation{RelName(i), EvolutionParams{false, true}});
      if (i > start) {
        where.push_back(ViewCondition{
            Expr::ColumnsEqual(AttributeRef{RelName(i - 1), LinkName(i - 1)},
                               AttributeRef{RelName(i), LinkName(i - 1)}),
            EvolutionParams{false, true}});
      }
    }
    pool.push_back(ViewDefinition(std::move(name), ViewExtent::kAny,
                                  std::move(select), std::move(from),
                                  std::move(where)));
  }
  return pool;
}

Status PopulateSyntheticDatabase(const Mkb& mkb, Database* db,
                                 size_t rows_per_table, uint64_t seed) {
  EVE_RETURN_IF_ERROR(db->CreateAllTables(mkb.catalog()));
  std::mt19937_64 rng(seed);
  const int64_t domain =
      std::max<int64_t>(2, static_cast<int64_t>(rows_per_table) / 4);
  std::uniform_int_distribution<int64_t> value_dist(0, domain - 1);

  for (const std::string& rel : mkb.catalog().RelationNames()) {
    const RelationDef& def = *mkb.catalog().GetRelation(rel).value();
    for (size_t row = 0; row < rows_per_table; ++row) {
      Tuple tuple;
      tuple.reserve(def.schema.size());
      for (size_t i = 0; i < def.schema.size(); ++i) {
        tuple.push_back(Value::Int(value_dist(rng)));
      }
      EVE_RETURN_IF_ERROR(db->Insert(rel, std::move(tuple)));
    }
  }
  return Status::OK();
}

Status PopulateRelationSkewed(const Catalog& catalog,
                              const std::string& relation,
                              const SkewedDataSpec& spec, Database* db) {
  if (spec.value_domain <= 0) {
    return Status::InvalidArgument("value_domain must be positive");
  }
  if (spec.join_domain <= 0) {
    return Status::InvalidArgument("join_domain must be positive");
  }
  EVE_ASSIGN_OR_RETURN(const RelationDef* def, catalog.GetRelation(relation));
  if (!db->HasTable(relation)) {
    EVE_RETURN_IF_ERROR(db->CreateTable(catalog, relation));
  }
  EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(relation));
  table->Reserve(table->NumRows() + spec.rows);

  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int64_t> hot_key(0, spec.join_domain - 1);
  std::uniform_int_distribution<int64_t> uniform_value(0,
                                                       spec.value_domain - 1);
  // Relation-unique negative range for non-joining keys: distinct
  // relations' cold keys never collide with each other or the hot domain.
  const int64_t cold_base =
      -1 - static_cast<int64_t>(ShardOf(relation, 1u << 20)) *
               static_cast<int64_t>(spec.rows + 1);

  const size_t width = def->schema.size();
  for (size_t row = 0; row < spec.rows; ++row) {
    Tuple tuple;
    tuple.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      const std::string& name = def->schema.attribute(i).name;
      if (!name.empty() && name[0] == 'L') {
        const bool hot = unit(rng) < spec.join_selectivity;
        tuple.push_back(Value::Int(
            hot ? hot_key(rng) : cold_base - static_cast<int64_t>(row)));
      } else if (spec.value_skew > 0.0) {
        const double u = unit(rng);
        const int64_t v = static_cast<int64_t>(
            static_cast<double>(spec.value_domain) *
            std::pow(u, 1.0 + spec.value_skew));
        tuple.push_back(
            Value::Int(std::min(v, spec.value_domain - 1)));
      } else {
        tuple.push_back(Value::Int(uniform_value(rng)));
      }
    }
    table->InsertUnchecked(std::move(tuple));
  }
  return Status::OK();
}

}  // namespace eve
