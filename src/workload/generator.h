// Synthetic workload generators: parameterized MKB topologies (chain,
// star, grid), cover placement at controlled join distance, random
// connected views, and database states — the drivers for property tests
// and the E6/E7/E9 benchmarks.
//
// Naming scheme for generated elements (all integer-typed):
//   relation  R<i>            (source "IS<i>")
//   link      L<i>            shared by the two endpoint relations of an
//                             edge; JC "JL<i>": endpoints agree on L<i>
//   payload   P<i>            one payload attribute per relation
//   cover     C<i>            mirror of R<i>.P<i> on another relation,
//                             with identity F constraint "FC<i>"

#ifndef EVE_WORKLOAD_GENERATOR_H_
#define EVE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "esql/view_definition.h"
#include "mkb/mkb.h"
#include "storage/database.h"

namespace eve {

struct ChainMkbSpec {
  size_t length = 10;
  // Adds JCs between R<i> and R<i+2> so deleting an interior relation
  // leaves the graph connected.
  bool skip_edges = true;
  // For every relation R<i>, place the mirror C<i> of its payload on the
  // relation `cover_distance` positions to the right (clamped); 0 disables
  // covers.
  size_t cover_distance = 1;
  // Extra payload attributes per relation beyond P<i>.
  size_t extra_attributes = 2;
  // Attach a PC constraint "π(cover side) ⊇ π(covered side)" for every
  // cover, justifying superset rewritings.
  bool pc_constraints = true;
};

// Chain R0 — R1 — ... — R{n-1}.
Result<Mkb> MakeChainMkb(const ChainMkbSpec& spec);

// Star: hub R0 joined to spokes R1..R{n}; every spoke payload mirrored on
// the hub and the hub payload mirrored on spoke R1.
Result<Mkb> MakeStarMkb(size_t num_spokes);

// Grid of rows x cols relations, adjacent horizontally and vertically;
// covers mirror each payload on the right neighbor (wrapping within the
// row).
Result<Mkb> MakeGridMkb(size_t rows, size_t cols);

// Cover fan: the enumeration-benchmark topology. A victim relation R0
// (payload P0, link L0) joins an anchor A0, which heads a backbone chain
// B1..B<m>. Cover i of R0.P0 sits on B<i> — at join distance i from the
// anchor — so after DELETE RELATION R0 the candidate rewritings have
// strictly increasing join widths (cover i costs an i-relation chain).
// R0.L0 is covered on A0 itself (width-neutral), and every cover carries a
// PC constraint justifying the rewriting extent; path Steiner nodes are
// justified by the same constraints. `detours` extra relations hang off
// the anchor with no PC constraints: they multiply the tree space with
// weakly-ranked (extent-unknown) candidates without adding good ones.
struct CoverFanMkbSpec {
  size_t num_covers = 8;  // backbone length m; one cover per node
  size_t detours = 0;     // PC-less relations joined to the anchor
  bool equal_pcs = true;  // EQUAL (vs SUPERSET) cover PC constraints
};

Result<Mkb> MakeCoverFanMkb(const CoverFanMkbSpec& spec);

// The victim view over a cover-fan MKB:
//   SELECT R0.P0, A0.PA FROM R0, A0 WHERE R0.L0 = A0.L0
// with every component (dispensable=false, replaceable=true).
Result<ViewDefinition> MakeCoverFanView(const Mkb& mkb);

struct RandomMkbSpec {
  size_t num_relations = 12;
  // Probability of a join constraint between each relation pair, on top of
  // a random spanning tree that keeps the federation connected.
  double extra_edge_probability = 0.15;
  // Probability that a relation's payload gets a cover on one of its
  // join-neighbors (with a SUPERSET PC constraint).
  double cover_probability = 0.7;
  uint64_t seed = 1;
};

// A connected random-graph federation: spanning tree + extra edges, link
// attributes per edge, one payload per relation, covers per spec. The
// same spec (incl. seed) always builds the same MKB.
Result<Mkb> MakeRandomMkb(const RandomMkbSpec& spec);

// A view over the chain relations R<start>..R<start+span-1>:
//   SELECT payloads FROM those relations WHERE the chain link equalities.
// Every component gets (dispensable=false, replaceable=true); VE = `extent`.
Result<ViewDefinition> MakeChainView(const Mkb& mkb, size_t start, size_t span,
                                     ViewExtent extent = ViewExtent::kAny);

// A random connected view: starts at a random relation and grows along
// randomly chosen join-constraint edges; SELECTs each relation's payload.
Result<ViewDefinition> MakeRandomConnectedView(const Mkb& mkb,
                                               std::mt19937_64* rng,
                                               size_t num_relations);

// Registration-workload generator for the sharded serving core: a pool of
// `num_views` small chain views ("wv<i>...") over a chain MKB, with
// relation popularity drawn zipfian (rank = chain position, exponent
// `zipf_s`; 0 = uniform) so a few hot relations anchor most views — the
// realistic shape for affected-set experiments. `shard_skew` optionally
// forces that fraction of the views onto shard 0 of a `skew_shards`-way
// partition by searching a name salt until the shard hash lands there
// (hash placement itself cannot be steered), modeling a pathologically
// imbalanced pool. Deterministic per spec (incl. seed); sized for
// RegisterViewsBulk million-view loads.
struct ViewPoolSpec {
  size_t num_views = 1000;
  double zipf_s = 1.0;
  // Views span 1..max_span chain relations (joined along the chain);
  // span-1 views bind cheapest, which is what bulk loads want.
  size_t max_span = 2;
  double shard_skew = 0.0;  // 0 disables the salt search
  size_t skew_shards = 1;
  uint64_t seed = 1;
};

Result<std::vector<ViewDefinition>> MakeViewPool(const Mkb& mkb,
                                                 const ViewPoolSpec& spec);

// Fills every relation with `rows_per_table` tuples; link attributes draw
// from a small domain so joins hit, cover attributes C<i> replicate the
// covered payload domain so F constraints are statistically consistent.
Status PopulateSyntheticDatabase(const Mkb& mkb, Database* db,
                                 size_t rows_per_table, uint64_t seed);

// Per-relation bulk-data spec for executor-scale workloads (the
// bench_executor 10M-row sources). Deterministic: the same spec (incl.
// seed) always produces the same rows, in the same order.
struct SkewedDataSpec {
  size_t rows = 1000;
  // Non-link attributes draw from [0, value_domain). skew 0 = uniform;
  // skew > 0 concentrates mass near 0 via inverse-power sampling
  // (floor(domain * u^(1+skew)) for uniform u), approximating a zipfian
  // popularity curve without per-draw harmonic sums.
  int64_t value_domain = 1000;
  double value_skew = 0.0;
  // Attributes whose name starts with 'L' are join keys: a row's key is
  // drawn from the shared hot domain [0, join_domain) with probability
  // join_selectivity, else it gets a relation-unique negative value that
  // can never match another relation — so the fraction of rows surviving
  // an equi-join is directly controlled.
  int64_t join_domain = 64;
  double join_selectivity = 1.0;
  uint64_t seed = 1;
};

// Fills `relation` (creating its table if absent) with spec.rows tuples as
// above. Integer-typed schemas only (all generator MKBs qualify).
Status PopulateRelationSkewed(const Catalog& catalog,
                              const std::string& relation,
                              const SkewedDataSpec& spec, Database* db);

}  // namespace eve

#endif  // EVE_WORKLOAD_GENERATOR_H_
