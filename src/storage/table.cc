#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/str_util.h"

namespace eve {

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

}  // namespace

Status Table::Insert(Tuple tuple) {
  EVE_RETURN_IF_ERROR(ValidateTuple(schema_, tuple));
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  const auto idx = schema_.IndexOf(name);
  if (!idx) return Status::NotFound("column not found: " + name);
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*idx));
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  for (Tuple& row : rows_) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(*idx));
  }
  return Status::OK();
}

Status Table::RenameColumn(const std::string& name,
                           const std::string& new_name) {
  const auto idx = schema_.IndexOf(name);
  if (!idx) return Status::NotFound("column not found: " + name);
  if (name == new_name) return Status::OK();
  if (schema_.Contains(new_name)) {
    return Status::AlreadyExists("column already exists: " + new_name);
  }
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs[*idx].name = new_name;
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  return Status::OK();
}

Status Table::AddColumn(AttributeDef attr) {
  if (schema_.Contains(attr.name)) {
    return Status::AlreadyExists("column already exists: " + attr.name);
  }
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs.push_back(std::move(attr));
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  for (Tuple& row : rows_) {
    row.push_back(Value::Null());
  }
  return Status::OK();
}

void Table::Deduplicate() {
  std::sort(rows_.begin(), rows_.end(), TupleLess);
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Table::IsSubsetOf(const Table& other) const {
  std::vector<Tuple> mine = rows_;
  std::vector<Tuple> theirs = other.rows_;
  std::sort(mine.begin(), mine.end(), TupleLess);
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  std::sort(theirs.begin(), theirs.end(), TupleLess);
  return std::includes(theirs.begin(), theirs.end(), mine.begin(), mine.end(),
                       TupleLess);
}

bool Table::SetEquals(const Table& other) const {
  return IsSubsetOf(other) && other.IsSubsetOf(*this);
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const AttributeDef& attr : schema_.attributes()) {
    header.push_back(attr.name);
  }
  os << "| " << Join(header, " | ") << " |\n";
  size_t shown = 0;
  for (const Tuple& row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    os << "| " << Join(cells, " | ") << " |\n";
  }
  os << "(" << rows_.size() << " rows)\n";
  return os.str();
}

}  // namespace eve
