#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

#include "common/str_util.h"

namespace eve {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const AttributeDef& attr : schema_.attributes()) {
    columns_.push_back(std::make_shared<ColumnChunk>(attr.type));
  }
}

Table::Table(const Table& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      num_rows_(other.num_rows_),
      dedup_sorted_(other.dedup_sorted_) {}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  columns_ = other.columns_;
  num_rows_ = other.num_rows_;
  dedup_sorted_ = other.dedup_sorted_;
  InvalidateRowCache();
  return *this;
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      columns_(std::move(other.columns_)),
      num_rows_(other.num_rows_),
      dedup_sorted_(other.dedup_sorted_) {}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  columns_ = std::move(other.columns_);
  num_rows_ = other.num_rows_;
  dedup_sorted_ = other.dedup_sorted_;
  InvalidateRowCache();
  return *this;
}

Table Table::FromColumns(
    Schema schema, std::vector<std::shared_ptr<const ColumnChunk>> columns,
    size_t num_rows) {
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = num_rows;
  assert(t.columns_.size() == t.schema_.size());
  return t;
}

const std::vector<Tuple>& Table::rows() const {
  std::lock_guard<std::mutex> lock(row_cache_mu_);
  if (!row_cache_valid_.load(std::memory_order_relaxed)) {
    row_cache_.clear();
    row_cache_.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      Tuple row;
      row.reserve(columns_.size());
      for (const auto& col : columns_) row.push_back(col->GetValue(r));
      row_cache_.push_back(std::move(row));
    }
    row_cache_valid_.store(true, std::memory_order_relaxed);
  }
  return row_cache_;
}

void Table::InvalidateRowCache() {
  if (!row_cache_valid_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(row_cache_mu_);
  row_cache_valid_.store(false, std::memory_order_relaxed);
  row_cache_.clear();
}

void Table::InvalidateDerived() {
  dedup_sorted_ = false;
  InvalidateRowCache();
}

ColumnChunk& Table::MutableColumn(size_t i) {
  if (columns_[i].use_count() > 1) {
    columns_[i] = std::make_shared<ColumnChunk>(*columns_[i]);
  }
  // Safe: this table is the sole owner now.
  return const_cast<ColumnChunk&>(*columns_[i]);
}

Status Table::Insert(Tuple tuple) {
  EVE_RETURN_IF_ERROR(ValidateTuple(schema_, tuple));
  InsertUnchecked(std::move(tuple));
  return Status::OK();
}

void Table::InsertUnchecked(Tuple tuple) {
  assert(tuple.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    MutableColumn(i).Append(tuple[i]);
  }
  ++num_rows_;
  InvalidateDerived();
}

void Table::Clear() {
  for (size_t i = 0; i < columns_.size(); ++i) {
    // Fresh chunks instead of Clear() so shared readers keep their data.
    columns_[i] =
        std::make_shared<ColumnChunk>(schema_.attribute(i).type);
  }
  num_rows_ = 0;
  InvalidateDerived();
}

void Table::Reserve(size_t rows) {
  for (size_t i = 0; i < columns_.size(); ++i) MutableColumn(i).Reserve(rows);
}

Status Table::DropColumn(const std::string& name) {
  const auto idx = schema_.IndexOf(name);
  if (!idx) return Status::NotFound("column not found: " + name);
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*idx));
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(*idx));
  InvalidateDerived();
  return Status::OK();
}

Status Table::RenameColumn(const std::string& name,
                           const std::string& new_name) {
  const auto idx = schema_.IndexOf(name);
  if (!idx) return Status::NotFound("column not found: " + name);
  if (name == new_name) return Status::OK();
  if (schema_.Contains(new_name)) {
    return Status::AlreadyExists("column already exists: " + new_name);
  }
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs[*idx].name = new_name;
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  // Column data is untouched; only the row-cache header is unaffected (the
  // cache stores values, not names), so it can survive a rename.
  return Status::OK();
}

Status Table::AddColumn(AttributeDef attr) {
  if (schema_.Contains(attr.name)) {
    return Status::AlreadyExists("column already exists: " + attr.name);
  }
  DataType type = attr.type;
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs.push_back(std::move(attr));
  EVE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(attrs)));
  columns_.push_back(std::make_shared<ColumnChunk>(
      ColumnChunk::MakeAllNull(type, num_rows_)));
  InvalidateDerived();
  return Status::OK();
}

int Table::CompareTableRows(const Table& a, size_t ra, const Table& b,
                            size_t rb) {
  const size_t n = std::min(a.columns_.size(), b.columns_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a.columns_[i]->CompareRows(ra, *b.columns_[i], rb);
    if (c != 0) return c;
  }
  // TupleLess tiebreak: shorter tuple (fewer columns) sorts first.
  return a.columns_.size() < b.columns_.size()
             ? -1
             : (a.columns_.size() > b.columns_.size() ? 1 : 0);
}

bool Table::TableRowsEqual(const Table& a, size_t ra, const Table& b,
                           size_t rb) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (!a.columns_[i]->RowsEqual(ra, *b.columns_[i], rb)) return false;
  }
  return true;
}

std::vector<uint32_t> Table::SortedRowIndex(const Table& t, bool unique) {
  std::vector<uint32_t> idx(t.num_rows_);
  std::iota(idx.begin(), idx.end(), 0u);
  if (!t.dedup_sorted_) {
    std::sort(idx.begin(), idx.end(), [&t](uint32_t a, uint32_t b) {
      return CompareTableRows(t, a, t, b) < 0;
    });
    if (unique) {
      idx.erase(std::unique(idx.begin(), idx.end(),
                            [&t](uint32_t a, uint32_t b) {
                              return TableRowsEqual(t, a, t, b);
                            }),
                idx.end());
    }
  }
  return idx;
}

void Table::GatherInPlace(const std::vector<uint32_t>& rows) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i] =
        std::make_shared<ColumnChunk>(columns_[i]->Gather(rows));
  }
  num_rows_ = rows.size();
}

void Table::Deduplicate() {
  if (dedup_sorted_) return;
  std::vector<uint32_t> idx = SortedRowIndex(*this, /*unique=*/true);
  // Skip the rebuild when already sorted+unique in place.
  bool identity = idx.size() == num_rows_;
  if (identity) {
    for (size_t i = 0; i < idx.size(); ++i) {
      if (idx[i] != i) {
        identity = false;
        break;
      }
    }
  }
  if (!identity) GatherInPlace(idx);
  InvalidateDerived();
  dedup_sorted_ = true;
}

bool Table::IsSubsetOf(const Table& other) const {
  std::vector<uint32_t> mine = SortedRowIndex(*this, /*unique=*/true);
  std::vector<uint32_t> theirs = SortedRowIndex(other, /*unique=*/false);
  // Two-pointer std::includes over the sorted index views.
  size_t j = 0;
  for (uint32_t r : mine) {
    while (j < theirs.size() &&
           CompareTableRows(other, theirs[j], *this, r) < 0) {
      ++j;
    }
    if (j == theirs.size() ||
        CompareTableRows(other, theirs[j], *this, r) != 0) {
      return false;
    }
  }
  return true;
}

bool Table::SetEquals(const Table& other) const {
  return IsSubsetOf(other) && other.IsSubsetOf(*this);
}

Table Table::SortedUnion(const Table& a, const Table& b) {
  assert(a.dedup_sorted_ && b.dedup_sorted_);
  Table out(a.schema_);
  if (b.num_rows_ == 0) {
    out = a;
    return out;
  }
  if (a.num_rows_ == 0) {
    out.columns_ = b.columns_;
    out.num_rows_ = b.num_rows_;
    out.dedup_sorted_ = true;
    return out;
  }
  out.Reserve(a.num_rows_ + b.num_rows_);
  size_t i = 0, j = 0;
  auto append_row = [&out](const Table& src, size_t r) {
    for (size_t c = 0; c < out.columns_.size(); ++c) {
      out.MutableColumn(c).AppendFrom(*src.columns_[c], r);
    }
    ++out.num_rows_;
  };
  while (i < a.num_rows_ && j < b.num_rows_) {
    int c = CompareTableRows(a, i, b, j);
    if (c < 0) {
      append_row(a, i++);
    } else if (c > 0) {
      append_row(b, j++);
    } else {
      // Tied under the sort order: emit both unless strictly equal (the
      // historical unique() used strict Value equality).
      append_row(a, i);
      if (!TableRowsEqual(a, i, b, j)) append_row(b, j);
      ++i;
      ++j;
    }
  }
  while (i < a.num_rows_) append_row(a, i++);
  while (j < b.num_rows_) append_row(b, j++);
  out.dedup_sorted_ = true;
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const AttributeDef& attr : schema_.attributes()) {
    header.push_back(attr.name);
  }
  os << "| " << Join(header, " | ") << " |\n";
  for (size_t r = 0; r < num_rows_; ++r) {
    if (r >= max_rows) {
      os << "... (" << num_rows_ - max_rows << " more rows)\n";
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& col : columns_) cells.push_back(col->GetValue(r).ToString());
    os << "| " << Join(cells, " | ") << " |\n";
  }
  os << "(" << num_rows_ << " rows)\n";
  return os.str();
}

}  // namespace eve
