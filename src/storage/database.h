// Database: the federation's materialized state — one Table per catalog
// relation. Substitutes for the paper's live autonomous ISs (see DESIGN.md
// substitutions); capability changes are applied through eve/.

#ifndef EVE_STORAGE_DATABASE_H_
#define EVE_STORAGE_DATABASE_H_

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/table.h"

namespace eve {

class Database {
 public:
  Database() = default;

  // Creates an empty table for `relation` using the catalog schema.
  Status CreateTable(const Catalog& catalog, const std::string& relation);

  // Creates empty tables for every catalog relation that has none yet.
  Status CreateAllTables(const Catalog& catalog);

  Status DropTable(const std::string& relation);

  Status RenameTable(const std::string& relation,
                     const std::string& new_name);

  bool HasTable(const std::string& relation) const {
    return tables_.count(relation) > 0;
  }

  Result<Table*> GetTable(const std::string& relation);
  Result<const Table*> GetTable(const std::string& relation) const;

  // Convenience: inserts a row into `relation`, validating its schema.
  Status Insert(const std::string& relation, Tuple tuple);

  size_t NumTables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace eve

#endif  // EVE_STORAGE_DATABASE_H_
