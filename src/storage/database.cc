#include "storage/database.h"

namespace eve {

Status Database::CreateTable(const Catalog& catalog,
                             const std::string& relation) {
  if (tables_.count(relation) > 0) {
    return Status::AlreadyExists("table already exists: " + relation);
  }
  EVE_ASSIGN_OR_RETURN(const RelationDef* def, catalog.GetRelation(relation));
  tables_.emplace(relation, Table(def->schema));
  return Status::OK();
}

Status Database::CreateAllTables(const Catalog& catalog) {
  for (const std::string& relation : catalog.RelationNames()) {
    if (!HasTable(relation)) {
      EVE_RETURN_IF_ERROR(CreateTable(catalog, relation));
    }
  }
  return Status::OK();
}

Status Database::DropTable(const std::string& relation) {
  if (tables_.erase(relation) == 0) {
    return Status::NotFound("table not found: " + relation);
  }
  return Status::OK();
}

Status Database::RenameTable(const std::string& relation,
                             const std::string& new_name) {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + relation);
  }
  if (relation == new_name) return Status::OK();
  if (tables_.count(new_name) > 0) {
    return Status::AlreadyExists("table already exists: " + new_name);
  }
  Table table = std::move(it->second);
  tables_.erase(it);
  tables_.emplace(new_name, std::move(table));
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& relation) {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + relation);
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(const std::string& relation) const {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + relation);
  }
  return &it->second;
}

Status Database::Insert(const std::string& relation, Tuple tuple) {
  EVE_ASSIGN_OR_RETURN(Table * table, GetTable(relation));
  return table->Insert(std::move(tuple));
}

}  // namespace eve
