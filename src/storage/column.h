// ColumnChunk: one typed column vector of a relation extent, with a packed
// null bitmap. The columnar substrate under Table (storage/table.h) and the
// vectorized executor (algebra/vectorized.h).
//
// Representation contract: a chunk declared with column type T stores its
// non-null cells in a flat std::vector of T's physical type as long as every
// appended Value is EXACTLY of type T (no widening — Value equality is
// strict, and extent byte-identity tests depend on values round-tripping
// unchanged). The first append of a differently-typed value demotes the
// chunk to a boxed std::vector<Value> representation that preserves the
// exact values; all operators keep working, just slower. Homogeneous
// columns — every real workload — never leave the typed fast path.

#ifndef EVE_STORAGE_COLUMN_H_
#define EVE_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace eve {

class ColumnChunk {
 public:
  ColumnChunk() = default;
  explicit ColumnChunk(DataType type) : type_(type) {}

  // An all-null chunk of `rows` cells with no materialized payload (O(1));
  // how Table::AddColumn stays constant-time on huge extents.
  static ColumnChunk MakeAllNull(DataType type, size_t rows) {
    ColumnChunk c(type);
    c.null_prefix_ = rows;
    c.size_ = rows;
    return c;
  }

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  bool boxed() const { return boxed_; }
  // Rows [0, null_prefix()) are implicitly NULL and carry no payload.
  size_t null_prefix() const { return null_prefix_; }
  // True when the typed borrow vectors below index directly by row id —
  // the precondition for vectorized fast paths.
  bool plain() const { return !boxed_ && null_prefix_ == 0; }

  bool IsNull(size_t row) const {
    if (row < null_prefix_) return true;
    const size_t p = row - null_prefix_;
    return (null_words_[p >> 6] >> (p & 63)) & 1;
  }

  // Materializes the cell as a Value (exactly the Value that was appended).
  Value GetValue(size_t row) const;

  // Appends a cell. Values of exactly the declared type (or NULL) stay on
  // the typed path; anything else demotes the chunk to boxed storage.
  void Append(const Value& value);
  void AppendNull();
  // Appends `other`'s cell `row` (typed-to-typed copies skip Value boxing).
  void AppendFrom(const ColumnChunk& other, size_t row);

  void Reserve(size_t rows);
  void Clear();

  // Three-way row comparison mirroring Value::operator< / operator==
  // exactly (NULL sorts first and compares equal to NULL; numeric values
  // compare widened; then bool < int/double < string < date by variant
  // rank). Used for columnar sort/dedup/containment so results are
  // byte-identical to the historical row-store TupleLess path.
  int CompareRows(size_t row, const ColumnChunk& other,
                  size_t other_row) const;

  // Strict cell equality (Value::operator== semantics: same type, same
  // value; NULL equals NULL).
  bool RowsEqual(size_t row, const ColumnChunk& other,
                 size_t other_row) const;

  // 64-bit cell hash with Compare()-consistent normalization: int cells
  // hash as their double widening, so an int and a double that compare
  // equal hash equal (join keys mix the two). NULL hashes to a fixed tag.
  uint64_t HashRow(size_t row) const;

  // Gathers `rows` into a fresh chunk of the same declared type.
  ColumnChunk Gather(const std::vector<uint32_t>& rows) const;

  // Typed borrows for vectorized operators. Valid only when plain() and
  // type() matches; cells at null rows hold unspecified defaults.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  // Dates store as days-since-epoch.
  const std::vector<int64_t>& dates() const { return ints_; }

 private:
  void Demote();  // switch to boxed storage, preserving exact values
  void PushNullBit(bool is_null);
  // Physical payload/bitmap index of logical row `row`.
  size_t Phys(size_t row) const { return row - null_prefix_; }

  DataType type_ = DataType::kNull;
  size_t size_ = 0;
  size_t null_prefix_ = 0;
  bool boxed_ = false;
  // One bit per row past the null prefix, little-endian within each 64-bit
  // word; 1 = NULL.
  std::vector<uint64_t> null_words_;
  // Exactly one of these is active: the typed vector matching type_ (dates
  // share ints_ as days-since-epoch), or boxed_ values.
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
  std::vector<Value> values_;
};

}  // namespace eve

#endif  // EVE_STORAGE_COLUMN_H_
