// Table: an in-memory relation extent with a schema. Used to evaluate views
// so legal rewritings can be checked semantically (extent containment),
// not just syntactically.

#ifndef EVE_STORAGE_TABLE_H_
#define EVE_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

namespace eve {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  // Appends `tuple` after validating it against the schema.
  Status Insert(Tuple tuple);

  // Appends without validation (trusted internal producers only).
  void InsertUnchecked(Tuple tuple) { rows_.push_back(std::move(tuple)); }

  void Clear() { rows_.clear(); }

  // Schema evolution mirroring IS capability changes: removes the named
  // column (and its values from every row).
  Status DropColumn(const std::string& name);

  // Renames a column in place.
  Status RenameColumn(const std::string& name, const std::string& new_name);

  // Appends a column filled with NULLs.
  Status AddColumn(AttributeDef attr);

  // Set semantics helpers (relational extents are sets in the paper's
  // model): sorts and removes duplicate rows in place.
  void Deduplicate();

  // True if every row of *this appears in `other` (bag-to-set containment:
  // both sides deduplicated first). Schemas must match positionally by type.
  bool IsSubsetOf(const Table& other) const;

  // True if both tables hold the same set of rows.
  bool SetEquals(const Table& other) const;

  // Renders header + rows, for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace eve

#endif  // EVE_STORAGE_TABLE_H_
