// Table: an in-memory relation extent with a schema. Used to evaluate views
// so legal rewritings can be checked semantically (extent containment),
// not just syntactically.
//
// Storage is columnar: one ColumnChunk per attribute, shared across Table
// copies via shared_ptr with copy-on-write (a Table copy is O(#columns);
// columns are cloned only when mutated). Schema-evolution ops
// (DropColumn/RenameColumn/AddColumn) are column-pointer operations, not
// per-row splices. The historical row API (`rows()`, Insert of Tuples)
// remains as a facade: `rows()` materializes a row cache lazily (guarded by
// a mutex so concurrent const readers are safe) and every mutation
// invalidates it. New code on hot paths should use the columnar accessors.

#ifndef EVE_STORAGE_TABLE_H_
#define EVE_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "types/schema.h"

namespace eve {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  // Copies share column chunks (copy-on-write); the row cache is not
  // copied.
  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const Schema& schema() const { return schema_; }

  // Legacy row facade: materializes (and caches) all rows as Tuples.
  // Thread-safe for concurrent const callers; invalidated by any mutation.
  const std::vector<Tuple>& rows() const;

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  // Columnar accessors. `column(i)` follows schema attribute order.
  const ColumnChunk& column(size_t i) const { return *columns_[i]; }
  const std::shared_ptr<const ColumnChunk>& column_handle(size_t i) const {
    return columns_[i];
  }

  // Builds a table from pre-built column handles (all of length
  // `num_rows`); the executor's zero-copy projection path.
  static Table FromColumns(
      Schema schema,
      std::vector<std::shared_ptr<const ColumnChunk>> columns,
      size_t num_rows);

  // Appends `tuple` after validating it against the schema.
  Status Insert(Tuple tuple);

  // Appends without validation (trusted internal producers only). The
  // tuple arity must match the schema.
  void InsertUnchecked(Tuple tuple);

  void Clear();

  void Reserve(size_t rows);

  // Schema evolution mirroring IS capability changes: removes the named
  // column. O(1): drops the column pointer.
  Status DropColumn(const std::string& name);

  // Renames a column in place. O(1): schema-only.
  Status RenameColumn(const std::string& name, const std::string& new_name);

  // Appends a column filled with NULLs. O(1): the new chunk stores the
  // all-null run as a prefix length, not materialized cells.
  Status AddColumn(AttributeDef attr);

  // Set semantics helpers (relational extents are sets in the paper's
  // model): sorts rows (TupleLess order: columns left-to-right, NULLs
  // first) and removes duplicate rows in place. Tables that went through
  // Deduplicate stay dedup-sorted until the next mutation, which makes
  // SortedUnion / IsSubsetOf on them linear.
  void Deduplicate();

  // True if every row of *this appears in `other` (bag-to-set containment:
  // both sides deduplicated first). Schemas must match positionally by type.
  bool IsSubsetOf(const Table& other) const;

  // True if both tables hold the same set of rows.
  bool SetEquals(const Table& other) const;

  // Set-union of two dedup-sorted tables (each must have been
  // Deduplicate()d and not mutated since) via a linear merge. The result
  // carries `a`'s schema and is dedup-sorted.
  static Table SortedUnion(const Table& a, const Table& b);

  // True if Deduplicate() ran and no mutation followed (rows are sorted
  // and unique).
  bool IsDedupSorted() const { return dedup_sorted_; }

  // Renders header + rows, for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  // Column for in-place mutation; clones the chunk first if it is shared
  // with another table (copy-on-write).
  ColumnChunk& MutableColumn(size_t i);

  void InvalidateRowCache();
  void InvalidateDerived();  // drop row cache + sortedness flag

  // Three-way row comparison across all columns (TupleLess semantics).
  static int CompareTableRows(const Table& a, size_t ra, const Table& b,
                              size_t rb);
  static bool TableRowsEqual(const Table& a, size_t ra, const Table& b,
                             size_t rb);
  // Row indexes of `t` in sorted order (optionally unique).
  static std::vector<uint32_t> SortedRowIndex(const Table& t, bool unique);
  // Rebuilds *this to hold exactly `rows` (by index) of *this.
  void GatherInPlace(const std::vector<uint32_t>& rows);

  Schema schema_;
  std::vector<std::shared_ptr<const ColumnChunk>> columns_;
  size_t num_rows_ = 0;
  bool dedup_sorted_ = false;

  mutable std::mutex row_cache_mu_;
  // Atomic so mutators can skip the lock when no cache exists (the common
  // case on bulk loads).
  mutable std::atomic<bool> row_cache_valid_{false};
  mutable std::vector<Tuple> row_cache_;
};

}  // namespace eve

#endif  // EVE_STORAGE_TABLE_H_
