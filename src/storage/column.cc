#include "storage/column.h"

#include <cassert>
#include <cstring>
#include <functional>

namespace eve {

namespace {

// Variant rank of a Value, matching the std::variant alternative order in
// types/value.h (monostate, bool, int64_t, double, string, Date). Used for
// the operator< fallback when Compare() says kIncomparable.
int RankOf(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt:
      return 2;
    case DataType::kDouble:
      return 3;
    case DataType::kString:
      return 4;
    case DataType::kDate:
      return 5;
  }
  return 0;
}

int Sign(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

int SignI(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

// Three-way comparison of two Values with exactly the semantics of
// Value::operator< (Compare() first; on kNull/kIncomparable fall back to
// variant rank, so NULL sorts first and NULL == NULL).
int CompareValues(const Value& a, const Value& b) {
  switch (Compare(a, b)) {
    case CompareResult::kLess:
      return -1;
    case CompareResult::kEqual:
      return 0;
    case CompareResult::kGreater:
      return 1;
    default:
      return SignI(RankOf(a.type()), RankOf(b.type()));
  }
}

uint64_t HashDouble(double d) {
  // +0.0 and -0.0 compare equal; normalize so they hash equal too.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // splitmix64 finalizer.
  bits ^= bits >> 30;
  bits *= 0xbf58476d1ce4e5b9ULL;
  bits ^= bits >> 27;
  bits *= 0x94d049bb133111ebULL;
  bits ^= bits >> 31;
  return bits;
}

constexpr uint64_t kNullHash = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kTrueHash = 0x2545f4914f6cdd1dULL;
constexpr uint64_t kFalseHash = 0x1234567887654321ULL;
constexpr uint64_t kDateTag = 0xda942042e4dd58b5ULL;

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return kNullHash;
    case DataType::kBool:
      return v.bool_value() ? kTrueHash : kFalseHash;
    case DataType::kInt:
      // Ints hash as their double widening so cross-type numeric equality
      // (Compare says kEqual) implies hash equality.
      return HashDouble(static_cast<double>(v.int_value()));
    case DataType::kDouble:
      return HashDouble(v.double_value());
    case DataType::kString:
      return std::hash<std::string>{}(v.string_value());
    case DataType::kDate:
      return HashDouble(
                 static_cast<double>(v.date_value().days_since_epoch())) ^
             kDateTag;
  }
  return kNullHash;
}

}  // namespace

Value ColumnChunk::GetValue(size_t row) const {
  assert(row < size_);
  if (IsNull(row)) return Value::Null();
  if (boxed_) return values_[row];
  const size_t p = Phys(row);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bools_[p] != 0);
    case DataType::kInt:
      return Value::Int(ints_[p]);
    case DataType::kDouble:
      return Value::Double(doubles_[p]);
    case DataType::kString:
      return Value::String(strings_[p]);
    case DataType::kDate:
      return Value::MakeDate(Date(ints_[p]));
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnChunk::PushNullBit(bool is_null) {
  const size_t p = size_ - null_prefix_;
  size_t word = p >> 6;
  if (word >= null_words_.size()) null_words_.push_back(0);
  if (is_null) null_words_[word] |= (1ULL << (p & 63));
}

void ColumnChunk::Demote() {
  if (boxed_) return;
  values_.clear();
  values_.reserve(size_);
  // Boxed storage indexes by row directly, so the null prefix collapses
  // into the bitmap.
  std::vector<uint64_t> words((size_ + 63) / 64, 0);
  for (size_t i = 0; i < size_; ++i) {
    if (IsNull(i)) words[i >> 6] |= (1ULL << (i & 63));
    values_.push_back(GetValue(i));
  }
  null_words_ = std::move(words);
  null_prefix_ = 0;
  ints_.clear();
  ints_.shrink_to_fit();
  doubles_.clear();
  doubles_.shrink_to_fit();
  strings_.clear();
  strings_.shrink_to_fit();
  bools_.clear();
  bools_.shrink_to_fit();
  boxed_ = true;
}

void ColumnChunk::AppendNull() {
  if (!boxed_ && size_ == null_prefix_) {
    // Still an all-null run: extend the prefix, no payload.
    ++null_prefix_;
    ++size_;
    return;
  }
  PushNullBit(true);
  if (boxed_) {
    values_.push_back(Value::Null());
  } else {
    switch (type_) {
      case DataType::kBool:
        bools_.push_back(0);
        break;
      case DataType::kInt:
      case DataType::kDate:
        ints_.push_back(0);
        break;
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kString:
        strings_.emplace_back();
        break;
      case DataType::kNull:
        break;  // all-null column: bitmap alone carries the data
    }
  }
  ++size_;
}

void ColumnChunk::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return;
  }
  if (!boxed_) {
    bool match = false;
    switch (type_) {
      case DataType::kBool:
        match = value.type() == DataType::kBool;
        if (match) bools_.push_back(value.bool_value() ? 1 : 0);
        break;
      case DataType::kInt:
        match = value.type() == DataType::kInt;
        if (match) ints_.push_back(value.int_value());
        break;
      case DataType::kDouble:
        match = value.type() == DataType::kDouble;
        if (match) doubles_.push_back(value.double_value());
        break;
      case DataType::kString:
        match = value.type() == DataType::kString;
        if (match) strings_.push_back(value.string_value());
        break;
      case DataType::kDate:
        match = value.type() == DataType::kDate;
        if (match) ints_.push_back(value.date_value().days_since_epoch());
        break;
      case DataType::kNull:
        match = false;  // non-null value into a kNull-typed column: box it
        break;
    }
    if (!match) Demote();
  }
  if (boxed_) values_.push_back(value);
  PushNullBit(false);
  ++size_;
}

void ColumnChunk::AppendFrom(const ColumnChunk& other, size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  if (!boxed_ && !other.boxed_ && type_ == other.type_) {
    const size_t p = other.Phys(row);
    switch (type_) {
      case DataType::kBool:
        bools_.push_back(other.bools_[p]);
        break;
      case DataType::kInt:
      case DataType::kDate:
        ints_.push_back(other.ints_[p]);
        break;
      case DataType::kDouble:
        doubles_.push_back(other.doubles_[p]);
        break;
      case DataType::kString:
        strings_.push_back(other.strings_[p]);
        break;
      case DataType::kNull:
        // non-null cell in a kNull chunk is impossible (bitmap says null)
        break;
    }
    PushNullBit(false);
    ++size_;
    return;
  }
  Append(other.GetValue(row));
}

void ColumnChunk::Reserve(size_t rows) {
  null_words_.reserve((rows + 63) / 64);
  if (boxed_) {
    values_.reserve(rows);
    return;
  }
  switch (type_) {
    case DataType::kBool:
      bools_.reserve(rows);
      break;
    case DataType::kInt:
    case DataType::kDate:
      ints_.reserve(rows);
      break;
    case DataType::kDouble:
      doubles_.reserve(rows);
      break;
    case DataType::kString:
      strings_.reserve(rows);
      break;
    case DataType::kNull:
      break;
  }
}

void ColumnChunk::Clear() {
  size_ = 0;
  null_prefix_ = 0;
  boxed_ = false;
  null_words_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  bools_.clear();
  values_.clear();
}

int ColumnChunk::CompareRows(size_t row, const ColumnChunk& other,
                             size_t other_row) const {
  bool an = IsNull(row), bn = other.IsNull(other_row);
  // Value::operator<: Compare()==kNull falls through to the variant-rank
  // fallback, so NULL sorts before everything and NULL == NULL.
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  if (!boxed_ && !other.boxed_) {
    const size_t pa = Phys(row);
    const size_t pb = other.Phys(other_row);
    if (type_ == other.type_) {
      switch (type_) {
        case DataType::kBool:
          return SignI(bools_[pa], other.bools_[pb]);
        case DataType::kInt:
        case DataType::kDate:
          return SignI(ints_[pa], other.ints_[pb]);
        case DataType::kDouble:
          return Sign(doubles_[pa], other.doubles_[pb]);
        case DataType::kString: {
          int c = strings_[pa].compare(other.strings_[pb]);
          return c < 0 ? -1 : (c > 0 ? 1 : 0);
        }
        case DataType::kNull:
          return 0;  // unreachable: both cells non-null
      }
    }
    // Cross-type numeric widening, exactly as Compare() does.
    bool a_num = type_ == DataType::kInt || type_ == DataType::kDouble;
    bool b_num =
        other.type_ == DataType::kInt || other.type_ == DataType::kDouble;
    if (a_num && b_num) {
      double a = type_ == DataType::kInt ? static_cast<double>(ints_[pa])
                                         : doubles_[pa];
      double b = other.type_ == DataType::kInt
                     ? static_cast<double>(other.ints_[pb])
                     : other.doubles_[pb];
      int s = Sign(a, b);
      if (s != 0) return s;
      // Equal-valued int vs double: Compare says kEqual, so operator< is
      // false both ways — a tie.
      return 0;
    }
    // Incomparable types: variant-rank fallback.
    return SignI(RankOf(type_), RankOf(other.type_));
  }
  return CompareValues(GetValue(row), other.GetValue(other_row));
}

bool ColumnChunk::RowsEqual(size_t row, const ColumnChunk& other,
                            size_t other_row) const {
  bool an = IsNull(row), bn = other.IsNull(other_row);
  if (an || bn) return an == bn;
  if (!boxed_ && !other.boxed_) {
    // Strict equality: types must match exactly (no int==double widening in
    // Value::operator==).
    if (type_ != other.type_) return false;
    const size_t pa = Phys(row);
    const size_t pb = other.Phys(other_row);
    switch (type_) {
      case DataType::kBool:
        return bools_[pa] == other.bools_[pb];
      case DataType::kInt:
      case DataType::kDate:
        return ints_[pa] == other.ints_[pb];
      case DataType::kDouble:
        return doubles_[pa] == other.doubles_[pb];
      case DataType::kString:
        return strings_[pa] == other.strings_[pb];
      case DataType::kNull:
        return true;  // unreachable: both non-null
    }
  }
  return GetValue(row) == other.GetValue(other_row);
}

uint64_t ColumnChunk::HashRow(size_t row) const {
  if (IsNull(row)) return kNullHash;
  if (!boxed_) {
    const size_t p = Phys(row);
    switch (type_) {
      case DataType::kBool:
        return bools_[p] ? kTrueHash : kFalseHash;
      case DataType::kInt:
        return HashDouble(static_cast<double>(ints_[p]));
      case DataType::kDouble:
        return HashDouble(doubles_[p]);
      case DataType::kString:
        return std::hash<std::string>{}(strings_[p]);
      case DataType::kDate:
        return HashDouble(static_cast<double>(ints_[p])) ^ kDateTag;
      case DataType::kNull:
        return kNullHash;
    }
  }
  return HashValue(values_[row]);
}

ColumnChunk ColumnChunk::Gather(const std::vector<uint32_t>& rows) const {
  ColumnChunk out(type_);
  out.Reserve(rows.size());
  for (uint32_t r : rows) out.AppendFrom(*this, r);
  return out;
}

}  // namespace eve
