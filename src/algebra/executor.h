// Executor for conjunctive SELECT-PROJECT-JOIN queries over the in-memory
// Database — the evaluation substrate for E-SQL views. Joins are computed
// with a predicate-pushdown nested-loop strategy: each conjunct is applied
// as soon as all relations it references are bound.

#ifndef EVE_ALGEBRA_EXECUTOR_H_
#define EVE_ALGEBRA_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/database.h"

namespace eve {

// A conjunctive query: FROM `relations` WHERE AND(conjuncts)
// SELECT projections AS output_names. Columns inside expressions are
// qualified by relation name (no aliases at this layer).
struct ConjunctiveQuery {
  std::vector<std::string> relations;
  std::vector<ExprPtr> conjuncts;
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;
  // Result uses set semantics (duplicates removed) when true, matching the
  // paper's extent-containment definitions.
  bool distinct = true;
};

enum class JoinStrategy {
  // Predicate-pushdown nested loops: no memory overhead, O(∏|Ri|) worst
  // case. Retained as the differential-testing oracle.
  kNestedLoop,
  // Left-deep hash joins on equi-join conjuncts (column = column across
  // relations); non-equi conjuncts become post-filters. Falls back to a
  // cartesian extension for relations with no equi-join link.
  kHash,
  // Batch-at-a-time columnar execution: selection vectors over base-table
  // row ids, hashed equi-joins, typed comparison kernels, and
  // late-materialized projections (zero-copy for bare columns). Same
  // cartesian fallback as kHash.
  kVectorized,
  // Cost-based pick between kHash (small inputs, where batch setup
  // overhead dominates) and kVectorized (everything else).
  kAuto,
};

const char* JoinStrategyToString(JoinStrategy strategy);

// Parses "nested" / "nested_loop" / "hash" / "vectorized" / "auto"
// (case-insensitive).
Result<JoinStrategy> ParseJoinStrategy(const std::string& text);

// Process-wide executor telemetry. The cartesian fallback in the hash and
// vectorized paths is correct but O(|L|x|R|); instead of silently
// exploding it bumps `cartesian_fallbacks` so operators can spot the
// missing equi-join predicate (surfaced via evectl SHOW EXECUTOR STATS).
struct ExecutorCounters {
  std::atomic<uint64_t> cartesian_fallbacks{0};
  std::atomic<uint64_t> nested_loop_queries{0};
  std::atomic<uint64_t> hash_queries{0};
  std::atomic<uint64_t> vectorized_queries{0};

  void Reset() {
    cartesian_fallbacks.store(0, std::memory_order_relaxed);
    nested_loop_queries.store(0, std::memory_order_relaxed);
    hash_queries.store(0, std::memory_order_relaxed);
    vectorized_queries.store(0, std::memory_order_relaxed);
  }
};

ExecutorCounters& GlobalExecutorCounters();

// Executes `query` against `db`; output schema types are inferred from
// `catalog`. `registry` resolves function calls (may be null). All
// strategies produce identical result sets (tested in
// tests/executor_equivalence_test).
Result<Table> Execute(const ConjunctiveQuery& query, const Database& db,
                      const Catalog& catalog,
                      const FunctionRegistry* registry = nullptr,
                      JoinStrategy strategy = JoinStrategy::kNestedLoop);

}  // namespace eve

#endif  // EVE_ALGEBRA_EXECUTOR_H_
