// Executor for conjunctive SELECT-PROJECT-JOIN queries over the in-memory
// Database — the evaluation substrate for E-SQL views. Joins are computed
// with a predicate-pushdown nested-loop strategy: each conjunct is applied
// as soon as all relations it references are bound.

#ifndef EVE_ALGEBRA_EXECUTOR_H_
#define EVE_ALGEBRA_EXECUTOR_H_

#include <string>
#include <vector>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/database.h"

namespace eve {

// A conjunctive query: FROM `relations` WHERE AND(conjuncts)
// SELECT projections AS output_names. Columns inside expressions are
// qualified by relation name (no aliases at this layer).
struct ConjunctiveQuery {
  std::vector<std::string> relations;
  std::vector<ExprPtr> conjuncts;
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;
  // Result uses set semantics (duplicates removed) when true, matching the
  // paper's extent-containment definitions.
  bool distinct = true;
};

enum class JoinStrategy {
  // Predicate-pushdown nested loops: no memory overhead, O(∏|Ri|) worst
  // case.
  kNestedLoop,
  // Left-deep hash joins on equi-join conjuncts (column = column across
  // relations); non-equi conjuncts become post-filters. Falls back to a
  // cartesian extension for relations with no equi-join link.
  kHash,
};

// Executes `query` against `db`; output schema types are inferred from
// `catalog`. `registry` resolves function calls (may be null). Both
// strategies produce identical result sets (tested in tests/algebra).
Result<Table> Execute(const ConjunctiveQuery& query, const Database& db,
                      const Catalog& catalog,
                      const FunctionRegistry* registry = nullptr,
                      JoinStrategy strategy = JoinStrategy::kNestedLoop);

}  // namespace eve

#endif  // EVE_ALGEBRA_EXECUTOR_H_
