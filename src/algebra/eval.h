// Expression evaluation and type inference over row bindings, with SQL
// three-valued logic at comparisons and AND/OR.

#ifndef EVE_ALGEBRA_EVAL_H_
#define EVE_ALGEBRA_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "types/value.h"

namespace eve {

// Named scalar functions callable from FunctionCall expressions (the `f` of
// MISD function-of constraints when it is not expressible as arithmetic).
class FunctionRegistry {
 public:
  using Fn = std::function<Result<Value>(const std::vector<Value>&)>;

  // Registers `fn` under `name`; replaces any existing binding.
  void Register(std::string name, Fn fn);

  Result<Value> Call(const std::string& name,
                     const std::vector<Value>& args) const;

  bool Has(const std::string& name) const { return fns_.count(name) > 0; }

  // Registry with the built-ins used by the travel-agency example:
  //   years_since(date)  -- whole years from `date` to `today`
  //   identity(x)        -- x
  static FunctionRegistry Default();

 private:
  std::map<std::string, Fn> fns_;
};

// Binding of qualified attribute names to values for one joined row.
class RowBinding {
 public:
  void Bind(const AttributeRef& ref, Value value) {
    values_[ref] = std::move(value);
  }
  void Unbind(const AttributeRef& ref) { values_.erase(ref); }

  Result<Value> Lookup(const AttributeRef& ref) const;

 private:
  std::unordered_map<AttributeRef, Value, AttributeRefHash> values_;
};

// Evaluates `expr` under `binding`. Comparisons involving NULL yield NULL;
// AND/OR follow Kleene logic. `registry` may be null if the expression has
// no function calls.
Result<Value> EvalExpr(const Expr& expr, const RowBinding& binding,
                       const FunctionRegistry* registry);

// Static result type of `expr` given catalog attribute types.
// Comparison/logic yield kBool; arithmetic widens int->double; date-date
// subtraction yields int (days); date +/- int yields date.
Result<DataType> InferType(const Expr& expr, const Catalog& catalog);

// True iff `expr` evaluates to boolean TRUE (NULL counts as not-true, per
// SQL WHERE semantics).
Result<bool> EvalPredicate(const Expr& expr, const RowBinding& binding,
                           const FunctionRegistry* registry);

// Scalar kernels shared by the row-at-a-time evaluator above and the
// vectorized evaluator (algebra/vectorized.cc): one binary / unary
// application with exactly EvalExpr's semantics (3VL comparisons, Kleene
// AND/OR, int-preserving arithmetic, date/string rules).
Result<Value> EvalBinaryValues(BinaryOp op, const Value& lhs,
                               const Value& rhs);
Result<Value> EvalUnaryValue(UnaryOp op, const Value& operand);

}  // namespace eve

#endif  // EVE_ALGEBRA_EVAL_H_
