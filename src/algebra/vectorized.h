// Batch-at-a-time columnar executor for conjunctive queries, the
// JoinStrategy::kVectorized backend of Execute(). Intermediate join state
// is a set of per-relation row-id vectors into the base tables (late
// materialization); predicates run as typed kernels over gathered column
// chunks where possible, falling back to the shared scalar kernels in
// algebra/eval.h so all strategies agree bit-for-bit.

#ifndef EVE_ALGEBRA_VECTORIZED_H_
#define EVE_ALGEBRA_VECTORIZED_H_

#include "algebra/executor.h"

namespace eve {

// Internal entry point used by Execute(); `out` carries the inferred
// output schema. Validation of the query shape has already happened.
Result<Table> ExecuteVectorized(const ConjunctiveQuery& query,
                                const Database& db, const Catalog& catalog,
                                const FunctionRegistry* registry, Table out);

}  // namespace eve

#endif  // EVE_ALGEBRA_VECTORIZED_H_
