#include "algebra/eval.h"

#include <cmath>

namespace eve {

namespace {

// Reference date for `today` in deterministic tests/benches: 2026-07-07.
Date Today() { return Date::FromYmd(2026, 7, 7).value(); }

Result<Value> EvalArithmetic(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Date arithmetic: date - date -> int days; date +/- int -> date.
  if (lhs.type() == DataType::kDate && rhs.type() == DataType::kDate &&
      op == BinaryOp::kSub) {
    return Value::Int(lhs.date_value().days_since_epoch() -
                      rhs.date_value().days_since_epoch());
  }
  if (lhs.type() == DataType::kDate && rhs.type() == DataType::kInt &&
      (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
    const int64_t delta =
        op == BinaryOp::kAdd ? rhs.int_value() : -rhs.int_value();
    return Value::MakeDate(lhs.date_value().AddDays(delta));
  }
  // String concatenation via '+'.
  if (lhs.type() == DataType::kString && rhs.type() == DataType::kString &&
      op == BinaryOp::kAdd) {
    return Value::String(lhs.string_value() + rhs.string_value());
  }
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeError("arithmetic on non-numeric values: " +
                             lhs.ToString() + " " +
                             std::string(BinaryOpToString(op)) + " " +
                             rhs.ToString());
  }
  if (lhs.type() == DataType::kInt && rhs.type() == DataType::kInt) {
    const int64_t a = lhs.int_value();
    const int64_t b = rhs.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      default:
        break;
    }
  }
  EVE_ASSIGN_OR_RETURN(const double a, lhs.AsDouble());
  EVE_ASSIGN_OR_RETURN(const double b, rhs.AsDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    default:
      return Status::Internal("unexpected arithmetic op");
  }
}

Result<Value> EvalComparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  const CompareResult cmp = Compare(lhs, rhs);
  if (cmp == CompareResult::kNull) return Value::Null();
  if (cmp == CompareResult::kIncomparable) {
    // Bool equality is still meaningful.
    if (lhs.type() == DataType::kBool && rhs.type() == DataType::kBool &&
        (op == BinaryOp::kEq || op == BinaryOp::kNe)) {
      const bool eq = lhs.bool_value() == rhs.bool_value();
      return Value::Bool(op == BinaryOp::kEq ? eq : !eq);
    }
    return Status::TypeError("cannot compare " + lhs.ToString() + " with " +
                             rhs.ToString());
  }
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = cmp == CompareResult::kEqual;
      break;
    case BinaryOp::kNe:
      result = cmp != CompareResult::kEqual;
      break;
    case BinaryOp::kLt:
      result = cmp == CompareResult::kLess;
      break;
    case BinaryOp::kLe:
      result = cmp != CompareResult::kGreater;
      break;
    case BinaryOp::kGt:
      result = cmp == CompareResult::kGreater;
      break;
    case BinaryOp::kGe:
      result = cmp != CompareResult::kLess;
      break;
    default:
      return Status::Internal("unexpected comparison op");
  }
  return Value::Bool(result);
}

// Kleene three-valued AND/OR.
Result<Value> EvalLogic(BinaryOp op, const Value& lhs, const Value& rhs) {
  auto as_tri = [](const Value& v) -> Result<int> {
    if (v.is_null()) return -1;  // unknown
    if (v.type() != DataType::kBool) {
      return Status::TypeError("logical operand is not boolean: " +
                               v.ToString());
    }
    return v.bool_value() ? 1 : 0;
  };
  EVE_ASSIGN_OR_RETURN(const int a, as_tri(lhs));
  EVE_ASSIGN_OR_RETURN(const int b, as_tri(rhs));
  if (op == BinaryOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == -1 || b == -1) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == -1 || b == -1) return Value::Null();
  return Value::Bool(false);
}

}  // namespace

void FunctionRegistry::Register(std::string name, Fn fn) {
  fns_[std::move(name)] = std::move(fn);
}

Result<Value> FunctionRegistry::Call(const std::string& name,
                                     const std::vector<Value>& args) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("unknown function: " + name);
  }
  return it->second(args);
}

FunctionRegistry FunctionRegistry::Default() {
  FunctionRegistry registry;
  registry.Register(
      "identity", [](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("identity expects 1 argument");
        }
        return args[0];
      });
  registry.Register(
      "years_since", [](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("years_since expects 1 argument");
        }
        if (args[0].is_null()) return Value::Null();
        if (args[0].type() != DataType::kDate) {
          return Status::TypeError("years_since expects a date");
        }
        const int64_t days = Today().days_since_epoch() -
                             args[0].date_value().days_since_epoch();
        return Value::Int(days / 365);
      });
  return registry;
}

Result<Value> RowBinding::Lookup(const AttributeRef& ref) const {
  auto it = values_.find(ref);
  if (it == values_.end()) {
    return Status::NotFound("unbound attribute: " + ref.ToString());
  }
  return it->second;
}

Result<Value> EvalBinaryValues(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (IsComparisonOp(op)) return EvalComparison(op, lhs, rhs);
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    return EvalLogic(op, lhs, rhs);
  }
  return EvalArithmetic(op, lhs, rhs);
}

Result<Value> EvalUnaryValue(UnaryOp op, const Value& operand) {
  if (operand.is_null()) return Value::Null();
  if (op == UnaryOp::kNot) {
    if (operand.type() != DataType::kBool) {
      return Status::TypeError("NOT on non-boolean value");
    }
    return Value::Bool(!operand.bool_value());
  }
  if (operand.type() == DataType::kInt) {
    return Value::Int(-operand.int_value());
  }
  if (operand.type() == DataType::kDouble) {
    return Value::Double(-operand.double_value());
  }
  return Status::TypeError("negation on non-numeric value");
}

Result<Value> EvalExpr(const Expr& expr, const RowBinding& binding,
                       const FunctionRegistry* registry) {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      return binding.Lookup(expr.column());
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kUnary: {
      EVE_ASSIGN_OR_RETURN(const Value operand,
                           EvalExpr(*expr.child(0), binding, registry));
      return EvalUnaryValue(expr.unary_op(), operand);
    }
    case ExprKind::kBinary: {
      EVE_ASSIGN_OR_RETURN(const Value lhs,
                           EvalExpr(*expr.child(0), binding, registry));
      EVE_ASSIGN_OR_RETURN(const Value rhs,
                           EvalExpr(*expr.child(1), binding, registry));
      return EvalBinaryValues(expr.binary_op(), lhs, rhs);
    }
    case ExprKind::kFunctionCall: {
      if (registry == nullptr) {
        return Status::FailedPrecondition(
            "function call without a registry: " + expr.function_name());
      }
      std::vector<Value> args;
      args.reserve(expr.children().size());
      for (const ExprPtr& child : expr.children()) {
        EVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*child, binding, registry));
        args.push_back(std::move(v));
      }
      return registry->Call(expr.function_name(), args);
    }
  }
  return Status::Internal("unexpected expression kind");
}

Result<DataType> InferType(const Expr& expr, const Catalog& catalog) {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      return catalog.TypeOf(expr.column());
    case ExprKind::kLiteral:
      return expr.literal().type();
    case ExprKind::kUnary: {
      EVE_ASSIGN_OR_RETURN(const DataType t,
                           InferType(*expr.child(0), catalog));
      if (expr.unary_op() == UnaryOp::kNot) {
        if (t != DataType::kBool) {
          return Status::TypeError("NOT requires a boolean operand");
        }
        return DataType::kBool;
      }
      if (!IsNumeric(t)) {
        return Status::TypeError("negation requires a numeric operand");
      }
      return t;
    }
    case ExprKind::kBinary: {
      EVE_ASSIGN_OR_RETURN(const DataType lt,
                           InferType(*expr.child(0), catalog));
      EVE_ASSIGN_OR_RETURN(const DataType rt,
                           InferType(*expr.child(1), catalog));
      const BinaryOp op = expr.binary_op();
      if (IsComparisonOp(op) || op == BinaryOp::kAnd ||
          op == BinaryOp::kOr) {
        return DataType::kBool;
      }
      if (lt == DataType::kDate && rt == DataType::kDate &&
          op == BinaryOp::kSub) {
        return DataType::kInt;
      }
      if (lt == DataType::kDate && rt == DataType::kInt &&
          (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
        return DataType::kDate;
      }
      if (lt == DataType::kString && rt == DataType::kString &&
          op == BinaryOp::kAdd) {
        return DataType::kString;
      }
      if (!IsNumeric(lt) || !IsNumeric(rt)) {
        return Status::TypeError("arithmetic requires numeric operands: " +
                                 expr.ToString());
      }
      if (lt == DataType::kDouble || rt == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt;
    }
    case ExprKind::kFunctionCall:
      // Function results are data-dependent; conservatively type calls by
      // their first argument when possible, else string. The registry's
      // built-ins (years_since -> int) are special-cased.
      if (expr.function_name() == "years_since") return DataType::kInt;
      if (!expr.children().empty()) {
        return InferType(*expr.child(0), catalog);
      }
      return DataType::kString;
  }
  return Status::Internal("unexpected expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const RowBinding& binding,
                           const FunctionRegistry* registry) {
  EVE_ASSIGN_OR_RETURN(const Value v, EvalExpr(expr, binding, registry));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool) {
    return Status::TypeError("predicate did not evaluate to boolean: " +
                             expr.ToString());
  }
  return v.bool_value();
}

}  // namespace eve
