#include "algebra/vectorized.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>

#include "storage/column.h"

namespace eve {

namespace {

// Join state: one row-id vector per bound relation, all the same length.
// Row i of the intermediate relation is the concatenation of base rows
// rowids[0][i], rowids[1][i], ... Base columns are gathered only when an
// expression actually touches them.
struct Batch {
  std::vector<std::string> rels;
  std::vector<const Table*> tables;
  std::vector<const Schema*> schemas;
  std::vector<std::vector<uint32_t>> rowids;
  // identity[r]: rowids[r] is exactly [0, tables[r]->NumRows()) — lets
  // bare-column reads borrow the base chunk instead of gathering.
  std::vector<bool> identity;
  size_t num_rows = 0;

  // (relation index, column index) of a qualified column, if bound.
  bool Resolve(const AttributeRef& ref, size_t* rel_idx,
               size_t* col_idx) const {
    for (size_t r = 0; r < rels.size(); ++r) {
      if (rels[r] != ref.relation) continue;
      auto idx = schemas[r]->IndexOf(ref.attribute);
      if (!idx) return false;
      *rel_idx = r;
      *col_idx = *idx;
      return true;
    }
    return false;
  }
};

// A column of expression results over the batch: either one cell per batch
// row, or a single broadcast constant (literal subtrees).
struct VecSlot {
  std::shared_ptr<const ColumnChunk> chunk;
  bool is_const = false;

  size_t CellIndex(size_t row) const { return is_const ? 0 : row; }
};

VecSlot GatherColumn(const Batch& batch, size_t rel_idx, size_t col_idx) {
  const std::shared_ptr<const ColumnChunk>& base =
      batch.tables[rel_idx]->column_handle(col_idx);
  if (batch.identity[rel_idx]) {
    return VecSlot{base, false};  // zero-copy borrow
  }
  return VecSlot{
      std::make_shared<ColumnChunk>(base->Gather(batch.rowids[rel_idx])),
      false};
}

// --- Expression evaluation over a batch -------------------------------------

Result<VecSlot> EvalExprVec(const Expr& expr, const Batch& batch,
                            const FunctionRegistry* registry);

// Typed comparison kernel: both sides int/double plain chunks. Produces a
// bool chunk with NULL where either input is NULL (3VL).
bool NumericKernelApplies(const ColumnChunk& c) {
  return c.plain() &&
         (c.type() == DataType::kInt || c.type() == DataType::kDouble);
}

double NumericAt(const ColumnChunk& c, size_t i) {
  return c.type() == DataType::kInt ? static_cast<double>(c.ints()[i])
                                    : c.doubles()[i];
}

bool CompareOutcome(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    default:
      return cmp >= 0;  // kGe
  }
}

Result<VecSlot> EvalComparisonVec(BinaryOp op, const VecSlot& lhs,
                                  const VecSlot& rhs, size_t n) {
  const ColumnChunk& a = *lhs.chunk;
  const ColumnChunk& b = *rhs.chunk;
  auto out = std::make_shared<ColumnChunk>(DataType::kBool);
  out->Reserve(n);
  // Typed numeric fast path (covers int/double columns and literals).
  if (NumericKernelApplies(a) && NumericKernelApplies(b)) {
    for (size_t i = 0; i < n; ++i) {
      const size_t ia = lhs.CellIndex(i);
      const size_t ib = rhs.CellIndex(i);
      if (a.IsNull(ia) || b.IsNull(ib)) {
        out->AppendNull();
        continue;
      }
      const double va = NumericAt(a, ia);
      const double vb = NumericAt(b, ib);
      const int cmp = va < vb ? -1 : (va > vb ? 1 : 0);
      out->Append(Value::Bool(CompareOutcome(op, cmp)));
    }
    return VecSlot{std::move(out), false};
  }
  // Same-type string/date fast path.
  if (a.plain() && b.plain() && a.type() == b.type() &&
      (a.type() == DataType::kString || a.type() == DataType::kDate)) {
    for (size_t i = 0; i < n; ++i) {
      const size_t ia = lhs.CellIndex(i);
      const size_t ib = rhs.CellIndex(i);
      if (a.IsNull(ia) || b.IsNull(ib)) {
        out->AppendNull();
        continue;
      }
      int cmp;
      if (a.type() == DataType::kString) {
        const int c = a.strings()[ia].compare(b.strings()[ib]);
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      } else {
        const int64_t da = a.dates()[ia], db = b.dates()[ib];
        cmp = da < db ? -1 : (da > db ? 1 : 0);
      }
      out->Append(Value::Bool(CompareOutcome(op, cmp)));
    }
    return VecSlot{std::move(out), false};
  }
  // Generic fallback: shared scalar kernel per row (preserves TypeError
  // and bool-equality semantics exactly).
  for (size_t i = 0; i < n; ++i) {
    EVE_ASSIGN_OR_RETURN(
        Value v, EvalBinaryValues(op, a.GetValue(lhs.CellIndex(i)),
                                  b.GetValue(rhs.CellIndex(i))));
    out->Append(v);
  }
  return VecSlot{std::move(out), false};
}

Result<VecSlot> EvalExprVec(const Expr& expr, const Batch& batch,
                            const FunctionRegistry* registry) {
  const size_t n = batch.num_rows;
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      size_t rel_idx = 0, col_idx = 0;
      if (!batch.Resolve(expr.column(), &rel_idx, &col_idx)) {
        return Status::NotFound("unbound attribute: " +
                                expr.column().ToString());
      }
      return GatherColumn(batch, rel_idx, col_idx);
    }
    case ExprKind::kLiteral: {
      auto chunk = std::make_shared<ColumnChunk>(expr.literal().type());
      chunk->Append(expr.literal());
      return VecSlot{std::move(chunk), true};
    }
    case ExprKind::kUnary: {
      EVE_ASSIGN_OR_RETURN(const VecSlot operand,
                           EvalExprVec(*expr.child(0), batch, registry));
      auto out = std::make_shared<ColumnChunk>(operand.chunk->type());
      const size_t rows = operand.is_const ? 1 : n;
      out->Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        EVE_ASSIGN_OR_RETURN(
            Value v,
            EvalUnaryValue(expr.unary_op(), operand.chunk->GetValue(i)));
        out->Append(v);
      }
      return VecSlot{std::move(out), operand.is_const};
    }
    case ExprKind::kBinary: {
      EVE_ASSIGN_OR_RETURN(const VecSlot lhs,
                           EvalExprVec(*expr.child(0), batch, registry));
      EVE_ASSIGN_OR_RETURN(const VecSlot rhs,
                           EvalExprVec(*expr.child(1), batch, registry));
      const BinaryOp op = expr.binary_op();
      if (lhs.is_const && rhs.is_const) {
        EVE_ASSIGN_OR_RETURN(
            Value v, EvalBinaryValues(op, lhs.chunk->GetValue(0),
                                      rhs.chunk->GetValue(0)));
        auto chunk = std::make_shared<ColumnChunk>(v.type());
        chunk->Append(v);
        return VecSlot{std::move(chunk), true};
      }
      if (IsComparisonOp(op)) return EvalComparisonVec(op, lhs, rhs, n);
      // Arithmetic / logic: shared scalar kernel per row.
      auto out = std::make_shared<ColumnChunk>(DataType::kNull);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        EVE_ASSIGN_OR_RETURN(
            Value v,
            EvalBinaryValues(op, lhs.chunk->GetValue(lhs.CellIndex(i)),
                             rhs.chunk->GetValue(rhs.CellIndex(i))));
        out->Append(v);
      }
      return VecSlot{std::move(out), false};
    }
    case ExprKind::kFunctionCall: {
      if (registry == nullptr) {
        return Status::FailedPrecondition(
            "function call without a registry: " + expr.function_name());
      }
      std::vector<VecSlot> args;
      args.reserve(expr.children().size());
      bool all_const = true;
      for (const ExprPtr& child : expr.children()) {
        EVE_ASSIGN_OR_RETURN(VecSlot slot,
                             EvalExprVec(*child, batch, registry));
        all_const = all_const && slot.is_const;
        args.push_back(std::move(slot));
      }
      const size_t rows = all_const ? 1 : n;
      auto out = std::make_shared<ColumnChunk>(DataType::kNull);
      out->Reserve(rows);
      std::vector<Value> arg_values(args.size());
      for (size_t i = 0; i < rows; ++i) {
        for (size_t k = 0; k < args.size(); ++k) {
          arg_values[k] = args[k].chunk->GetValue(args[k].CellIndex(i));
        }
        EVE_ASSIGN_OR_RETURN(
            Value v, registry->Call(expr.function_name(), arg_values));
        out->Append(v);
      }
      return VecSlot{std::move(out), all_const};
    }
  }
  return Status::Internal("unexpected expression kind");
}

// Filters the batch down to rows where `pred` is TRUE (NULL = drop),
// compacting every row-id vector.
Status ApplyPredicateVec(const Expr& pred, Batch* batch,
                         const FunctionRegistry* registry) {
  EVE_ASSIGN_OR_RETURN(const VecSlot slot,
                       EvalExprVec(pred, *batch, registry));
  const ColumnChunk& c = *slot.chunk;
  if (slot.is_const) {
    // Constant predicate: keep all or none.
    if (c.IsNull(0)) {
      for (auto& ids : batch->rowids) ids.clear();
      batch->num_rows = 0;
      std::fill(batch->identity.begin(), batch->identity.end(), false);
      return Status::OK();
    }
    if (c.type() != DataType::kBool) {
      return Status::TypeError("predicate did not evaluate to boolean: " +
                               pred.ToString());
    }
    if (!c.GetValue(0).bool_value()) {
      for (auto& ids : batch->rowids) ids.clear();
      batch->num_rows = 0;
      std::fill(batch->identity.begin(), batch->identity.end(), false);
    }
    return Status::OK();
  }
  std::vector<uint32_t> sel;
  sel.reserve(batch->num_rows);
  for (size_t i = 0; i < batch->num_rows; ++i) {
    if (c.IsNull(i)) continue;
    if (c.type() != DataType::kBool && !c.boxed()) {
      return Status::TypeError("predicate did not evaluate to boolean: " +
                               pred.ToString());
    }
    const Value v = c.GetValue(i);
    if (v.type() != DataType::kBool) {
      return Status::TypeError("predicate did not evaluate to boolean: " +
                               pred.ToString());
    }
    if (v.bool_value()) sel.push_back(static_cast<uint32_t>(i));
  }
  const bool all_kept = sel.size() == batch->num_rows;
  if (all_kept) return Status::OK();
  for (size_t r = 0; r < batch->rowids.size(); ++r) {
    std::vector<uint32_t> next;
    next.reserve(sel.size());
    const std::vector<uint32_t>& ids = batch->rowids[r];
    if (batch->identity[r]) {
      // Identity row ids were implicit; materialize through the selection.
      for (uint32_t s : sel) next.push_back(s);
    } else {
      for (uint32_t s : sel) next.push_back(ids[s]);
    }
    batch->rowids[r] = std::move(next);
    batch->identity[r] = false;
  }
  batch->num_rows = sel.size();
  return Status::OK();
}

bool CoveredBy(const Expr& expr, const std::set<std::string>& bound) {
  for (const std::string& rel : expr.ReferencedRelations()) {
    if (bound.count(rel) == 0) return false;
  }
  return true;
}

// FNV-style combine of per-column cell hashes.
uint64_t CombineHash(uint64_t h, uint64_t cell) {
  h ^= cell + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Result<Table> ExecuteVectorized(const ConjunctiveQuery& query,
                                const Database& db, const Catalog& catalog,
                                const FunctionRegistry* registry,
                                Table out_table) {
  std::set<std::string> bound;
  std::vector<bool> conjunct_used(query.conjuncts.size(), false);
  Batch batch;

  auto apply_ready_filters = [&]() -> Status {
    for (size_t c = 0; c < query.conjuncts.size(); ++c) {
      if (conjunct_used[c]) continue;
      if (!CoveredBy(*query.conjuncts[c], bound)) continue;
      conjunct_used[c] = true;
      EVE_RETURN_IF_ERROR(
          ApplyPredicateVec(*query.conjuncts[c], &batch, registry));
    }
    return Status::OK();
  };

  for (size_t depth = 0; depth < query.relations.size(); ++depth) {
    const std::string& rel = query.relations[depth];
    EVE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(rel));
    EVE_ASSIGN_OR_RETURN(const RelationDef* def, catalog.GetRelation(rel));
    const Schema& schema = def->schema;

    if (depth == 0) {
      batch.rels.push_back(rel);
      batch.tables.push_back(table);
      batch.schemas.push_back(&schema);
      batch.rowids.emplace_back();  // implicit while identity
      batch.identity.push_back(true);
      batch.num_rows = table->NumRows();
      bound.insert(rel);
      EVE_RETURN_IF_ERROR(apply_ready_filters());
      continue;
    }

    // Equi-join conjuncts linking `rel` to bound relations:
    // Column(rel.X) = Column(bound.Y) in either orientation.
    struct JoinKey {
      size_t build_col;           // column index in `rel`
      size_t probe_rel;           // bound relation index in batch
      size_t probe_col;           // column index in that relation
    };
    std::vector<JoinKey> keys;
    for (size_t c = 0; c < query.conjuncts.size(); ++c) {
      if (conjunct_used[c]) continue;
      const Expr& e = *query.conjuncts[c];
      if (e.kind() != ExprKind::kBinary || e.binary_op() != BinaryOp::kEq) {
        continue;
      }
      const Expr* lhs = e.child(0).get();
      const Expr* rhs = e.child(1).get();
      if (lhs->kind() != ExprKind::kColumn ||
          rhs->kind() != ExprKind::kColumn) {
        continue;
      }
      const AttributeRef* new_side = nullptr;
      const AttributeRef* old_side = nullptr;
      if (lhs->column().relation == rel &&
          bound.count(rhs->column().relation) > 0) {
        new_side = &lhs->column();
        old_side = &rhs->column();
      } else if (rhs->column().relation == rel &&
                 bound.count(lhs->column().relation) > 0) {
        new_side = &rhs->column();
        old_side = &lhs->column();
      } else {
        continue;
      }
      auto new_idx = schema.IndexOf(new_side->attribute);
      size_t probe_rel = 0, probe_col = 0;
      if (!new_idx || !batch.Resolve(*old_side, &probe_rel, &probe_col)) {
        continue;  // defensive; validated elsewhere
      }
      conjunct_used[c] = true;
      keys.push_back(JoinKey{*new_idx, probe_rel, probe_col});
    }

    std::vector<std::vector<uint32_t>> next_ids(batch.rowids.size() + 1);
    size_t next_rows = 0;

    if (keys.empty()) {
      // No equi link: cartesian extension. Correct but quadratic — count
      // it so operators can see the missing join predicate.
      GlobalExecutorCounters().cartesian_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
      const size_t right_n = table->NumRows();
      for (auto& ids : next_ids) ids.reserve(batch.num_rows * right_n);
      for (size_t i = 0; i < batch.num_rows; ++i) {
        for (size_t r = 0; r < right_n; ++r) {
          for (size_t b = 0; b < batch.rowids.size(); ++b) {
            next_ids[b].push_back(batch.identity[b]
                                      ? static_cast<uint32_t>(i)
                                      : batch.rowids[b][i]);
          }
          next_ids.back().push_back(static_cast<uint32_t>(r));
        }
      }
      next_rows = batch.num_rows * right_n;
    } else {
      // Build: hash the new relation's key columns.
      std::unordered_map<uint64_t, std::vector<uint32_t>> ht;
      ht.reserve(table->NumRows() * 2);
      std::vector<const ColumnChunk*> build_chunks;
      build_chunks.reserve(keys.size());
      for (const JoinKey& k : keys) {
        build_chunks.push_back(&table->column(k.build_col));
      }
      for (size_t r = 0; r < table->NumRows(); ++r) {
        uint64_t h = 0;
        bool has_null = false;
        for (const ColumnChunk* c : build_chunks) {
          if (c->IsNull(r)) {
            has_null = true;
            break;
          }
          h = CombineHash(h, c->HashRow(r));
        }
        if (has_null) continue;  // NULL never equi-joins
        ht[h].push_back(static_cast<uint32_t>(r));
      }
      // Probe: gather probe-side key columns once, then stream.
      std::vector<VecSlot> probe_slots;
      probe_slots.reserve(keys.size());
      for (const JoinKey& k : keys) {
        probe_slots.push_back(GatherColumn(batch, k.probe_rel, k.probe_col));
      }
      for (size_t i = 0; i < batch.num_rows; ++i) {
        uint64_t h = 0;
        bool has_null = false;
        for (const VecSlot& s : probe_slots) {
          if (s.chunk->IsNull(i)) {
            has_null = true;
            break;
          }
          h = CombineHash(h, s.chunk->HashRow(i));
        }
        if (has_null) continue;
        auto it = ht.find(h);
        if (it == ht.end()) continue;
        for (uint32_t r : it->second) {
          // Verify (hash collisions, int/double widening handled by
          // CompareRows' numeric cross-compare).
          bool match = true;
          for (size_t k = 0; k < keys.size(); ++k) {
            if (probe_slots[k].chunk->CompareRows(
                    i, *build_chunks[k], r) != 0) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          for (size_t b = 0; b < batch.rowids.size(); ++b) {
            next_ids[b].push_back(batch.identity[b]
                                      ? static_cast<uint32_t>(i)
                                      : batch.rowids[b][i]);
          }
          next_ids.back().push_back(r);
          ++next_rows;
        }
      }
    }

    batch.rels.push_back(rel);
    batch.tables.push_back(table);
    batch.schemas.push_back(&schema);
    batch.rowids = std::move(next_ids);
    batch.identity.assign(batch.rowids.size(), false);
    batch.num_rows = next_rows;
    bound.insert(rel);
    EVE_RETURN_IF_ERROR(apply_ready_filters());
  }

  for (size_t c = 0; c < query.conjuncts.size(); ++c) {
    if (!conjunct_used[c]) {
      return Status::InvalidArgument(
          "conjunct references relation not in FROM: " +
          query.conjuncts[c]->ToString());
    }
  }

  // Projection: late materialization — bare columns on an identity batch
  // come back as zero-copy borrows of the base chunks.
  std::vector<std::shared_ptr<const ColumnChunk>> out_cols;
  out_cols.reserve(query.projections.size());
  for (const ExprPtr& proj : query.projections) {
    EVE_ASSIGN_OR_RETURN(VecSlot slot,
                         EvalExprVec(*proj, batch, registry));
    if (slot.is_const) {
      // Broadcast the constant to the batch length.
      auto chunk = std::make_shared<ColumnChunk>(slot.chunk->type());
      chunk->Reserve(batch.num_rows);
      const Value v = slot.chunk->GetValue(0);
      for (size_t i = 0; i < batch.num_rows; ++i) chunk->Append(v);
      slot.chunk = std::move(chunk);
    }
    out_cols.push_back(std::move(slot.chunk));
  }
  Table result = Table::FromColumns(out_table.schema(), std::move(out_cols),
                                    batch.num_rows);
  if (query.distinct) result.Deduplicate();
  return result;
}

}  // namespace eve
