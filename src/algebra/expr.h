// Expr: immutable scalar/boolean expression trees. Used for
//  * WHERE-clause primitive clauses of E-SQL views,
//  * SELECT-list items (plain columns or function-of replacements like
//    f(Accident-Ins.Birthday) in the paper's Eq. (13)),
//  * MISD function-of constraint bodies (F3: (today - Birthday)/365).
// Columns are addressed by relation-qualified AttributeRef; alias
// resolution happens during binding (esql/), so algebra sees only
// canonical relation names.

#ifndef EVE_ALGEBRA_EXPR_H_
#define EVE_ALGEBRA_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/attribute_ref.h"
#include "common/result.h"
#include "types/value.h"

namespace eve {

enum class ExprKind { kColumn, kLiteral, kUnary, kBinary, kFunctionCall };

enum class BinaryOp {
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Comparison.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Logic.
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNegate };

// "=", "<", "AND", "+", ...
std::string_view BinaryOpToString(BinaryOp op);
bool IsComparisonOp(BinaryOp op);
// For comparisons: the op with swapped operands (< -> >, = -> =).
BinaryOp FlipComparison(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  static ExprPtr Column(AttributeRef ref);
  static ExprPtr Lit(Value value);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args);

  // Convenience: Column(a) = Column(b).
  static ExprPtr ColumnsEqual(AttributeRef a, AttributeRef b);

  ExprKind kind() const { return kind_; }

  // kColumn only.
  const AttributeRef& column() const { return column_; }
  // kLiteral only.
  const Value& literal() const { return literal_; }
  // kUnary/kBinary only.
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  // kFunctionCall only.
  const std::string& function_name() const { return function_name_; }

  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  // Appends every column reference in the tree (with duplicates).
  void CollectColumns(std::vector<AttributeRef>* out) const;

  // All distinct relations referenced.
  std::vector<std::string> ReferencedRelations() const;

  // Structural equality.
  bool Equals(const Expr& other) const;

  // Returns a tree with every occurrence of `from` replaced by
  // `replacement` (used when splicing attribute replacements into a
  // rewritten view).
  ExprPtr SubstituteColumn(const AttributeRef& from,
                           const ExprPtr& replacement) const;

  // Returns a tree with every column reference rewritten by `fn`
  // (used for relation/attribute renames during MKB evolution).
  ExprPtr TransformColumns(
      const std::function<AttributeRef(const AttributeRef&)>& fn) const;

  // Infix rendering, parenthesized per precedence.
  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  AttributeRef column_;
  Value literal_;
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kAnd;
  std::string function_name_;
  std::vector<ExprPtr> children_;
};

// Splits an AND-tree into its conjuncts (leaves of the AND spine).
void FlattenConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out);

// Rebuilds an AND-tree from conjuncts; empty input yields literal TRUE.
ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts);

// True if two comparison clauses are equal modulo operand order
// ("R.A = S.B" matches "S.B = R.A", "R.A < S.B" matches "S.B > R.A").
bool ClausesEquivalent(const Expr& a, const Expr& b);

}  // namespace eve

#endif  // EVE_ALGEBRA_EXPR_H_
