#include "algebra/expr.h"

#include <algorithm>

namespace eve {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // =, <> are symmetric
  }
}

ExprPtr Expr::Column(AttributeRef ref) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_ = std::move(ref);
  return e;
}

ExprPtr Expr::Lit(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->children_.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kFunctionCall;
  e->function_name_ = std::move(name);
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::ColumnsEqual(AttributeRef a, AttributeRef b) {
  return Binary(BinaryOp::kEq, Column(std::move(a)), Column(std::move(b)));
}

void Expr::CollectColumns(std::vector<AttributeRef>* out) const {
  if (kind_ == ExprKind::kColumn) {
    out->push_back(column_);
    return;
  }
  for (const ExprPtr& child : children_) child->CollectColumns(out);
}

std::vector<std::string> Expr::ReferencedRelations() const {
  std::vector<AttributeRef> cols;
  CollectColumns(&cols);
  std::vector<std::string> rels;
  for (const AttributeRef& ref : cols) {
    if (std::find(rels.begin(), rels.end(), ref.relation) == rels.end()) {
      rels.push_back(ref.relation);
    }
  }
  return rels;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumn:
      return column_ == other.column_;
    case ExprKind::kLiteral:
      return literal_ == other.literal_;
    case ExprKind::kUnary:
      if (unary_op_ != other.unary_op_) return false;
      break;
    case ExprKind::kBinary:
      if (binary_op_ != other.binary_op_) return false;
      break;
    case ExprKind::kFunctionCall:
      if (function_name_ != other.function_name_) return false;
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::SubstituteColumn(const AttributeRef& from,
                               const ExprPtr& replacement) const {
  if (kind_ == ExprKind::kColumn) {
    if (column_ == from) return replacement;
    return Column(column_);
  }
  if (kind_ == ExprKind::kLiteral) return Lit(literal_);
  std::vector<ExprPtr> new_children;
  new_children.reserve(children_.size());
  bool changed = false;
  for (const ExprPtr& child : children_) {
    ExprPtr new_child = child->SubstituteColumn(from, replacement);
    changed = changed || new_child.get() != child.get();
    new_children.push_back(std::move(new_child));
  }
  switch (kind_) {
    case ExprKind::kUnary:
      return Unary(unary_op_, std::move(new_children[0]));
    case ExprKind::kBinary:
      return Binary(binary_op_, std::move(new_children[0]),
                    std::move(new_children[1]));
    case ExprKind::kFunctionCall:
      return Func(function_name_, std::move(new_children));
    default:
      return Lit(literal_);  // unreachable
  }
}

ExprPtr Expr::TransformColumns(
    const std::function<AttributeRef(const AttributeRef&)>& fn) const {
  if (kind_ == ExprKind::kColumn) return Column(fn(column_));
  if (kind_ == ExprKind::kLiteral) return Lit(literal_);
  std::vector<ExprPtr> new_children;
  new_children.reserve(children_.size());
  for (const ExprPtr& child : children_) {
    new_children.push_back(child->TransformColumns(fn));
  }
  switch (kind_) {
    case ExprKind::kUnary:
      return Unary(unary_op_, std::move(new_children[0]));
    case ExprKind::kBinary:
      return Binary(binary_op_, std::move(new_children[0]),
                    std::move(new_children[1]));
    case ExprKind::kFunctionCall:
      return Func(function_name_, std::move(new_children));
    default:
      return Lit(literal_);  // unreachable
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_.ToString();
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kUnary:
      if (unary_op_ == UnaryOp::kNot) {
        return "NOT (" + children_[0]->ToString() + ")";
      }
      return "-(" + children_[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " +
             std::string(BinaryOpToString(binary_op_)) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function_name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

void FlattenConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary &&
      expr->binary_op() == BinaryOp::kAnd) {
    FlattenConjunction(expr->child(0), out);
    FlattenConjunction(expr->child(1), out);
    return;
  }
  out->push_back(expr);
}

ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Expr::Lit(Value::Bool(true));
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Expr::Binary(BinaryOp::kAnd, result, conjuncts[i]);
  }
  return result;
}

bool ClausesEquivalent(const Expr& a, const Expr& b) {
  if (a.Equals(b)) return true;
  if (a.kind() != ExprKind::kBinary || b.kind() != ExprKind::kBinary) {
    return false;
  }
  if (!IsComparisonOp(a.binary_op()) || !IsComparisonOp(b.binary_op())) {
    return false;
  }
  // a: x op y; b equivalent if b is y flip(op) x.
  return FlipComparison(a.binary_op()) == b.binary_op() &&
         a.child(0)->Equals(*b.child(1)) && a.child(1)->Equals(*b.child(0));
}

}  // namespace eve
