#include "algebra/executor.h"

#include <algorithm>
#include <set>

#include "algebra/vectorized.h"
#include "common/str_util.h"

namespace eve {

ExecutorCounters& GlobalExecutorCounters() {
  static ExecutorCounters counters;
  return counters;
}

const char* JoinStrategyToString(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      return "nested_loop";
    case JoinStrategy::kHash:
      return "hash";
    case JoinStrategy::kVectorized:
      return "vectorized";
    case JoinStrategy::kAuto:
      return "auto";
  }
  return "?";
}

Result<JoinStrategy> ParseJoinStrategy(const std::string& text) {
  std::string lower = text;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "nested" || lower == "nested_loop" || lower == "nestedloop") {
    return JoinStrategy::kNestedLoop;
  }
  if (lower == "hash") return JoinStrategy::kHash;
  if (lower == "vectorized" || lower == "vector") {
    return JoinStrategy::kVectorized;
  }
  if (lower == "auto") return JoinStrategy::kAuto;
  return Status::InvalidArgument("unknown join strategy: " + text);
}

namespace {

// Below this many rows in the largest input, batch setup overhead beats
// the vectorized path's gains; kAuto routes such queries to kHash.
constexpr size_t kAutoVectorizeRowThreshold = 256;

// Conjuncts scheduled by the earliest join position at which all their
// referenced relations are bound.
struct ScheduledConjuncts {
  // slot[i] = conjuncts evaluable once relations[0..i] are bound.
  std::vector<std::vector<ExprPtr>> slots;
};

Result<ScheduledConjuncts> Schedule(const ConjunctiveQuery& query) {
  ScheduledConjuncts out;
  out.slots.resize(query.relations.size());
  for (const ExprPtr& conjunct : query.conjuncts) {
    size_t slot = 0;
    for (const std::string& rel : conjunct->ReferencedRelations()) {
      auto it = std::find(query.relations.begin(), query.relations.end(), rel);
      if (it == query.relations.end()) {
        return Status::InvalidArgument(
            "conjunct references relation not in FROM: " + rel + " in " +
            conjunct->ToString());
      }
      slot = std::max(
          slot, static_cast<size_t>(it - query.relations.begin()));
    }
    if (out.slots.empty()) {
      return Status::InvalidArgument("query has no relations");
    }
    out.slots[slot].push_back(conjunct);
  }
  return out;
}

struct ExecContext {
  const ConjunctiveQuery* query;
  const Database* db;
  const ScheduledConjuncts* scheduled;
  const FunctionRegistry* registry;
  std::vector<const Table*> tables;
  std::vector<const Schema*> schemas;
  Table* out;
};

Status EmitRow(const ExecContext& ctx, const RowBinding& binding) {
  Tuple tuple;
  tuple.reserve(ctx.query->projections.size());
  for (const ExprPtr& proj : ctx.query->projections) {
    EVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*proj, binding, ctx.registry));
    tuple.push_back(std::move(v));
  }
  ctx.out->InsertUnchecked(std::move(tuple));
  return Status::OK();
}

Status JoinRecursive(const ExecContext& ctx, size_t depth,
                     RowBinding* binding) {
  if (depth == ctx.query->relations.size()) {
    return EmitRow(ctx, *binding);
  }
  const std::string& rel = ctx.query->relations[depth];
  const Schema& schema = *ctx.schemas[depth];
  for (const Tuple& row : ctx.tables[depth]->rows()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      binding->Bind(AttributeRef{rel, schema.attribute(i).name}, row[i]);
    }
    bool pass = true;
    for (const ExprPtr& conjunct : ctx.scheduled->slots[depth]) {
      EVE_ASSIGN_OR_RETURN(const bool ok,
                           EvalPredicate(*conjunct, *binding, ctx.registry));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) {
      EVE_RETURN_IF_ERROR(JoinRecursive(ctx, depth + 1, binding));
    }
  }
  // Leave bindings in place; they are overwritten by the next row and the
  // caller's own loop. (Attribute names are relation-qualified, so stale
  // entries from this depth cannot be read by shallower predicates.)
  return Status::OK();
}

// --- Hash-join execution -----------------------------------------------------

bool TupleKeyLess(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

// Normalizes a join-key value so int and double keys compare consistently
// with the nested-loop Compare() semantics.
Value NormalizeKey(const Value& v) {
  if (v.type() == DataType::kInt) {
    return Value::Double(static_cast<double>(v.int_value()));
  }
  return v;
}

// Intermediate rows during a left-deep hash-join pipeline: a flat column
// layout of relation-qualified attributes.
struct Intermediate {
  std::vector<AttributeRef> columns;
  std::vector<Tuple> rows;
};

struct HashExecContext {
  const ConjunctiveQuery* query;
  const Catalog* catalog;
  const Database* db;
  const FunctionRegistry* registry;
};

Result<Value> EvalOnIntermediate(const Expr& expr, const Intermediate& inter,
                                 const Tuple& row,
                                 const FunctionRegistry* registry) {
  RowBinding binding;
  for (size_t i = 0; i < inter.columns.size(); ++i) {
    binding.Bind(inter.columns[i], row[i]);
  }
  return EvalExpr(expr, binding, registry);
}

Result<bool> PredicateOnIntermediate(const Expr& expr,
                                     const Intermediate& inter,
                                     const Tuple& row,
                                     const FunctionRegistry* registry) {
  RowBinding binding;
  for (size_t i = 0; i < inter.columns.size(); ++i) {
    binding.Bind(inter.columns[i], row[i]);
  }
  return EvalPredicate(expr, binding, registry);
}

// True when every relation referenced by `expr` is bound by `bound`.
bool CoveredBy(const Expr& expr, const std::set<std::string>& bound) {
  for (const std::string& rel : expr.ReferencedRelations()) {
    if (bound.count(rel) == 0) return false;
  }
  return true;
}

Result<Table> ExecuteHash(const ConjunctiveQuery& query, const Database& db,
                          const Catalog& catalog,
                          const FunctionRegistry* registry,
                          Table out_table) {
  std::set<std::string> bound;
  std::vector<bool> conjunct_used(query.conjuncts.size(), false);
  Intermediate current;

  auto apply_ready_filters = [&](Intermediate* inter) -> Status {
    for (size_t c = 0; c < query.conjuncts.size(); ++c) {
      if (conjunct_used[c]) continue;
      if (!CoveredBy(*query.conjuncts[c], bound)) continue;
      conjunct_used[c] = true;
      std::vector<Tuple> kept;
      kept.reserve(inter->rows.size());
      for (Tuple& row : inter->rows) {
        EVE_ASSIGN_OR_RETURN(
            const bool pass,
            PredicateOnIntermediate(*query.conjuncts[c], *inter, row,
                                    registry));
        if (pass) kept.push_back(std::move(row));
      }
      inter->rows = std::move(kept);
    }
    return Status::OK();
  };

  for (size_t depth = 0; depth < query.relations.size(); ++depth) {
    const std::string& rel = query.relations[depth];
    EVE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(rel));
    EVE_ASSIGN_OR_RETURN(const RelationDef* def, catalog.GetRelation(rel));
    std::vector<AttributeRef> rel_columns;
    rel_columns.reserve(def->schema.size());
    for (const AttributeDef& attr : def->schema.attributes()) {
      rel_columns.push_back(AttributeRef{rel, attr.name});
    }

    if (depth == 0) {
      current.columns = rel_columns;
      current.rows = table->rows();
      bound.insert(rel);
      EVE_RETURN_IF_ERROR(apply_ready_filters(&current));
      continue;
    }

    // Find equi-join conjuncts linking `rel` to the bound relations:
    // Column(rel.X) = Column(bound.Y) in either orientation.
    std::vector<size_t> probe_cols;  // indices into current.columns
    std::vector<size_t> build_cols;  // indices into rel_columns
    for (size_t c = 0; c < query.conjuncts.size(); ++c) {
      if (conjunct_used[c]) continue;
      const Expr& e = *query.conjuncts[c];
      if (e.kind() != ExprKind::kBinary || e.binary_op() != BinaryOp::kEq) {
        continue;
      }
      const Expr* lhs = e.child(0).get();
      const Expr* rhs = e.child(1).get();
      if (lhs->kind() != ExprKind::kColumn ||
          rhs->kind() != ExprKind::kColumn) {
        continue;
      }
      const AttributeRef* new_side = nullptr;
      const AttributeRef* old_side = nullptr;
      if (lhs->column().relation == rel &&
          bound.count(rhs->column().relation) > 0) {
        new_side = &lhs->column();
        old_side = &rhs->column();
      } else if (rhs->column().relation == rel &&
                 bound.count(lhs->column().relation) > 0) {
        new_side = &rhs->column();
        old_side = &lhs->column();
      } else {
        continue;
      }
      const auto new_it = std::find(rel_columns.begin(), rel_columns.end(),
                                    *new_side);
      const auto old_it = std::find(current.columns.begin(),
                                    current.columns.end(), *old_side);
      if (new_it == rel_columns.end() || old_it == current.columns.end()) {
        continue;  // defensive; validated elsewhere
      }
      conjunct_used[c] = true;
      build_cols.push_back(
          static_cast<size_t>(new_it - rel_columns.begin()));
      probe_cols.push_back(
          static_cast<size_t>(old_it - current.columns.begin()));
    }

    Intermediate next;
    next.columns = current.columns;
    next.columns.insert(next.columns.end(), rel_columns.begin(),
                        rel_columns.end());

    if (build_cols.empty()) {
      // No equi link: cartesian extension (filters may still apply after).
      // Correct but O(|L|x|R|) — counted so operators can spot the missing
      // equi-join predicate instead of it silently exploding.
      GlobalExecutorCounters().cartesian_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
      for (const Tuple& left : current.rows) {
        for (const Tuple& right : table->rows()) {
          Tuple merged = left;
          merged.insert(merged.end(), right.begin(), right.end());
          next.rows.push_back(std::move(merged));
        }
      }
    } else {
      // Build a key -> row-ids map over the new relation.
      std::map<Tuple, std::vector<size_t>, decltype(&TupleKeyLess)> hash(
          &TupleKeyLess);
      for (size_t r = 0; r < table->rows().size(); ++r) {
        Tuple key;
        key.reserve(build_cols.size());
        bool has_null = false;
        for (const size_t col : build_cols) {
          const Value& v = table->rows()[r][col];
          if (v.is_null()) has_null = true;
          key.push_back(NormalizeKey(v));
        }
        if (has_null) continue;  // NULL never equi-joins
        hash[std::move(key)].push_back(r);
      }
      for (const Tuple& left : current.rows) {
        Tuple key;
        key.reserve(probe_cols.size());
        bool has_null = false;
        for (const size_t col : probe_cols) {
          const Value& v = left[col];
          if (v.is_null()) has_null = true;
          key.push_back(NormalizeKey(v));
        }
        if (has_null) continue;
        const auto it = hash.find(key);
        if (it == hash.end()) continue;
        for (const size_t r : it->second) {
          Tuple merged = left;
          const Tuple& right = table->rows()[r];
          merged.insert(merged.end(), right.begin(), right.end());
          next.rows.push_back(std::move(merged));
        }
      }
    }

    current = std::move(next);
    bound.insert(rel);
    EVE_RETURN_IF_ERROR(apply_ready_filters(&current));
  }

  // Any conjunct still unused is unsatisfiable coverage-wise; Schedule()
  // in the nested-loop path reports this, replicate the check.
  for (size_t c = 0; c < query.conjuncts.size(); ++c) {
    if (!conjunct_used[c]) {
      return Status::InvalidArgument(
          "conjunct references relation not in FROM: " +
          query.conjuncts[c]->ToString());
    }
  }

  for (const Tuple& row : current.rows) {
    Tuple projected;
    projected.reserve(query.projections.size());
    for (const ExprPtr& proj : query.projections) {
      EVE_ASSIGN_OR_RETURN(
          Value v, EvalOnIntermediate(*proj, current, row, registry));
      projected.push_back(std::move(v));
    }
    out_table.InsertUnchecked(std::move(projected));
  }
  if (query.distinct) out_table.Deduplicate();
  return out_table;
}

}  // namespace

Result<Table> Execute(const ConjunctiveQuery& query, const Database& db,
                      const Catalog& catalog,
                      const FunctionRegistry* registry,
                      JoinStrategy strategy) {
  if (query.relations.empty()) {
    return Status::InvalidArgument("query has no relations");
  }
  if (query.projections.size() != query.output_names.size()) {
    return Status::InvalidArgument(
        "projection list and output name list differ in size");
  }
  {
    std::set<std::string> seen;
    for (const std::string& rel : query.relations) {
      if (!seen.insert(rel).second) {
        return Status::InvalidArgument(
            "relation appears more than once in FROM: " + rel);
      }
    }
  }

  // Output schema from inferred projection types.
  std::vector<AttributeDef> out_attrs;
  out_attrs.reserve(query.projections.size());
  for (size_t i = 0; i < query.projections.size(); ++i) {
    EVE_ASSIGN_OR_RETURN(const DataType t,
                         InferType(*query.projections[i], catalog));
    out_attrs.push_back(AttributeDef{query.output_names[i], t});
  }
  EVE_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(out_attrs)));
  Table out(std::move(out_schema));

  if (strategy == JoinStrategy::kAuto) {
    size_t largest = 0;
    for (const std::string& rel : query.relations) {
      EVE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(rel));
      largest = std::max(largest, table->NumRows());
    }
    strategy = largest >= kAutoVectorizeRowThreshold
                   ? JoinStrategy::kVectorized
                   : JoinStrategy::kHash;
  }

  if (strategy == JoinStrategy::kVectorized) {
    GlobalExecutorCounters().vectorized_queries.fetch_add(
        1, std::memory_order_relaxed);
    return ExecuteVectorized(query, db, catalog, registry, std::move(out));
  }
  if (strategy == JoinStrategy::kHash) {
    GlobalExecutorCounters().hash_queries.fetch_add(
        1, std::memory_order_relaxed);
    return ExecuteHash(query, db, catalog, registry, std::move(out));
  }
  GlobalExecutorCounters().nested_loop_queries.fetch_add(
      1, std::memory_order_relaxed);

  EVE_ASSIGN_OR_RETURN(const ScheduledConjuncts scheduled, Schedule(query));

  ExecContext ctx;
  ctx.query = &query;
  ctx.db = &db;
  ctx.scheduled = &scheduled;
  ctx.registry = registry;
  ctx.out = &out;
  for (const std::string& rel : query.relations) {
    EVE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(rel));
    EVE_ASSIGN_OR_RETURN(const RelationDef* def, catalog.GetRelation(rel));
    ctx.tables.push_back(table);
    ctx.schemas.push_back(&def->schema);
  }

  RowBinding binding;
  EVE_RETURN_IF_ERROR(JoinRecursive(ctx, 0, &binding));

  if (query.distinct) out.Deduplicate();
  return out;
}

}  // namespace eve
