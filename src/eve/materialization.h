// Materialization layer: keeps the physical side of the federation in
// sync with capability changes, and maintains materialized view extents
// (the data-warehouse setting the paper targets — views are materialized
// at the user site, Sec. 1).
//
// Beyond full recomputation (Refresh), the store can bring a stored
// extent to a rewritten view definition *incrementally*
// (IncrementalRefresh): the CVS extent verdict for the rewriting bounds
// how the new extent relates to the old one, and per-verdict delta rules
// reuse the old extent instead of rescanning the sources. See
// docs/EXECUTOR.md for the rules and their soundness arguments.

#ifndef EVE_EVE_MATERIALIZATION_H_
#define EVE_EVE_MATERIALIZATION_H_

#include <map>
#include <string>

#include "algebra/eval.h"
#include "algebra/executor.h"
#include "common/result.h"
#include "cvs/extent_relation.h"
#include "esql/view_definition.h"
#include "mkb/capability_change.h"
#include "storage/database.h"

namespace eve {

// Applies `change` to the physical tables so they match the evolved
// catalog: delete-relation drops the table, delete-attribute drops the
// column, renames follow, add-relation creates an empty table with the
// new schema, add-attribute appends a NULL-filled column. Idempotence is
// NOT assumed — apply exactly once per change, in order.
Status ApplyChangeToDatabase(const CapabilityChange& change, Database* db);

// Which maintenance path IncrementalRefresh took for a view.
enum class RefreshPath {
  kFull,           // recomputed from the base tables
  kReuseEqual,     // verdict Equal: old extent adopted wholesale, zero scan
  kDeltaSuperset,  // verdict Superset: old extent ∪ dropped-condition delta
  kDeltaSubset,    // verdict Subset: old extent filtered by added conditions
};

const char* RefreshPathToString(RefreshPath path);

// Per-view maintenance telemetry.
struct RefreshStats {
  uint64_t full = 0;
  uint64_t reuse_equal = 0;
  uint64_t delta_superset = 0;
  uint64_t delta_subset = 0;
  RefreshPath last_path = RefreshPath::kFull;

  uint64_t total() const {
    return full + reuse_equal + delta_superset + delta_subset;
  }
};

// A pool of materialized view extents, refreshed on demand from base
// tables. Used together with EveSystem: after a change rewrites a view
// definition, Refresh() re-materializes it from the surviving sources —
// or IncrementalRefresh() adapts the stored extent using the CVS verdict.
class MaterializedViewStore {
 public:
  MaterializedViewStore() = default;
  explicit MaterializedViewStore(const FunctionRegistry* registry)
      : registry_(registry) {}

  // Join strategy for view evaluation (full refreshes, delta queries and
  // empirical checks). Hash joins by default; kAuto upgrades large inputs
  // to the vectorized path.
  void SetStrategy(JoinStrategy strategy) { strategy_ = strategy; }
  JoinStrategy strategy() const { return strategy_; }

  // (Re-)materializes `view` over `db`, replacing any stored extent under
  // the same view name. Always a full recompute.
  Status Refresh(const ViewDefinition& view, const Database& db,
                 const Catalog& catalog);

  // Brings the stored extent of `old_view` to `new_view`'s definition,
  // consulting `verdict` (the CVS extent relationship between the two):
  //  * kEqual    — the old extent is adopted wholesale (zero scan) when
  //                the interfaces carry the same attribute names;
  //  * kSubset   — when the rewriting only ADDED conditions over columns
  //                the old view exposed as bare select items, the new
  //                extent is a filter of the old one (no join, no base
  //                scan);
  //  * kSuperset — when the rewriting only DROPPED conditions, the new
  //                extent is the old one unioned with the rows the
  //                dropped conditions excluded (delta terms partitioned
  //                by the first non-true dropped condition — sound under
  //                three-valued logic);
  //  * kUnknown  — full recompute.
  // Structural preconditions are checked per rule; any mismatch falls
  // back to Refresh(new_view). The path taken is recorded in stats().
  // `db`/`catalog` are the POST-change database and catalog (the delta
  // rules only touch them when a base scan is genuinely required).
  Status IncrementalRefresh(const ViewDefinition& old_view,
                            const ViewDefinition& new_view,
                            ExtentRelation verdict, const Database& db,
                            const Catalog& catalog);

  // The stored extent; NotFound if the view was never materialized.
  //
  // Pointer-stability contract: the returned Table* stays valid (and its
  // contents unchanged) across Refresh/IncrementalRefresh/Drop of OTHER
  // views and across strategy changes; it is invalidated by Refresh,
  // IncrementalRefresh or Drop of THIS view. (Extents live in a
  // std::map keyed by view name — node-based, so unrelated mutations
  // never move them; a refresh of the same name assigns over the mapped
  // Table in place, which replaces the data the pointer sees.) Tested in
  // tests/materialization_test.cc.
  Result<const Table*> Extent(const std::string& view_name) const;

  // Drops a stored extent (for disabled views). Missing names are fine.
  void Drop(const std::string& view_name) { extents_.erase(view_name); }

  bool Has(const std::string& view_name) const {
    return extents_.count(view_name) > 0;
  }
  size_t NumViews() const { return extents_.size(); }

  // Maintenance telemetry for one view (zero-valued if never refreshed)
  // and aggregated over all views.
  RefreshStats StatsFor(const std::string& view_name) const;
  RefreshStats AggregateStats() const;

 private:
  void Record(const std::string& view_name, RefreshPath path);

  // Rule implementations; return true if the rule applied (extent
  // updated), false if preconditions failed and the caller should fall
  // back. Errors are real failures.
  Result<bool> TryReuseEqual(const ViewDefinition& old_view,
                             const ViewDefinition& new_view);
  Result<bool> TryDeltaSubset(const ViewDefinition& old_view,
                              const ViewDefinition& new_view);
  Result<bool> TryDeltaSuperset(const ViewDefinition& old_view,
                                const ViewDefinition& new_view,
                                const Database& db, const Catalog& catalog);

  const FunctionRegistry* registry_ = nullptr;
  JoinStrategy strategy_ = JoinStrategy::kHash;
  std::map<std::string, Table> extents_;
  std::map<std::string, RefreshStats> stats_;
};

}  // namespace eve

#endif  // EVE_EVE_MATERIALIZATION_H_
