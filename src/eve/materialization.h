// Materialization layer: keeps the physical side of the federation in
// sync with capability changes, and maintains materialized view extents
// (the data-warehouse setting the paper targets — views are materialized
// at the user site, Sec. 1).

#ifndef EVE_EVE_MATERIALIZATION_H_
#define EVE_EVE_MATERIALIZATION_H_

#include <map>
#include <string>

#include "algebra/eval.h"
#include "common/result.h"
#include "esql/view_definition.h"
#include "mkb/capability_change.h"
#include "storage/database.h"

namespace eve {

// Applies `change` to the physical tables so they match the evolved
// catalog: delete-relation drops the table, delete-attribute drops the
// column, renames follow, add-relation creates an empty table with the
// new schema, add-attribute appends a NULL-filled column. Idempotence is
// NOT assumed — apply exactly once per change, in order.
Status ApplyChangeToDatabase(const CapabilityChange& change, Database* db);

// A pool of materialized view extents, refreshed on demand from base
// tables. Used together with EveSystem: after a change rewrites a view
// definition, Refresh() re-materializes it from the surviving sources.
class MaterializedViewStore {
 public:
  MaterializedViewStore() = default;
  explicit MaterializedViewStore(const FunctionRegistry* registry)
      : registry_(registry) {}

  // (Re-)materializes `view` over `db`, replacing any stored extent under
  // the same view name.
  Status Refresh(const ViewDefinition& view, const Database& db,
                 const Catalog& catalog);

  // The stored extent; NotFound if the view was never materialized.
  Result<const Table*> Extent(const std::string& view_name) const;

  // Drops a stored extent (for disabled views). Missing names are fine.
  void Drop(const std::string& view_name) { extents_.erase(view_name); }

  bool Has(const std::string& view_name) const {
    return extents_.count(view_name) > 0;
  }
  size_t NumViews() const { return extents_.size(); }

 private:
  const FunctionRegistry* registry_ = nullptr;
  std::map<std::string, Table> extents_;
};

}  // namespace eve

#endif  // EVE_EVE_MATERIALIZATION_H_
