#include "eve/eve_system.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "cvs/explain.h"
#include "esql/binder.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "mkb/evolution.h"
#include "mkb/serializer.h"
#include "sql/parser.h"

namespace eve {

namespace {

// Journal body for view-registration records: "<state>\n<E-SQL text>".
std::string ViewRecordBody(ViewState state, const std::string& text) {
  return std::string(state == ViewState::kActive ? "active" : "disabled") +
         "\n" + text;
}

// Splits a "<word>\n<rest>" journal body.
Status SplitRecordBody(const std::string& body, std::string* head,
                       std::string* rest) {
  const size_t newline = body.find('\n');
  if (newline == std::string::npos) {
    return Status::ParseError("malformed journal record body");
  }
  *head = body.substr(0, newline);
  *rest = body.substr(newline + 1);
  return Status::OK();
}

// Key for the attribute → views index ('\x1f' cannot occur in identifiers).
std::string AttrKey(const std::string& relation, const std::string& attribute) {
  return relation + '\x1f' + attribute;
}

// A count bound (max_cover_combinations, max_extra_relations, candidate
// budget / max results) cut this view's enumeration short: the result may
// be incomplete for a reason other than the top-k bound or the deadline
// token (those stop conditions are reported separately).
bool CountBoundTruncated(const EnumerationStats& stats) {
  if (stats.combos_truncated > 0 || stats.search_sets_cut > 0) return true;
  return !stats.exhausted && !stats.terminated_early && !stats.deadline.partial;
}

// Joins `names` with ", ".
std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

// Strict decimal parse for journal record bodies carrying version ids.
bool ParseDecimalU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string SyncDiagnostics::ToString() const {
  std::string out;
  if (!truncated_views.empty()) {
    out += "truncated views: " + JoinNames(truncated_views);
  }
  if (!deadline_views.empty()) {
    if (!out.empty()) out += "; ";
    out += "deadline views: " + JoinNames(deadline_views);
  }
  if (watchdog_cancels > 0) {
    if (!out.empty()) out += "; ";
    out += "watchdog cancels: " + std::to_string(watchdog_cancels);
  }
  return out;
}

std::string AdmissionStats::ToString() const {
  std::string out = "submitted " + std::to_string(submitted) + ", completed " +
                    std::to_string(completed);
  if (failed > 0) out += " (" + std::to_string(failed) + " failed)";
  out += ", shed " + std::to_string(shed) + ", queued " +
         std::to_string(queued_now);
  return out;
}

size_t ChangeReport::CountOutcome(ViewOutcomeKind kind) const {
  size_t count = 0;
  for (const ViewOutcome& outcome : outcomes) {
    if (outcome.kind == kind) ++count;
  }
  return count;
}

std::string ChangeReport::ToString() const {
  std::ostringstream os;
  os << "change: " << change.ToString() << "\n";
  if (!dropped_constraints.empty()) {
    os << "  dropped constraints:";
    for (const std::string& id : dropped_constraints) os << " " << id;
    os << "\n";
  }
  if (!weakened_constraints.empty()) {
    os << "  weakened constraints:";
    for (const std::string& id : weakened_constraints) os << " " << id;
    os << "\n";
  }
  for (const ViewOutcome& outcome : outcomes) {
    os << "  view " << outcome.view_name << ": ";
    switch (outcome.kind) {
      case ViewOutcomeKind::kUnaffected:
        os << "unaffected";
        break;
      case ViewOutcomeKind::kRewritten:
        os << "rewritten";
        break;
      case ViewOutcomeKind::kDisabled:
        os << "DISABLED";
        break;
    }
    if (!outcome.detail.empty()) os << " — " << outcome.detail;
    if (!outcome.provisional_sources.empty()) {
      os << " [provisional:";
      for (const std::string& source : outcome.provisional_sources) {
        os << " " << source;
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  os << "recovery: replayed " << replayed << ", skipped " << skipped
     << ", discarded " << discarded;
  if (torn_tail) {
    os << ", journal tail was torn (" << torn_bytes << " byte(s) dropped)";
  }
  os << "\n";
  for (const std::string& note : notes) os << "  " << note << "\n";
  return os.str();
}

std::string DryRunReport::ToString() const {
  std::ostringstream os;
  os << "dry-run against version " << base_version << " (nothing applied)\n"
     << report.ToString();
  const std::string sync = diagnostics.ToString();
  if (!sync.empty()) os << "sync: " << sync << "\n";
  return os.str();
}

EveSystem::EveSystem(Mkb mkb, CvsOptions options)
    : options_(std::move(options)) {
  mkb_tip_ = std::make_shared<const Mkb>(std::move(mkb));
  versions_.Reset(mkb_tip_, SaveViews(*this), "initial");
}

uint64_t EveSystem::CommitVersion(const std::string& change_desc) {
  if (versioning_mode_ == VersioningMode::kMkbOnly) {
    return versions_.CommitSharedViews(mkb_tip_, change_desc);
  }
  return versions_.Commit(mkb_tip_, SaveViews(*this), change_desc);
}

Status EveSystem::JournalAppend(const JournalRecord& record) {
  if (journal_ == nullptr) return Status::OK();
  return journal_->Append(record.kind, record.body);
}

Status EveSystem::ExtendMkb(std::string_view misd_text) {
  Mkb extended = *mkb_tip_;
  EVE_RETURN_IF_ERROR(AppendMisd(&extended, misd_text));
  EVE_RETURN_IF_ERROR(JournalAppend(
      {JournalRecordKind::kExtendMkb, std::string(misd_text)}));
  mkb_tip_ = std::make_shared<const Mkb>(std::move(extended));
  CommitVersion("extend-mkb");
  EVE_FAILPOINT(fp::kExtendMkbAfterJournal);
  return Status::OK();
}

Status EveSystem::RetractConstraint(const std::string& id) {
  Mkb next = *mkb_tip_;
  EVE_RETURN_IF_ERROR(next.RemoveConstraint(id));
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kRetractConstraint, id}));
  mkb_tip_ = std::make_shared<const Mkb>(std::move(next));
  CommitVersion("retract " + id);
  EVE_FAILPOINT(fp::kRetractConstraintAfterJournal);
  return Status::OK();
}

Status EveSystem::RegisterView(const ViewDefinition& view) {
  if (view.name().empty()) {
    return Status::InvalidArgument("view needs a non-empty name");
  }
  if (views_.count(view.name()) > 0) {
    return Status::AlreadyExists("view already registered: " + view.name());
  }
  // Re-validate against the current MKB state.
  EVE_ASSIGN_OR_RETURN(ViewDefinition bound,
                       BindView(view.ToParsedView(), mkb().catalog()));
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kRegisterView,
                     ViewRecordBody(ViewState::kActive, bound.ToString())}));
  RegisteredView registered;
  registered.definition = std::move(bound);
  // The registration itself commits the version the view is validated
  // against; replay re-stamps the same id because version commits replay
  // deterministically.
  registered.synced_at_version = versions_.NextId();
  const auto [it, inserted] = views_.emplace(view.name(), std::move(registered));
  IndexView(view.name(), it->second.definition);
  CommitVersion("register view " + view.name());
  EVE_FAILPOINT(fp::kRegisterViewAfterJournal);
  return Status::OK();
}

Status EveSystem::RestoreView(ViewDefinition definition, ViewState state,
                              uint64_t synced_at_version) {
  if (definition.name().empty()) {
    return Status::InvalidArgument("view needs a non-empty name");
  }
  if (views_.count(definition.name()) > 0) {
    return Status::AlreadyExists("view already registered: " +
                                 definition.name());
  }
  std::string head(state == ViewState::kActive ? "active" : "disabled");
  if (synced_at_version != 0) {
    head += "@" + std::to_string(synced_at_version);
  }
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kRegisterView,
                     head + "\n" + definition.ToString()}));
  const std::string name = definition.name();
  RegisteredView registered;
  registered.definition = std::move(definition);
  registered.state = state;
  registered.synced_at_version = synced_at_version;
  const auto [it, inserted] = views_.emplace(name, std::move(registered));
  IndexView(name, it->second.definition);
  CommitVersion("restore view " + name);
  return Status::OK();
}

Status EveSystem::RegisterViewText(std::string_view text) {
  EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
  EVE_ASSIGN_OR_RETURN(const ViewDefinition bound,
                       BindView(parsed, mkb().catalog()));
  return RegisterView(bound);
}

Status EveSystem::RegisterViewsBulk(const std::vector<ViewDefinition>& views) {
  if (views.empty()) return Status::OK();
  // Validate and bind the whole batch before journaling anything: a bad
  // view aborts with the system (and the journal) untouched.
  std::vector<ViewDefinition> bound;
  bound.reserve(views.size());
  std::set<std::string> batch_names;
  for (const ViewDefinition& view : views) {
    if (view.name().empty()) {
      return Status::InvalidArgument("view needs a non-empty name");
    }
    if (views_.count(view.name()) > 0 ||
        !batch_names.insert(view.name()).second) {
      return Status::AlreadyExists("view already registered: " + view.name());
    }
    EVE_ASSIGN_OR_RETURN(ViewDefinition rebound,
                         BindView(view.ToParsedView(), mkb().catalog()));
    bound.push_back(std::move(rebound));
  }
  // One record for the whole batch, in the SaveViews block format so
  // replay parses it with the same grammar as checkpoint pools.
  std::string body;
  for (const ViewDefinition& view : bound) {
    body += "-- VIEW active\n";
    body += view.ToString();
    body += ";\n\n";
  }
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kRegisterViewsBulk, body}));
  const uint64_t stamp = versions_.NextId();
  for (ViewDefinition& view : bound) {
    const std::string name = view.name();
    RegisteredView registered;
    registered.definition = std::move(view);
    registered.synced_at_version = stamp;
    const auto [it, inserted] = views_.emplace(name, std::move(registered));
    IndexView(name, it->second.definition);
  }
  CommitVersion("register " + std::to_string(bound.size()) + " views (bulk)");
  EVE_FAILPOINT(fp::kRegisterViewAfterJournal);
  return Status::OK();
}

Result<const RegisteredView*> EveSystem::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  return &it->second;
}

Status EveSystem::SetViewState(const std::string& name, ViewState state) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kSetViewState,
                     std::string(state == ViewState::kActive ? "active"
                                                             : "disabled") +
                         "\n" + name}));
  it->second.state = state;
  CommitVersion("set view state " + name);
  return Status::OK();
}

std::vector<std::string> EveSystem::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

size_t EveSystem::NumActiveViews() const {
  size_t count = 0;
  for (const auto& [name, view] : views_) {
    if (view.state == ViewState::kActive) ++count;
  }
  return count;
}

void EveSystem::IndexView(const std::string& name,
                          const ViewDefinition& definition) {
  for (const std::string& relation : definition.ReferencedRelations()) {
    views_by_relation_[relation].insert(name);
  }
  for (const AttributeRef& ref : definition.ReferencedAttributes()) {
    views_by_attribute_[AttrKey(ref.relation, ref.attribute)].insert(name);
  }
}

void EveSystem::UnindexView(const std::string& name,
                            const ViewDefinition& definition) {
  for (const std::string& relation : definition.ReferencedRelations()) {
    const auto it = views_by_relation_.find(relation);
    if (it == views_by_relation_.end()) continue;
    it->second.erase(name);
    if (it->second.empty()) views_by_relation_.erase(it);
  }
  for (const AttributeRef& ref : definition.ReferencedAttributes()) {
    const auto it =
        views_by_attribute_.find(AttrKey(ref.relation, ref.attribute));
    if (it == views_by_attribute_.end()) continue;
    it->second.erase(name);
    if (it->second.empty()) views_by_attribute_.erase(it);
  }
}

void EveSystem::RebuildViewIndex() {
  views_by_relation_.clear();
  views_by_attribute_.clear();
  for (const auto& [name, view] : views_) IndexView(name, view.definition);
}

std::vector<std::string> EveSystem::AffectedViews(
    const CapabilityChange& change) const {
  std::vector<std::string> affected;
  const std::set<std::string>* candidates = nullptr;
  switch (change.kind) {
    case CapabilityChange::Kind::kDeleteRelation:
    case CapabilityChange::Kind::kRenameRelation: {
      const auto it = views_by_relation_.find(change.relation);
      if (it != views_by_relation_.end()) candidates = &it->second;
      break;
    }
    case CapabilityChange::Kind::kDeleteAttribute:
    case CapabilityChange::Kind::kRenameAttribute: {
      const auto it = views_by_attribute_.find(
          AttrKey(change.relation, change.attribute));
      if (it != views_by_attribute_.end()) candidates = &it->second;
      break;
    }
    case CapabilityChange::Kind::kAddRelation:
    case CapabilityChange::Kind::kAddAttribute:
      break;  // purely additive changes affect no view
  }
  if (candidates == nullptr) return affected;
  affected.reserve(candidates->size());
  for (const std::string& name : *candidates) {  // std::set: name-sorted
    const auto it = views_.find(name);
    if (it != views_.end() && it->second.state == ViewState::kActive) {
      affected.push_back(name);
    }
  }
  return affected;
}

void EveSystem::SetSyncParallelism(size_t threads) {
  sync_parallelism_ = threads;
  if (threads <= 1) {
    sync_pool_.reset();
  } else {
    // The calling thread participates in ParallelFor, so the pool carries
    // one worker fewer than the requested parallelism.
    sync_pool_ = std::make_shared<ThreadPool>(threads - 1);
  }
}

Result<EveSystem::PreparedChange> EveSystem::PrepareChange(
    const CapabilityChange& change) const {
  EVE_FAILPOINT(fp::kApplyChangeBeforeJournal);
  PreparedChange prepared;
  prepared.change = change;
  ChangeReport& report = prepared.report;
  report.change = change;

  // Pin the tip: the whole prepare reads this one immutable version, so a
  // concurrent reader (or the dry-run caller) can never observe a torn MKB.
  const PinnedMkb base = versions_.Tip();
  prepared.base_version = base.id();

  // Step 1: evolve the MKB.
  EVE_ASSIGN_OR_RETURN(MkbEvolutionReport evolution,
                       EvolveMkb(*base.mkb, change));
  report.dropped_constraints = evolution.dropped_constraints;
  report.weakened_constraints = evolution.weakened_constraints;
  EVE_FAILPOINT(fp::kApplyChangeAfterMkbEvolve);

  // Step 2: detect affected views.
  const std::vector<std::string> affected = AffectedViews(change);
  prepared.affected = affected;
  if (options_.report_unaffected) {
    for (const auto& [name, view] : views_) {
      if (view.state != ViewState::kActive) continue;
      const bool is_affected =
          std::binary_search(affected.begin(), affected.end(), name);
      if (!is_affected) {
        report.outcomes.push_back(
            ViewOutcome{name, ViewOutcomeKind::kUnaffected, "", {}});
      }
    }
  }

  // Step 3: synchronize each affected view. All mutations land on a delta
  // map holding just the affected views, so discarding the PreparedChange
  // (the dry-run/abort path) leaves this system untouched and a prepare
  // costs O(affected), not O(pool); the delta, the evolved MKB and the log
  // entry commit together in CommitPrepared.
  //
  // The per-view CVS runs are independent of each other: they read the
  // shared SyncContext (MKB, MKB', and the lazily built join graph of
  // MKB') and write private result slots, so they fan out across the sync
  // pool. Everything order-dependent — outcome assembly, journaling, the
  // commit — happens on this thread in view-name order, making the
  // result byte-identical at any parallelism.
  std::map<std::string, RegisteredView> next_views;
  for (const std::string& name : affected) {
    next_views.emplace(name, views_.at(name));
  }
  prepared.next_mkb = std::make_shared<const Mkb>(std::move(evolution.mkb));
  const SyncContext context(base.mkb, prepared.next_mkb,
                            prepared.base_version);

  // Deadline tokens: one cancellable root per change, one child per
  // affected view. The logical work budget lives on the CHILDREN — each
  // view's token is spent entirely by the thread running that view, so
  // budget stops land on the same enumeration step at any parallelism.
  // Tokens are created here, on the calling thread, in slot (name) order.
  const Clock* clock = sync_clock_ != nullptr ? sync_clock_ : SteadyClock();
  const bool deadline_active = sync_work_budget_ != 0 ||
                               sync_deadline_micros_ != 0 ||
                               sync_watchdog_micros_ != 0;
  DeadlineToken root;
  std::vector<DeadlineToken> tokens(affected.size());
  if (deadline_active) {
    const uint64_t absolute_deadline =
        sync_deadline_micros_ != 0 ? clock->NowMicros() + sync_deadline_micros_
                                   : 0;
    root = DeadlineToken::Root({0, absolute_deadline}, clock);
    for (size_t i = 0; i < affected.size(); ++i) {
      tokens[i] = root.Child({sync_work_budget_, absolute_deadline});
    }
    std::lock_guard<std::mutex> lock(*sync_token_mu_);
    active_sync_token_ = root;
  }

  // Watchdog backstop: always real time, independent of the injected
  // clock — its whole job is to catch a sync wedged while the virtual
  // clock (or a stuck cooperative loop) never advances.
  struct WatchdogState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool fired = false;
  };
  std::shared_ptr<WatchdogState> watchdog_state;
  std::thread watchdog;
  if (deadline_active && sync_watchdog_micros_ != 0) {
    watchdog_state = std::make_shared<WatchdogState>();
    watchdog = std::thread(
        [ws = watchdog_state, watched = root, micros = sync_watchdog_micros_] {
          std::unique_lock<std::mutex> lock(ws->mu);
          if (!ws->cv.wait_for(lock, std::chrono::microseconds(micros),
                               [&] { return ws->done; })) {
            watched.Cancel();
            ws->fired = true;
          }
        });
  }

  std::vector<std::optional<Result<CvsResult>>> slots(affected.size());
  std::vector<std::exception_ptr> crashes(affected.size());
  ParallelFor(sync_pool_.get(), affected.size(), [&](size_t i) {
    try {
      // Cancellation safe point and failpoint at the top of every per-view
      // task: an injected error fails just this view's synchronization; an
      // injected crash is parked here and rethrown on the calling thread
      // (lowest slot first) once the fan-out has drained — tasks must
      // never let exceptions escape into the pool.
      const Status injected = Failpoints::Instance().Hit(fp::kSyncViewStart);
      if (!injected.ok()) {
        slots[i].emplace(injected);
        return;
      }
      CvsOptions view_options = options_;
      view_options.replacement.token = tokens[i];
      slots[i].emplace(Synchronize(views_.at(affected[i]).definition, change,
                                   context, view_options));
    } catch (...) {
      crashes[i] = std::current_exception();
    }
  });
  if (watchdog_state != nullptr) {
    {
      std::lock_guard<std::mutex> lock(watchdog_state->mu);
      watchdog_state->done = true;
    }
    watchdog_state->cv.notify_all();
    watchdog.join();
  }
  if (deadline_active) {
    std::lock_guard<std::mutex> lock(*sync_token_mu_);
    active_sync_token_ = DeadlineToken();
  }
  for (std::exception_ptr& crash : crashes) {
    if (crash != nullptr) std::rethrow_exception(crash);
  }

  EnumerationStats sync_stats;
  sync_stats.exhausted = true;  // MergeFrom ANDs; vacuously true for none
  SyncDiagnostics diagnostics;
  if (watchdog_state != nullptr && watchdog_state->fired) {
    diagnostics.watchdog_cancels = 1;
  }
  for (size_t slot = 0; slot < affected.size(); ++slot) {
    const std::string& name = affected[slot];
    RegisteredView& registered = next_views.at(name);
    EVE_RETURN_IF_ERROR(slots[slot]->status());
    const CvsResult result = slots[slot]->MoveValue();
    sync_stats.MergeFrom(result.enumeration);
    // `affected` is name-sorted, so both lists come out deterministic.
    if (result.enumeration.deadline.partial) {
      diagnostics.deadline_views.push_back(name);
      EVE_FAILPOINT(fp::kSyncDeadlineExpired);
    } else if (CountBoundTruncated(result.enumeration)) {
      diagnostics.truncated_views.push_back(name);
    }
    if (result.ViewPreserved()) {
      const SynchronizedView& best = result.rewritings.front();
      const RewritingExplanation explanation =
          ExplainRewriting(registered.definition, best);
      ViewDefinition rewritten = best.view;
      rewritten.set_name(name);  // keep the registered name
      registered.definition = std::move(rewritten);
      registered.history.push_back("rewritten under " + change.ToString());
      std::string detail = best.is_drop ? "drop-based" : "replacement-based";
      detail += ", extent " + std::string(ExtentRelationToString(
                                  best.legality.inferred_extent));
      if (!explanation.replaced_attributes.empty()) {
        detail += "; replaced " +
                  std::to_string(explanation.replaced_attributes.size()) +
                  " attribute(s)";
      }
      if (!explanation.dropped_attributes.empty()) {
        detail += "; dropped " +
                  std::to_string(explanation.dropped_attributes.size()) +
                  " attribute(s)";
      }
      if (!explanation.added_relations.empty()) {
        detail += "; joined in";
        for (const std::string& rel : explanation.added_relations) {
          detail += " " + rel;
        }
      }
      // Degraded-mode bookkeeping: when the chosen rewriting leans on a
      // SUSPECT/QUARANTINED source, its constraints came from that source's
      // last-known snapshot, so the rewriting is provisional until the
      // source heals (SetSourceMembership clears the marks) or departs.
      const std::vector<std::string> degraded =
          DegradedSourcesOf(registered.definition, prepared.next_mkb->catalog());
      registered.provisional_sources =
          std::set<std::string>(degraded.begin(), degraded.end());
      ViewOutcome outcome{name, ViewOutcomeKind::kRewritten, detail, {}};
      outcome.provisional_sources = degraded;
      report.outcomes.push_back(std::move(outcome));
      prepared.verdicts.emplace(name, best.legality.inferred_extent);
    } else {
      registered.state = ViewState::kDisabled;
      registered.provisional_sources.clear();
      registered.history.push_back("disabled under " + change.ToString());
      std::string detail;
      for (const std::string& diagnostic : result.diagnostics) {
        if (!detail.empty()) detail += "; ";
        detail += diagnostic;
      }
      report.outcomes.push_back(
          ViewOutcome{name, ViewOutcomeKind::kDisabled, detail, {}});
    }
    // Rewritten or disabled, the view was synchronized against `base` and
    // will carry the version this change commits (base + 1).
    registered.synced_at_version = prepared.base_version + 1;
  }
  last_sync_stats_ = sync_stats;
  last_sync_diagnostics_ = std::move(diagnostics);
  prepared.next_views = std::move(next_views);
  EVE_FAILPOINT(fp::kPrepareChangeComplete);
  return prepared;
}

Result<ChangeReport> EveSystem::CommitPrepared(PreparedChange prepared) {
  if (prepared.base_version != versions_.tip_id()) {
    return Status::FailedPrecondition(
        "MKB advanced since prepare: prepared against version " +
        std::to_string(prepared.base_version) + ", tip is " +
        std::to_string(versions_.tip_id()));
  }
  // Write-ahead: the change record must be durable before any of the
  // in-memory state commits.
  EVE_FAILPOINT(fp::kApplyChangeBeforeCommit);
  EVE_RETURN_IF_ERROR(JournalAppend({JournalRecordKind::kApplyChange,
                                     SerializeChange(prepared.change)}));
  // Once the change record is durable, replay WILL commit — so a failure
  // writing the (validation-only) version marker, or an injected ERROR at
  // the swap site, must not stop the in-memory commit: the error is
  // deferred past the swap and models a response lost after commit. A
  // simulated CRASH may throw here: recovery replays to the post state.
  Status deferred =
      JournalAppend({JournalRecordKind::kVersionCommit,
                     std::to_string(prepared.base_version + 1)});
  const Status swap_hit = Failpoints::Instance().Hit(fp::kVersionBeforeSwap);
  if (deferred.ok()) deferred = swap_hit;
  // The materialization hook needs the pre-change definitions after the
  // swap below overwrites them (IncrementalRefresh diffs old vs new).
  std::map<std::string, ViewDefinition> old_defs;
  if (mat_store_ != nullptr && mat_db_ != nullptr) {
    for (const std::string& name : prepared.affected) {
      old_defs.emplace(name, views_.at(name).definition);
    }
  }
  // Re-index the synchronized views: out with the pre-change definitions,
  // in with the rewritten ones (a disabled view keeps its definition and
  // thus its index entries). next_views is a delta of just the affected
  // views; unaffected entries are untouched.
  for (const std::string& name : prepared.affected) {
    UnindexView(name, views_.at(name).definition);
  }
  mkb_tip_ = prepared.next_mkb;
  for (auto& [name, synced] : prepared.next_views) {
    views_.at(name) = std::move(synced);
  }
  for (const std::string& name : prepared.affected) {
    IndexView(name, views_.at(name).definition);
  }
  change_log_.push_back(prepared.report);
  if (prepared.affected.empty() && prepared.next_views.empty()) {
    // No view record changed, so the tip's VIEWS segment is still this
    // pool's exact rendering: share it instead of re-rendering O(pool)
    // bytes. Replica shards whose view partition a change does not touch
    // commit in O(MKB) through this path, which is where the sharded
    // serving core's aggregate commit throughput comes from.
    versions_.CommitSharedViews(mkb_tip_, prepared.change.ToString());
  } else {
    CommitVersion(prepared.change.ToString());
  }
  const Status after = Failpoints::Instance().Hit(fp::kVersionAfterSwap);
  if (deferred.ok()) deferred = after;
  // Post-commit data-plane propagation: the control plane is committed, so
  // a materialization failure is deferred (stale extent, explicit error)
  // rather than rolled back.
  if (mat_store_ != nullptr && mat_db_ != nullptr) {
    const Status mat = SyncMaterialization(prepared, old_defs);
    if (deferred.ok()) deferred = mat;
  }
  // Past this point the change is committed both durably and in memory; an
  // injected error here models a response lost after commit.
  EVE_FAILPOINT(fp::kApplyChangeAfterJournal);
  if (!deferred.ok()) return deferred;
  return std::move(prepared.report);
}

Status EveSystem::SyncMaterialization(
    const PreparedChange& prepared,
    const std::map<std::string, ViewDefinition>& old_defs) {
  // Evolve the base tables first so delta queries and fallback refreshes
  // run against post-change data.
  EVE_RETURN_IF_ERROR(ApplyChangeToDatabase(prepared.change, mat_db_));
  const Catalog& catalog = mkb().catalog();
  Status first = Status::OK();
  for (const std::string& name : prepared.affected) {
    const RegisteredView& view = views_.at(name);
    if (view.state == ViewState::kDisabled) {
      mat_store_->Drop(name);
      continue;
    }
    if (!mat_store_->Has(name)) continue;  // never materialized: stay lazy
    const auto it = prepared.verdicts.find(name);
    const ExtentRelation verdict =
        it == prepared.verdicts.end() ? ExtentRelation::kUnknown : it->second;
    const Status refreshed = mat_store_->IncrementalRefresh(
        old_defs.at(name), view.definition, verdict, *mat_db_, catalog);
    if (first.ok()) first = refreshed;
  }
  return first;
}

Result<ChangeReport> EveSystem::ApplyChange(const CapabilityChange& change) {
  EVE_ASSIGN_OR_RETURN(PreparedChange prepared, PrepareChange(change));
  return CommitPrepared(std::move(prepared));
}

Result<ChangeReport> EveSystem::PreviewChange(
    const CapabilityChange& change) const {
  // The prepare phase IS the preview: full CVS into private state, then
  // the result is discarded instead of committed. No scratch copy, no
  // journal writes, no version churn.
  EVE_ASSIGN_OR_RETURN(PreparedChange prepared, PrepareChange(change));
  return std::move(prepared.report);
}

Result<DryRunReport> EveSystem::DryRunChange(
    const CapabilityChange& change) const {
  EVE_ASSIGN_OR_RETURN(PreparedChange prepared, PrepareChange(change));
  DryRunReport dry;
  dry.base_version = prepared.base_version;
  dry.report = std::move(prepared.report);
  dry.diagnostics = last_sync_diagnostics_;
  return dry;
}

Result<DryRunReport> EveSystem::DryRunChangeAt(const CapabilityChange& change,
                                               uint64_t version) const {
  if (versioning_mode_ == VersioningMode::kMkbOnly &&
      version != versions_.tip_id()) {
    return Status::FailedPrecondition(
        "dry-run at a non-tip version requires full-snapshot versioning "
        "(the store is in MKB-only mode)");
  }
  if (version == versions_.tip_id()) return DryRunChange(change);
  // A what-if against an older version: rehearse the real flow (rollback,
  // then apply) on a scratch copy. The scratch shares the immutable version
  // segments, detaches the journal, and is discarded wholesale.
  EveSystem scratch(*this);
  scratch.journal_ = nullptr;
  EVE_RETURN_IF_ERROR(scratch.RollbackToVersion(version).status());
  EVE_ASSIGN_OR_RETURN(PreparedChange prepared, scratch.PrepareChange(change));
  last_sync_stats_ = scratch.last_sync_stats_;
  last_sync_diagnostics_ = scratch.last_sync_diagnostics_;
  DryRunReport dry;
  // The scratch rollback minted a fresh version id; report the version the
  // caller asked about, since that is whose content the run was based on.
  dry.base_version = version;
  dry.report = std::move(prepared.report);
  dry.diagnostics = last_sync_diagnostics_;
  return dry;
}

Result<uint64_t> EveSystem::RollbackToVersion(uint64_t version) {
  if (versioning_mode_ == VersioningMode::kMkbOnly) {
    return Status::FailedPrecondition(
        "rollback requires full-snapshot versioning (the store is in "
        "MKB-only mode: versions do not retain the view pool)");
  }
  if (!versions_.HasVersion(version)) {
    return Status::NotFound("no retained version " + std::to_string(version) +
                            " (tip is " + std::to_string(versions_.tip_id()) +
                            ")");
  }
  EVE_FAILPOINT(fp::kRollbackBeforeJournal);
  // Stage everything fallible BEFORE the journal append: rebuild the pool
  // in a scratch system bound against the pinned MKB, so a reparse/load
  // failure (or an injected fault inside the loader) aborts with zero side
  // effects and nothing durable. Past the append, the commit is pure
  // pointer/map swaps that cannot fail — memory can never fall behind a
  // durable kRollback record.
  EVE_ASSIGN_OR_RETURN(const PinnedMkb pinned, versions_.Pin(version));
  EVE_ASSIGN_OR_RETURN(const std::string views_text,
                       versions_.ViewsAt(version));
  EveSystem loader(Mkb(*pinned.mkb));
  EVE_RETURN_IF_ERROR(LoadViews(views_text, &loader));
  EVE_RETURN_IF_ERROR(JournalAppend(
      {JournalRecordKind::kRollback, std::to_string(version)}));
  // Journaled but not yet applied: an injected ERROR must still apply
  // (replay would), so it is deferred past the restore; a CRASH throws and
  // recovery replays the rollback.
  Status deferred = Failpoints::Instance().Hit(fp::kRollbackAfterJournal);
  // Surviving views keep their history: SaveViews does not persist it, so
  // the restored pool alone would come back blank. The live map is the
  // deterministic source — replay rebuilds the same histories.
  std::map<std::string, std::vector<std::string>> histories;
  for (const auto& [name, view] : views_) histories[name] = view.history;
  mkb_tip_ = pinned.mkb;
  views_ = std::move(loader.views_);
  RebuildViewIndex();
  for (auto& [name, view] : views_) {
    const auto it = histories.find(name);
    if (it != histories.end()) view.history = it->second;
    view.history.push_back("rolled back to version " +
                           std::to_string(version));
  }
  const uint64_t new_version =
      CommitVersion("rollback to version " + std::to_string(version));
  const Status after = Failpoints::Instance().Hit(fp::kRollbackAfterRestore);
  if (deferred.ok()) deferred = after;
  if (!deferred.ok()) return deferred;
  return new_version;
}

VersionScrubStats EveSystem::ScrubVersions() const {
  VersionScrubStats stats = versions_.Scrub();
  // Every view's synced-at stamp must name a retained version.
  for (const auto& [name, view] : views_) {
    if (view.synced_at_version >= versions_.NextId()) {
      ++stats.corruptions;
      stats.findings.push_back(
          "view " + name + ": synced_at_version " +
          std::to_string(view.synced_at_version) +
          " names a version that was never committed (next id " +
          std::to_string(versions_.NextId()) + ")");
    }
  }
  // The live MKB must re-render byte-identically to the tip version's MISD
  // segments — catches a tip pointer / version chain split-brain.
  const std::array<std::string, 4> live = RenderMkbSegments(*mkb_tip_);
  const PinnedMkb tip = versions_.Tip();
  if (tip.version != nullptr && tip.version->segments.size() >= live.size()) {
    for (size_t i = 0; i < live.size(); ++i) {
      const auto& segment = tip.version->segments[i];
      if (segment != nullptr && segment->body != live[i]) {
        ++stats.corruptions;
        stats.findings.push_back("live MKB diverges from tip version " +
                                 std::to_string(tip.id()) + " segment " +
                                 segment->name);
      }
    }
  }
  return stats;
}

Status EveSystem::SetViewSyncedVersion(const std::string& name,
                                       uint64_t version) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  it->second.synced_at_version = version;
  return Status::OK();
}

Status EveSystem::RestoreVersionStore(MkbVersionStore store) {
  // The checkpoint's MKB section and its VERSIONS tip must agree; view
  // text may legitimately diverge (heal-time provisional un-marking does
  // not commit versions), so only the MKB is cross-checked.
  const PinnedMkb tip = store.Tip();
  if (tip.mkb == nullptr || SaveMkb(*tip.mkb) != SaveMkb(*mkb_tip_)) {
    return Status::ParseError(
        "checkpoint VERSIONS tip does not re-render to the MKB section");
  }
  versions_ = store;
  mkb_tip_ = versions_.Tip().mkb;
  return Status::OK();
}

void EveSystem::CancelActiveSync() const {
  std::lock_guard<std::mutex> lock(*sync_token_mu_);
  active_sync_token_.Cancel();  // no-op on a null token
}

Status EveSystem::EnqueueChange(const CapabilityChange& change) {
  // Producers from any thread share admission_mu_ with the drain's
  // bookkeeping, so every counter transition is atomic with its queue
  // transition and the shedding invariant holds at every instant.
  std::lock_guard<std::mutex> lock(*admission_mu_);
  ++admission_stats_.submitted;
  // Failpoint before the capacity check: an injected error models an
  // admission layer rejecting under external pressure — the change is shed
  // (counted, explicit error), never half-admitted.
  const Status injected = Failpoints::Instance().Hit(fp::kAdmissionEnqueue);
  if (!injected.ok()) {
    ++admission_stats_.shed;
    return injected;
  }
  if (sync_queue_limit_ != 0 && sync_queue_.size() >= sync_queue_limit_) {
    ++admission_stats_.shed;
    return Status::ResourceExhausted(
        "sync queue full (limit " + std::to_string(sync_queue_limit_) +
        "): change shed — drain the queue or raise the limit");
  }
  sync_queue_.push_back(change);
  admission_stats_.queued_now = sync_queue_.size();
  return Status::OK();
}

Result<std::vector<ChangeReport>> EveSystem::DrainSyncQueue() {
  // One drainer at a time; enqueues stay concurrent. The change being
  // applied is popped only when its outcome is recorded, so a sampled
  // admission_stats() never sees it half-accounted.
  std::lock_guard<std::mutex> drain_lock(*drain_mu_);
  std::vector<ChangeReport> reports;
  while (true) {
    CapabilityChange change;
    {
      std::lock_guard<std::mutex> lock(*admission_mu_);
      if (sync_queue_.empty()) break;
      // Failpoint before each application: an injected error stops the
      // drain with the change (and the rest of the queue) still admitted
      // for a retry.
      const Status injected = Failpoints::Instance().Hit(fp::kAdmissionDrain);
      if (!injected.ok()) {
        admission_stats_.queued_now = sync_queue_.size();
        return injected;
      }
      change = sync_queue_.front();
    }
    // Each drained change runs under its own fresh deadline (ApplyChange
    // builds the token tree from the current knobs). Runs outside
    // admission_mu_ so producers are never blocked by a long sync.
    Result<ChangeReport> report = ApplyChange(change);
    {
      std::lock_guard<std::mutex> lock(*admission_mu_);
      sync_queue_.pop_front();
      ++admission_stats_.completed;
      if (!report.ok()) {
        // The change was consumed (completed, failed); the remainder stays
        // queued for a later drain.
        ++admission_stats_.failed;
      }
      admission_stats_.queued_now = sync_queue_.size();
    }
    if (!report.ok()) return report.status();
    reports.push_back(report.MoveValue());
  }
  return reports;
}

Result<std::vector<ChangeReport>> EveSystem::ApplyChanges(
    const std::vector<CapabilityChange>& changes, bool transactional) {
  // Snapshot for rollback: all state members are value types (the version
  // store copy shares its immutable segments, so it is cheap).
  MkbVersionStore versions_snapshot;
  std::shared_ptr<const Mkb> tip_snapshot;
  std::map<std::string, RegisteredView> views_snapshot;
  std::vector<ChangeReport> log_snapshot;
  if (transactional) {
    versions_snapshot = versions_;
    tip_snapshot = mkb_tip_;
    views_snapshot = views_;
    log_snapshot = change_log_;
    // Bracket the batch so replay discards it unless the commit marker
    // lands: a crash mid-batch recovers to the pre-batch state, mirroring
    // the in-memory rollback below.
    EVE_RETURN_IF_ERROR(
        JournalAppend({JournalRecordKind::kBeginBatch, ""}));
  }
  std::vector<ChangeReport> reports;
  reports.reserve(changes.size());
  for (const CapabilityChange& change : changes) {
    Status injected = Status::OK();
    if (!reports.empty()) {
      injected = Failpoints::Instance().Hit(fp::kApplyChangesMidBatch);
    }
    Result<ChangeReport> report =
        injected.ok() ? ApplyChange(change) : Result<ChangeReport>(injected);
    if (!report.ok()) {
      if (transactional) {
        versions_ = std::move(versions_snapshot);
        mkb_tip_ = std::move(tip_snapshot);
        views_ = std::move(views_snapshot);
        change_log_ = std::move(log_snapshot);
        RebuildViewIndex();
        EVE_RETURN_IF_ERROR(
            JournalAppend({JournalRecordKind::kAbortBatch, ""}));
      }
      return Status(report.status().code(),
                    "batch aborted at '" + change.ToString() +
                        "': " + report.status().message());
    }
    reports.push_back(report.MoveValue());
  }
  if (transactional) {
    const Status committed = JournalAppend({JournalRecordKind::kCommitBatch, ""});
    if (!committed.ok()) {
      // The commit marker never reached disk, so replay will discard the
      // batch; roll back memory to match that outcome.
      versions_ = std::move(versions_snapshot);
      mkb_tip_ = std::move(tip_snapshot);
      views_ = std::move(views_snapshot);
      change_log_ = std::move(log_snapshot);
      RebuildViewIndex();
      return committed;
    }
  }
  return reports;
}

Result<std::vector<ChangeReport>> EveSystem::SourceLeaves(
    const std::string& source) {
  return LeaveCascade(source, /*require_relations=*/true);
}

Result<std::vector<ChangeReport>> EveSystem::DepartSource(
    const std::string& source) {
  return LeaveCascade(source, /*require_relations=*/false);
}

Result<std::vector<ChangeReport>> EveSystem::LeaveCascade(
    const std::string& source, bool require_relations) {
  const std::vector<std::string> relations =
      mkb().catalog().RelationsOfSource(source);
  if (relations.empty() && require_relations) {
    return Status::NotFound("no relations exported by source: " + source);
  }
  // The cascade is one transaction: the per-relation changes (and the
  // DEPARTED membership row of a tracked source) commit together or not at
  // all. Snapshot for rollback — all state members are value types — and
  // bracket the journal records as a batch so a crash mid-cascade replays
  // to the pre-leave state, mirroring the in-memory rollback.
  MkbVersionStore versions_snapshot = versions_;
  std::shared_ptr<const Mkb> tip_snapshot = mkb_tip_;
  std::map<std::string, RegisteredView> views_snapshot = views_;
  std::vector<ChangeReport> log_snapshot = change_log_;
  std::map<std::string, federation::SourceMembership> membership_snapshot =
      membership_;
  const auto rollback = [&] {
    versions_ = std::move(versions_snapshot);
    mkb_tip_ = std::move(tip_snapshot);
    views_ = std::move(views_snapshot);
    change_log_ = std::move(log_snapshot);
    membership_ = std::move(membership_snapshot);
    RebuildViewIndex();
  };
  EVE_RETURN_IF_ERROR(JournalAppend({JournalRecordKind::kBeginBatch, ""}));
  const auto abort = [&](const Status& cause) -> Status {
    rollback();
    EVE_RETURN_IF_ERROR(JournalAppend({JournalRecordKind::kAbortBatch, ""}));
    return cause;
  };
  std::vector<ChangeReport> reports;
  reports.reserve(relations.size());
  for (const std::string& relation : relations) {
    Status injected = Status::OK();
    if (!reports.empty()) {
      injected = Failpoints::Instance().Hit(fp::kSourceLeavesBetweenChanges);
    }
    Result<ChangeReport> report =
        injected.ok() ? ApplyChange(CapabilityChange::DeleteRelation(relation))
                      : Result<ChangeReport>(injected);
    if (!report.ok()) {
      return abort(Status(report.status().code(),
                          "source-leave cascade aborted at '" + relation +
                              "': " + report.status().message()));
    }
    reports.push_back(report.MoveValue());
  }
  if (membership_.count(source) > 0) {
    // The monitor must not keep probing a departed source; the row rides
    // in the batch so it vanishes with a rolled-back cascade.
    federation::SourceMembership departed = membership_.at(source);
    departed.state = federation::SourceState::kDeparted;
    const Status recorded = SetSourceMembership(source, departed);
    if (!recorded.ok()) return abort(recorded);
  }
  const Status late = Failpoints::Instance().Hit(fp::kSourceLeavesBeforeCommit);
  if (!late.ok()) return abort(late);
  const Status committed =
      JournalAppend({JournalRecordKind::kCommitBatch, ""});
  if (!committed.ok()) {
    // The commit marker never reached disk, so replay will discard the
    // batch; roll back memory to match that outcome.
    rollback();
    return committed;
  }
  return reports;
}

Status EveSystem::SetSourceMembership(
    const std::string& source,
    const federation::SourceMembership& membership) {
  if (source.empty()) {
    return Status::InvalidArgument("source needs a non-empty name");
  }
  EVE_RETURN_IF_ERROR(
      JournalAppend({JournalRecordKind::kSourceMembership,
                     federation::SerializeMembership(source, membership)}));
  membership_[source] = membership;
  if (membership.state == federation::SourceState::kHealthy) {
    // The source healed: every rewriting that provisionally leaned on its
    // last-known constraints is now confirmed. Clearing the marks from the
    // live views AND the logged outcomes makes the state converge to what
    // a fault-free run would have produced; replaying the same journal
    // repeats the same un-marking at the same position, so recovery agrees.
    for (auto& [name, view] : views_) view.provisional_sources.erase(source);
    for (ChangeReport& report : change_log_) {
      for (ViewOutcome& outcome : report.outcomes) {
        auto& provisional = outcome.provisional_sources;
        provisional.erase(
            std::remove(provisional.begin(), provisional.end(), source),
            provisional.end());
      }
    }
  }
  EVE_FAILPOINT(fp::kSetMembershipAfterJournal);
  return Status::OK();
}

Status EveSystem::SetViewProvisionalSources(const std::string& name,
                                            std::set<std::string> sources) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  it->second.provisional_sources = std::move(sources);
  return Status::OK();
}

std::vector<std::string> EveSystem::DegradedSourcesOf(
    const ViewDefinition& definition, const Catalog& catalog) const {
  std::set<std::string> degraded;
  for (const std::string& relation : definition.ReferencedRelations()) {
    const Result<const RelationDef*> def = catalog.GetRelation(relation);
    if (!def.ok()) continue;
    const auto it = membership_.find((*def)->source);
    if (it != membership_.end() && it->second.Degraded()) {
      degraded.insert((*def)->source);
    }
  }
  return std::vector<std::string>(degraded.begin(), degraded.end());
}

Status EveSystem::ReplayRecord(const JournalRecord& record) {
  switch (record.kind) {
    case JournalRecordKind::kExtendMkb:
      return ExtendMkb(record.body);
    case JournalRecordKind::kRetractConstraint:
      return RetractConstraint(record.body);
    case JournalRecordKind::kRegisterView: {
      std::string head, text;
      EVE_RETURN_IF_ERROR(SplitRecordBody(record.body, &head, &text));
      // The state word may carry a "@<synced_at_version>" suffix (restored
      // views whose stamp predates this system's version chain).
      std::string state_word = head;
      uint64_t synced_at = 0;
      const size_t at = head.find('@');
      if (at != std::string::npos) {
        state_word = head.substr(0, at);
        if (!ParseDecimalU64(head.substr(at + 1), &synced_at)) {
          return Status::ParseError("malformed synced-at suffix: " + head);
        }
      }
      if (state_word == "active") {
        EVE_RETURN_IF_ERROR(RegisterViewText(text));
        if (synced_at != 0) {
          EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
          return SetViewSyncedVersion(parsed.name, synced_at);
        }
        return Status::OK();
      }
      // Disabled views restore verbatim: their definitions may reference
      // capabilities that no longer bind.
      EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
      EVE_ASSIGN_OR_RETURN(ViewDefinition unbound, BindViewUnchecked(parsed));
      return RestoreView(std::move(unbound), ViewState::kDisabled, synced_at);
    }
    case JournalRecordKind::kRegisterViewsBulk: {
      // The body is the SaveViews block format, active views only. Parse
      // every block, then re-register through RegisterViewsBulk so replay
      // commits exactly one version, like the original call.
      std::vector<ViewDefinition> batch;
      std::string_view text = record.body;
      size_t pos = 0;
      while (pos < text.size()) {
        const size_t header = text.find("-- VIEW ", pos);
        if (header == std::string_view::npos) break;
        const size_t header_end = text.find('\n', header);
        if (header_end == std::string_view::npos) {
          return Status::ParseError("truncated bulk-registration header");
        }
        const size_t body_end = text.find(';', header_end);
        if (body_end == std::string_view::npos) {
          return Status::ParseError(
              "bulk-registration statement missing terminating ';'");
        }
        const std::string_view statement =
            text.substr(header_end + 1, body_end - header_end - 1);
        EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(statement));
        EVE_ASSIGN_OR_RETURN(ViewDefinition bound,
                             BindView(parsed, mkb().catalog()));
        batch.push_back(std::move(bound));
        pos = body_end + 1;
      }
      return RegisterViewsBulk(batch);
    }
    case JournalRecordKind::kJournalEpoch:
      // Checkpoint-generation marker: consumed by the sharded recovery
      // barrier before replay; reaching a single-system replay it is a
      // no-op (the records after it are the live tail).
      return Status::OK();
    case JournalRecordKind::kSetViewState: {
      std::string state_word, name;
      EVE_RETURN_IF_ERROR(SplitRecordBody(record.body, &state_word, &name));
      return SetViewState(name, state_word == "active"
                                    ? ViewState::kActive
                                    : ViewState::kDisabled);
    }
    case JournalRecordKind::kApplyChange: {
      EVE_ASSIGN_OR_RETURN(const CapabilityChange change,
                           ParseChange(record.body));
      const Result<ChangeReport> report = ApplyChange(change);
      return report.status();
    }
    case JournalRecordKind::kSourceMembership: {
      EVE_ASSIGN_OR_RETURN(const federation::NamedMembership named,
                           federation::ParseMembership(record.body));
      return SetSourceMembership(named.source, named.membership);
    }
    case JournalRecordKind::kVersionCommit: {
      // Validation marker: the replayed chain must have reached exactly the
      // version the original commit created, else checkpoint and journal
      // come from diverged histories.
      uint64_t expected = 0;
      if (!ParseDecimalU64(record.body, &expected)) {
        return Status::ParseError("malformed version-commit record: " +
                                  record.body);
      }
      if (versions_.tip_id() != expected) {
        return Status::Internal(
            "version divergence on replay: journal committed version " +
            std::to_string(expected) + ", replay reached " +
            std::to_string(versions_.tip_id()));
      }
      return Status::OK();
    }
    case JournalRecordKind::kRollback: {
      uint64_t target = 0;
      if (!ParseDecimalU64(record.body, &target)) {
        return Status::ParseError("malformed rollback record: " + record.body);
      }
      return RollbackToVersion(target).status();
    }
    case JournalRecordKind::kBeginBatch:
    case JournalRecordKind::kCommitBatch:
    case JournalRecordKind::kAbortBatch:
      return Status::Internal("batch marker reached record replay");
  }
  return Status::Internal("unknown journal record kind");
}

Result<EveSystem> EveSystem::Recover(
    std::string_view checkpoint_text,
    const std::vector<JournalRecord>& records, RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  EVE_ASSIGN_OR_RETURN(EveSystem system, LoadCheckpoint(checkpoint_text));

  // The batch-buffering tolerant replay loop lives in JournalReplayer so
  // replication replicas can run the SAME semantics one record at a time
  // against a live system (see eve/journal.h).
  JournalReplayer replayer;
  for (const JournalRecord& record : records) {
    replayer.Apply(&system, record, &out);
  }
  replayer.Finish(&out);
  return system;
}

}  // namespace eve
