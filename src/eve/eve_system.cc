#include "eve/eve_system.h"

#include <algorithm>
#include <sstream>

#include "cvs/explain.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "mkb/serializer.h"
#include "sql/parser.h"

namespace eve {

size_t ChangeReport::CountOutcome(ViewOutcomeKind kind) const {
  size_t count = 0;
  for (const ViewOutcome& outcome : outcomes) {
    if (outcome.kind == kind) ++count;
  }
  return count;
}

std::string ChangeReport::ToString() const {
  std::ostringstream os;
  os << "change: " << change.ToString() << "\n";
  if (!dropped_constraints.empty()) {
    os << "  dropped constraints:";
    for (const std::string& id : dropped_constraints) os << " " << id;
    os << "\n";
  }
  if (!weakened_constraints.empty()) {
    os << "  weakened constraints:";
    for (const std::string& id : weakened_constraints) os << " " << id;
    os << "\n";
  }
  for (const ViewOutcome& outcome : outcomes) {
    os << "  view " << outcome.view_name << ": ";
    switch (outcome.kind) {
      case ViewOutcomeKind::kUnaffected:
        os << "unaffected";
        break;
      case ViewOutcomeKind::kRewritten:
        os << "rewritten";
        break;
      case ViewOutcomeKind::kDisabled:
        os << "DISABLED";
        break;
    }
    if (!outcome.detail.empty()) os << " — " << outcome.detail;
    os << "\n";
  }
  return os.str();
}

Status EveSystem::ExtendMkb(std::string_view misd_text) {
  Mkb extended = mkb_;
  EVE_RETURN_IF_ERROR(AppendMisd(&extended, misd_text));
  mkb_ = std::move(extended);
  return Status::OK();
}

Status EveSystem::RegisterView(const ViewDefinition& view) {
  if (view.name().empty()) {
    return Status::InvalidArgument("view needs a non-empty name");
  }
  if (views_.count(view.name()) > 0) {
    return Status::AlreadyExists("view already registered: " + view.name());
  }
  // Re-validate against the current MKB state.
  EVE_ASSIGN_OR_RETURN(ViewDefinition bound,
                       BindView(view.ToParsedView(), mkb_.catalog()));
  RegisteredView registered;
  registered.definition = std::move(bound);
  views_.emplace(view.name(), std::move(registered));
  return Status::OK();
}

Status EveSystem::RegisterViewText(std::string_view text) {
  EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
  EVE_ASSIGN_OR_RETURN(const ViewDefinition bound,
                       BindView(parsed, mkb_.catalog()));
  return RegisterView(bound);
}

Result<const RegisteredView*> EveSystem::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  return &it->second;
}

Status EveSystem::SetViewState(const std::string& name, ViewState state) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view not registered: " + name);
  }
  it->second.state = state;
  return Status::OK();
}

std::vector<std::string> EveSystem::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

size_t EveSystem::NumActiveViews() const {
  size_t count = 0;
  for (const auto& [name, view] : views_) {
    if (view.state == ViewState::kActive) ++count;
  }
  return count;
}

std::vector<std::string> EveSystem::AffectedViews(
    const CapabilityChange& change) const {
  std::vector<std::string> affected;
  for (const auto& [name, view] : views_) {
    if (view.state != ViewState::kActive) continue;
    const ViewDefinition& def = view.definition;
    bool hit = false;
    switch (change.kind) {
      case CapabilityChange::Kind::kDeleteRelation:
      case CapabilityChange::Kind::kRenameRelation:
        hit = def.ReferencesRelation(change.relation);
        break;
      case CapabilityChange::Kind::kDeleteAttribute:
      case CapabilityChange::Kind::kRenameAttribute:
        hit = def.ReferencesAttribute(
            AttributeRef{change.relation, change.attribute});
        break;
      case CapabilityChange::Kind::kAddRelation:
      case CapabilityChange::Kind::kAddAttribute:
        hit = false;
        break;
    }
    if (hit) affected.push_back(name);
  }
  return affected;
}

Result<ChangeReport> EveSystem::ApplyChange(const CapabilityChange& change) {
  ChangeReport report;
  report.change = change;

  // Step 1: evolve the MKB.
  EVE_ASSIGN_OR_RETURN(MkbEvolutionReport evolution,
                       EvolveMkb(mkb_, change));
  report.dropped_constraints = evolution.dropped_constraints;
  report.weakened_constraints = evolution.weakened_constraints;

  // Step 2: detect affected views.
  const std::vector<std::string> affected = AffectedViews(change);
  for (const auto& [name, view] : views_) {
    if (view.state != ViewState::kActive) continue;
    const bool is_affected =
        std::find(affected.begin(), affected.end(), name) != affected.end();
    if (!is_affected) {
      report.outcomes.push_back(
          ViewOutcome{name, ViewOutcomeKind::kUnaffected, ""});
    }
  }

  // Step 3: synchronize each affected view.
  for (const std::string& name : affected) {
    RegisteredView& registered = views_.at(name);
    EVE_ASSIGN_OR_RETURN(
        const CvsResult result,
        Synchronize(registered.definition, change, mkb_, evolution.mkb,
                    options_));
    if (result.ViewPreserved()) {
      const SynchronizedView& best = result.rewritings.front();
      const RewritingExplanation explanation =
          ExplainRewriting(registered.definition, best);
      ViewDefinition rewritten = best.view;
      rewritten.set_name(name);  // keep the registered name
      registered.definition = std::move(rewritten);
      registered.history.push_back("rewritten under " + change.ToString());
      std::string detail = best.is_drop ? "drop-based" : "replacement-based";
      detail += ", extent " + std::string(ExtentRelationToString(
                                  best.legality.inferred_extent));
      if (!explanation.replaced_attributes.empty()) {
        detail += "; replaced " +
                  std::to_string(explanation.replaced_attributes.size()) +
                  " attribute(s)";
      }
      if (!explanation.dropped_attributes.empty()) {
        detail += "; dropped " +
                  std::to_string(explanation.dropped_attributes.size()) +
                  " attribute(s)";
      }
      if (!explanation.added_relations.empty()) {
        detail += "; joined in";
        for (const std::string& rel : explanation.added_relations) {
          detail += " " + rel;
        }
      }
      report.outcomes.push_back(
          ViewOutcome{name, ViewOutcomeKind::kRewritten, detail});
    } else {
      registered.state = ViewState::kDisabled;
      registered.history.push_back("disabled under " + change.ToString());
      std::string detail;
      for (const std::string& diagnostic : result.diagnostics) {
        if (!detail.empty()) detail += "; ";
        detail += diagnostic;
      }
      report.outcomes.push_back(
          ViewOutcome{name, ViewOutcomeKind::kDisabled, detail});
    }
  }

  mkb_ = std::move(evolution.mkb);
  change_log_.push_back(report);
  return report;
}

Result<ChangeReport> EveSystem::PreviewChange(
    const CapabilityChange& change) const {
  // All state is value-typed: run the real pipeline on a scratch copy.
  EveSystem scratch(*this);
  return scratch.ApplyChange(change);
}

Result<std::vector<ChangeReport>> EveSystem::ApplyChanges(
    const std::vector<CapabilityChange>& changes, bool transactional) {
  // Snapshot for rollback: all state members are value types.
  Mkb mkb_snapshot;
  std::map<std::string, RegisteredView> views_snapshot;
  std::vector<ChangeReport> log_snapshot;
  if (transactional) {
    mkb_snapshot = mkb_;
    views_snapshot = views_;
    log_snapshot = change_log_;
  }
  std::vector<ChangeReport> reports;
  reports.reserve(changes.size());
  for (const CapabilityChange& change : changes) {
    Result<ChangeReport> report = ApplyChange(change);
    if (!report.ok()) {
      if (transactional) {
        mkb_ = std::move(mkb_snapshot);
        views_ = std::move(views_snapshot);
        change_log_ = std::move(log_snapshot);
      }
      return Status(report.status().code(),
                    "batch aborted at '" + change.ToString() +
                        "': " + report.status().message());
    }
    reports.push_back(report.MoveValue());
  }
  return reports;
}

Result<std::vector<ChangeReport>> EveSystem::SourceLeaves(
    const std::string& source) {
  const std::vector<std::string> relations =
      mkb_.catalog().RelationsOfSource(source);
  if (relations.empty()) {
    return Status::NotFound("no relations exported by source: " + source);
  }
  std::vector<ChangeReport> reports;
  reports.reserve(relations.size());
  for (const std::string& relation : relations) {
    EVE_ASSIGN_OR_RETURN(
        ChangeReport report,
        ApplyChange(CapabilityChange::DeleteRelation(relation)));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace eve
