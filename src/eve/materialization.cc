#include "eve/materialization.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "esql/evaluator.h"

namespace eve {

namespace {

// True iff both views project the same expressions under the same output
// names, pairwise in order. The delta rules need this so a stored tuple
// and a recomputed tuple for the same base row are byte-identical.
bool SelectListsIdentical(const ViewDefinition& a, const ViewDefinition& b) {
  if (a.select().size() != b.select().size()) return false;
  for (size_t i = 0; i < a.select().size(); ++i) {
    if (a.select()[i].output_name != b.select()[i].output_name) return false;
    if (!a.select()[i].expr->Equals(*b.select()[i].expr)) return false;
  }
  return true;
}

bool SameRelationSet(const ViewDefinition& a, const ViewDefinition& b) {
  std::vector<std::string> ra = a.FromRelationNames();
  std::vector<std::string> rb = b.FromRelationNames();
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  return ra == rb;
}

bool ContainsClause(const std::vector<ViewCondition>& haystack,
                    const Expr& clause) {
  for (const ViewCondition& c : haystack) {
    if (c.clause->Equals(clause)) return true;
  }
  return false;
}

// Clauses of `of` that have no structural twin in `in`.
std::vector<ExprPtr> ClauseDifference(const std::vector<ViewCondition>& of,
                                      const std::vector<ViewCondition>& in) {
  std::vector<ExprPtr> out;
  for (const ViewCondition& c : of) {
    if (!ContainsClause(in, *c.clause)) out.push_back(c.clause);
  }
  return out;
}

// True iff every clause of `sub` appears in `super`.
bool ClausesSubset(const std::vector<ViewCondition>& sub,
                   const std::vector<ViewCondition>& super) {
  for (const ViewCondition& c : sub) {
    if (!ContainsClause(super, *c.clause)) return false;
  }
  return true;
}

ConjunctiveQuery QueryShell(const ViewDefinition& view) {
  ConjunctiveQuery q;
  q.relations = view.FromRelationNames();
  for (const ViewSelectItem& item : view.select()) {
    q.projections.push_back(item.expr);
    q.output_names.push_back(item.output_name);
  }
  q.distinct = true;
  return q;
}

}  // namespace

Status ApplyChangeToDatabase(const CapabilityChange& change, Database* db) {
  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation: {
      if (db->HasTable(change.new_relation.name)) {
        return Status::AlreadyExists("table already exists: " +
                                     change.new_relation.name);
      }
      // Create directly from the new definition (the catalog may not have
      // been evolved yet when this is called).
      Catalog scratch;
      EVE_RETURN_IF_ERROR(scratch.AddRelation(change.new_relation));
      return db->CreateTable(scratch, change.new_relation.name);
    }
    case CapabilityChange::Kind::kDeleteRelation:
      return db->DropTable(change.relation);
    case CapabilityChange::Kind::kRenameRelation:
      return db->RenameTable(change.relation, change.new_name);
    case CapabilityChange::Kind::kAddAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->AddColumn(change.new_attribute);
    }
    case CapabilityChange::Kind::kDeleteAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->DropColumn(change.attribute);
    }
    case CapabilityChange::Kind::kRenameAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->RenameColumn(change.attribute, change.new_name);
    }
  }
  return Status::Internal("unexpected capability change kind");
}

const char* RefreshPathToString(RefreshPath path) {
  switch (path) {
    case RefreshPath::kFull:
      return "full";
    case RefreshPath::kReuseEqual:
      return "reuse_equal";
    case RefreshPath::kDeltaSuperset:
      return "delta_superset";
    case RefreshPath::kDeltaSubset:
      return "delta_subset";
  }
  return "unknown";
}

void MaterializedViewStore::Record(const std::string& view_name,
                                   RefreshPath path) {
  RefreshStats& s = stats_[view_name];
  switch (path) {
    case RefreshPath::kFull:
      ++s.full;
      break;
    case RefreshPath::kReuseEqual:
      ++s.reuse_equal;
      break;
    case RefreshPath::kDeltaSuperset:
      ++s.delta_superset;
      break;
    case RefreshPath::kDeltaSubset:
      ++s.delta_subset;
      break;
  }
  s.last_path = path;
}

RefreshStats MaterializedViewStore::StatsFor(
    const std::string& view_name) const {
  auto it = stats_.find(view_name);
  return it == stats_.end() ? RefreshStats{} : it->second;
}

RefreshStats MaterializedViewStore::AggregateStats() const {
  RefreshStats agg;
  for (const auto& [name, s] : stats_) {
    agg.full += s.full;
    agg.reuse_equal += s.reuse_equal;
    agg.delta_superset += s.delta_superset;
    agg.delta_subset += s.delta_subset;
  }
  return agg;
}

Status MaterializedViewStore::Refresh(const ViewDefinition& view,
                                      const Database& db,
                                      const Catalog& catalog) {
  EVE_ASSIGN_OR_RETURN(
      Table extent, EvaluateView(view, db, catalog, registry_, strategy_));
  extents_.insert_or_assign(view.name(), std::move(extent));
  Record(view.name(), RefreshPath::kFull);
  return Status::OK();
}

Result<bool> MaterializedViewStore::TryReuseEqual(
    const ViewDefinition& old_view, const ViewDefinition& new_view) {
  // The Equal verdict certifies set-equality of the extents projected on
  // the common interface; requiring the interface name SETS to match makes
  // that full-extent equality, even when select expressions were replaced
  // by function-of rewritings.
  std::vector<std::string> old_names = old_view.InterfaceNames();
  std::vector<std::string> new_names = new_view.InterfaceNames();
  {
    std::vector<std::string> a = old_names, b = new_names;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  const Table& old_extent = extents_.at(old_view.name());
  if (old_names == new_names) {
    Table copy = old_extent;  // shares column chunks; O(#columns)
    extents_.insert_or_assign(new_view.name(), std::move(copy));
    return true;
  }
  // Same name set, different order: permute column handles (still zero
  // row-level work).
  std::vector<AttributeDef> attrs;
  std::vector<std::shared_ptr<const ColumnChunk>> cols;
  attrs.reserve(new_names.size());
  cols.reserve(new_names.size());
  for (const std::string& name : new_names) {
    auto idx = old_extent.schema().IndexOf(name);
    if (!idx.has_value()) return false;  // unreachable given the set check
    attrs.push_back(old_extent.schema().attribute(*idx));
    cols.push_back(old_extent.column_handle(*idx));
  }
  EVE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Table permuted = Table::FromColumns(std::move(schema), std::move(cols),
                                      old_extent.NumRows());
  extents_.insert_or_assign(new_view.name(), std::move(permuted));
  return true;
}

Result<bool> MaterializedViewStore::TryDeltaSubset(
    const ViewDefinition& old_view, const ViewDefinition& new_view) {
  // Rule: the rewriting only ADDED conditions, so the new extent is a
  // filter of the stored one — evaluated entirely over the extent, never
  // touching base tables. Applicable when every attribute the added
  // conditions mention was exposed by the old view as a bare column, so
  // the predicate can be remapped onto extent columns.
  if (!SameRelationSet(old_view, new_view)) return false;
  if (!SelectListsIdentical(old_view, new_view)) return false;
  if (!ClausesSubset(old_view.where(), new_view.where())) return false;
  std::vector<ExprPtr> added = ClauseDifference(new_view.where(),
                                                old_view.where());
  if (added.empty()) return false;

  // Base attribute -> extent output name, from bare-column select items.
  std::map<AttributeRef, std::string> exposed;
  for (const ViewSelectItem& item : old_view.select()) {
    if (item.expr->kind() == ExprKind::kColumn) {
      exposed.emplace(item.expr->column(), item.output_name);
    }
  }
  for (const ExprPtr& clause : added) {
    std::vector<AttributeRef> refs;
    clause->CollectColumns(&refs);
    for (const AttributeRef& ref : refs) {
      if (exposed.find(ref) == exposed.end()) return false;
    }
  }

  const Table& old_extent = extents_.at(old_view.name());

  // Stage the extent as a temporary one-relation database.
  static constexpr char kExtentRel[] = "__extent";
  Catalog temp_catalog;
  EVE_RETURN_IF_ERROR(temp_catalog.AddRelation(
      RelationDef{"__mat", kExtentRel, old_extent.schema(), {}}));
  Database temp_db;
  EVE_RETURN_IF_ERROR(temp_db.CreateTable(temp_catalog, kExtentRel));
  EVE_ASSIGN_OR_RETURN(Table * staged, temp_db.GetTable(kExtentRel));
  *staged = old_extent;  // CoW: shares column chunks

  ConjunctiveQuery q;
  q.relations = {kExtentRel};
  for (const ExprPtr& clause : added) {
    q.conjuncts.push_back(clause->TransformColumns(
        [&](const AttributeRef& ref) {
          return AttributeRef{kExtentRel, exposed.at(ref)};
        }));
  }
  for (const ViewSelectItem& item : new_view.select()) {
    q.projections.push_back(
        Expr::Column(AttributeRef{kExtentRel, item.output_name}));
    q.output_names.push_back(item.output_name);
  }
  q.distinct = true;

  EVE_ASSIGN_OR_RETURN(
      Table filtered,
      Execute(q, temp_db, temp_catalog, registry_, strategy_));
  extents_.insert_or_assign(new_view.name(), std::move(filtered));
  return true;
}

Result<bool> MaterializedViewStore::TryDeltaSuperset(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    const Database& db, const Catalog& catalog) {
  // Rule: the rewriting only DROPPED conditions d1..dk, so
  //   new_extent = old_extent ∪ Δ1 ∪ ... ∪ Δk
  // where Δi selects the rows whose FIRST non-true dropped condition is
  // di:   Cnew ∧ d1 ∧ ... ∧ d(i-1) ∧ __not_true(di).
  // Partitioning by the first non-true index (rather than ¬di) keeps the
  // rule sound under three-valued logic: a row where di is NULL belongs
  // to the new extent but satisfies neither di nor NOT di as a WHERE
  // filter; __not_true maps both FALSE and NULL to TRUE.
  if (!SameRelationSet(old_view, new_view)) return false;
  if (!SelectListsIdentical(old_view, new_view)) return false;
  if (!ClausesSubset(new_view.where(), old_view.where())) return false;
  std::vector<ExprPtr> dropped = ClauseDifference(old_view.where(),
                                                  new_view.where());
  if (dropped.empty()) return false;

  FunctionRegistry local =
      registry_ ? *registry_ : FunctionRegistry();
  local.Register("__not_true",
                 [](const std::vector<Value>& args) -> Result<Value> {
                   if (args.size() != 1) {
                     return Status::InvalidArgument(
                         "__not_true takes one argument");
                   }
                   if (args[0].is_null()) return Value::Bool(true);
                   if (args[0].type() != DataType::kBool) {
                     return Status::InvalidArgument(
                         "__not_true requires a boolean");
                   }
                   return Value::Bool(!args[0].bool_value());
                 });

  Table result = extents_.at(old_view.name());
  if (!result.IsDedupSorted()) result.Deduplicate();

  for (size_t i = 0; i < dropped.size(); ++i) {
    ConjunctiveQuery q = QueryShell(new_view);
    for (const ViewCondition& c : new_view.where()) {
      q.conjuncts.push_back(c.clause);
    }
    for (size_t j = 0; j < i; ++j) q.conjuncts.push_back(dropped[j]);
    q.conjuncts.push_back(Expr::Func("__not_true", {dropped[i]}));
    EVE_ASSIGN_OR_RETURN(Table delta,
                         Execute(q, db, catalog, &local, strategy_));
    if (delta.NumRows() == 0) continue;
    if (!delta.IsDedupSorted()) delta.Deduplicate();
    result = Table::SortedUnion(result, delta);
  }
  extents_.insert_or_assign(new_view.name(), std::move(result));
  return true;
}

Status MaterializedViewStore::IncrementalRefresh(
    const ViewDefinition& old_view, const ViewDefinition& new_view,
    ExtentRelation verdict, const Database& db, const Catalog& catalog) {
  const bool renamed = old_view.name() != new_view.name();
  if (extents_.count(old_view.name()) > 0) {
    Result<bool> applied = false;
    RefreshPath path = RefreshPath::kFull;
    switch (verdict) {
      case ExtentRelation::kEqual:
        applied = TryReuseEqual(old_view, new_view);
        path = RefreshPath::kReuseEqual;
        break;
      case ExtentRelation::kSubset:
        applied = TryDeltaSubset(old_view, new_view);
        path = RefreshPath::kDeltaSubset;
        break;
      case ExtentRelation::kSuperset:
        applied = TryDeltaSuperset(old_view, new_view, db, catalog);
        path = RefreshPath::kDeltaSuperset;
        break;
      case ExtentRelation::kUnknown:
        break;
    }
    EVE_RETURN_IF_ERROR(applied.status());
    if (applied.value()) {
      if (renamed) extents_.erase(old_view.name());
      Record(new_view.name(), path);
      return Status::OK();
    }
  }
  EVE_RETURN_IF_ERROR(Refresh(new_view, db, catalog));  // records kFull
  if (renamed) extents_.erase(old_view.name());
  return Status::OK();
}

Result<const Table*> MaterializedViewStore::Extent(
    const std::string& view_name) const {
  auto it = extents_.find(view_name);
  if (it == extents_.end()) {
    return Status::NotFound("view not materialized: " + view_name);
  }
  return &it->second;
}

}  // namespace eve
