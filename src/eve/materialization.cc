#include "eve/materialization.h"

#include "esql/evaluator.h"

namespace eve {

Status ApplyChangeToDatabase(const CapabilityChange& change, Database* db) {
  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation: {
      if (db->HasTable(change.new_relation.name)) {
        return Status::AlreadyExists("table already exists: " +
                                     change.new_relation.name);
      }
      // Create directly from the new definition (the catalog may not have
      // been evolved yet when this is called).
      Catalog scratch;
      EVE_RETURN_IF_ERROR(scratch.AddRelation(change.new_relation));
      return db->CreateTable(scratch, change.new_relation.name);
    }
    case CapabilityChange::Kind::kDeleteRelation:
      return db->DropTable(change.relation);
    case CapabilityChange::Kind::kRenameRelation:
      return db->RenameTable(change.relation, change.new_name);
    case CapabilityChange::Kind::kAddAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->AddColumn(change.new_attribute);
    }
    case CapabilityChange::Kind::kDeleteAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->DropColumn(change.attribute);
    }
    case CapabilityChange::Kind::kRenameAttribute: {
      EVE_ASSIGN_OR_RETURN(Table * table, db->GetTable(change.relation));
      return table->RenameColumn(change.attribute, change.new_name);
    }
  }
  return Status::Internal("unexpected capability change kind");
}

Status MaterializedViewStore::Refresh(const ViewDefinition& view,
                                      const Database& db,
                                      const Catalog& catalog) {
  EVE_ASSIGN_OR_RETURN(Table extent,
                       EvaluateView(view, db, catalog, registry_,
                                    JoinStrategy::kHash));
  extents_.insert_or_assign(view.name(), std::move(extent));
  return Status::OK();
}

Result<const Table*> MaterializedViewStore::Extent(
    const std::string& view_name) const {
  auto it = extents_.find(view_name);
  if (it == extents_.end()) {
    return Status::NotFound("view not materialized: " + view_name);
  }
  return &it->second;
}

}  // namespace eve
