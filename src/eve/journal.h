// Durable change journal + checkpointing for EveSystem (write-ahead
// discipline): every MKB evolution, constraint retraction, view
// registration and capability change is appended to an fsynced,
// CRC32-framed journal BEFORE the in-memory state commits. Recovery loads
// the last checkpoint (written atomically via write-temp + fsync + rename)
// and idempotently replays the journal; a torn final record — the signature
// of a crash mid-append — is detected by its CRC and dropped, recovering to
// the last complete record.
//
// On-disk journal layout:
//   8-byte magic "EVEJRNL1"
//   records: u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//   payload: 1 byte record kind | body bytes
//
// Batch semantics: transactional ApplyChanges brackets its per-change
// records with kBeginBatch/kCommitBatch (or kAbortBatch on rollback);
// replay buffers a batch and discards it unless the commit marker is
// present, so a crash mid-batch recovers to the pre-batch state.

#ifndef EVE_EVE_JOURNAL_H_
#define EVE_EVE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "eve/eve_system.h"

namespace eve {

enum class JournalRecordKind : uint8_t {
  kExtendMkb = 1,
  kRetractConstraint = 2,
  kRegisterView = 3,
  kSetViewState = 4,
  kApplyChange = 5,
  kBeginBatch = 6,
  kCommitBatch = 7,
  kAbortBatch = 8,
  // One federation membership row (SerializeMembership line); replays via
  // SetSourceMembership, including its heal-time un-marking side effects.
  kSourceMembership = 9,
  // Marks the version id a kApplyChange commit created (decimal body);
  // replay validates the replayed chain reached the same id, so a
  // checkpoint/journal pair from diverged histories is caught.
  kVersionCommit = 10,
  // RollbackToVersion(n): decimal target version in the body. Replays via
  // RollbackToVersion, committing the restored state as a new version.
  kRollback = 11,
  // Bulk view registration (body: concatenated "-- VIEW active" framed
  // blocks, the SaveViews rendering of the batch). One record + one version
  // commit for N views, so million-view registration is not O(N) fsyncs.
  kRegisterViewsBulk = 12,
  // Checkpoint-generation marker (decimal generation in the body). Written
  // as the first record after a sharded checkpoint resets the journal; on
  // recovery a shard journal whose last epoch marker does not match the
  // manifest generation is stale (a crash hit between the manifest rename
  // and that shard's reset) and its pre-epoch records are superseded by the
  // checkpoint.
  kJournalEpoch = 13,
};

struct JournalRecord {
  JournalRecordKind kind;
  std::string body;
};

// Append-only journal file handle. Owns the file descriptor; movable.
class Journal {
 public:
  // Opens `path`, creating it (with the magic header) if absent. Rejects
  // files that do not start with the journal magic.
  static Result<Journal> Open(const std::string& path);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  // Appends one framed record and fsyncs. On return the record is durable.
  Status Append(JournalRecordKind kind, std::string_view body);

  // Durably truncates the journal back to just the magic header — called
  // after a successful checkpoint subsumes the journaled history.
  Status Reset();

  // Called after every SUCCESSFUL (durable) Append with the record just
  // written. The replication hub tails the journal through this hook to
  // ship committed records to replicas in exact journal order; the
  // observer runs on the appending thread, under whatever lock guarded
  // the mutation, so shipped order == journal order by construction.
  using Observer = std::function<void(JournalRecordKind, std::string_view)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  const std::string& path() const { return path_; }

 private:
  Journal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  Observer observer_;
};

// Result of scanning journal bytes: the complete CRC-valid record prefix,
// plus how it ended.
struct JournalScan {
  std::vector<JournalRecord> records;
  // True when trailing bytes after the valid prefix were dropped (torn
  // final record or corruption); recovery proceeds from the prefix.
  bool torn_tail = false;
  // How many trailing bytes were dropped — surfaced through
  // RecoveryReport so operators can distinguish clean recovery from
  // truncation.
  size_t dropped_bytes = 0;
};

// Renders a complete journal file image (magic + CRC-framed records) —
// the inverse of ScanJournalBytes. Sharded recovery uses it to rewrite a
// barrier-truncated journal atomically (write-temp + rename).
std::string RenderJournalBytes(const std::vector<JournalRecord>& records);

// Parses raw journal bytes (magic + frames). Never fails on torn or
// corrupted record bytes — the valid prefix is returned and torn_tail set —
// but rejects bytes that are not a journal at all (bad magic).
Result<JournalScan> ScanJournalBytes(std::string_view bytes);

// Incremental journal replay with transactional batch semantics — the
// replay loop of EveSystem::Recover, extracted so it can also run one
// record at a time against a LIVE system (replication replicas apply the
// primary's shipped records through it as they arrive).
//
// Non-batch records apply immediately, tolerantly: a record whose replay
// fails also failed (identically, deterministically) in the original run,
// so skipping reproduces the original outcome. Records inside a
// kBeginBatch/kCommitBatch bracket are buffered and applied only when the
// commit marker arrives; an abort marker or a new begin marker discards
// the buffer — so a stream torn mid-batch never applies a partial batch.
class JournalReplayer {
 public:
  // Feeds one record. `report` (optional) accumulates replayed / skipped /
  // discarded counts and diagnostics.
  void Apply(EveSystem* system, const JournalRecord& record,
             RecoveryReport* report);

  // End-of-stream: discards an uncommitted trailing batch, if any.
  void Finish(RecoveryReport* report);

  // True while a begun batch awaits its commit/abort marker.
  bool in_batch() const { return in_batch_; }

 private:
  void ApplyTolerant(EveSystem* system, const JournalRecord& record,
                     RecoveryReport* report);

  bool in_batch_ = false;
  std::vector<JournalRecord> batch_;
};

// Reads and scans the journal file. A missing file yields an empty scan.
Result<JournalScan> ReadJournal(const std::string& path);

// --- Checkpointing ---------------------------------------------------------

// Renders the complete durable state (MKB in MISD form, view pool, change
// log, federation membership) as one sectioned text document.
std::string RenderCheckpoint(const EveSystem& system);

// The FEDERATION checkpoint section body: one SerializeMembership line per
// tracked source, name-sorted. Exposed for tests comparing durable
// membership state.
std::string SaveFederation(const EveSystem& system);

// Parses a checkpoint document into a fresh system (no journal attached).
Result<EveSystem> LoadCheckpoint(std::string_view text);

// Atomically writes RenderCheckpoint(system) to `path`.
Status WriteCheckpoint(const EveSystem& system, const std::string& path);

// Loads the checkpoint at `checkpoint_path` (a missing file means "start
// empty") and replays the journal at `journal_path` on top. The returned
// system has no journal attached; callers reattach one to continue.
Result<EveSystem> RecoverFromFiles(const std::string& checkpoint_path,
                                   const std::string& journal_path,
                                   RecoveryReport* report = nullptr);

}  // namespace eve

#endif  // EVE_EVE_JOURNAL_H_
