#include "eve/view_pool_io.h"

#include <set>
#include <sstream>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "esql/binder.h"
#include "sql/parser.h"

namespace eve {

std::string SaveViews(const EveSystem& system) {
  std::ostringstream os;
  for (const std::string& name : system.ViewNames()) {
    const RegisteredView* view = *system.GetView(name);
    os << "-- VIEW "
       << (view->state == ViewState::kActive ? "active" : "disabled");
    if (!view->provisional_sources.empty()) {
      // Degraded-mode marker (see eve_system.h); omitted when empty so
      // fault-free pools keep the pre-federation format.
      os << " provisional=";
      bool first = true;
      for (const std::string& source : view->provisional_sources) {
        if (!first) os << ",";
        os << source;
        first = false;
      }
    }
    if (view->synced_at_version != 0) {
      // The MKB version the view was last synchronized against; omitted
      // when unknown so legacy pools keep their format.
      os << " synced_at=" << view->synced_at_version;
    }
    os << "\n" << view->definition.ToString() << ";\n\n";
  }
  return os.str();
}

Status LoadViews(std::string_view text, EveSystem* system) {
  EVE_FAILPOINT(fp::kViewPoolLoadValidate);
  // Segment on "-- VIEW <state>" header lines; the statement body runs to
  // the terminating ';'.
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t header = text.find("-- VIEW ", pos);
    if (header == std::string_view::npos) break;
    const size_t header_end = text.find('\n', header);
    if (header_end == std::string_view::npos) {
      return Status::ParseError("truncated view header");
    }
    std::string_view header_rest =
        Trim(text.substr(header + 8, header_end - header - 8));
    std::string_view state_word = header_rest;
    std::set<std::string> provisional;
    uint64_t synced_at = 0;
    const size_t space = header_rest.find(' ');
    if (space != std::string_view::npos) {
      state_word = Trim(header_rest.substr(0, space));
      for (const std::string& token :
           Split(Trim(header_rest.substr(space + 1)), ' ')) {
        const std::string_view extra = Trim(token);
        if (extra.empty()) continue;
        if (StartsWith(extra, "provisional=")) {
          for (const std::string& source : Split(
                   extra.substr(std::string_view("provisional=").size()),
                   ',')) {
            if (!Trim(source).empty()) {
              provisional.insert(std::string(Trim(source)));
            }
          }
        } else if (StartsWith(extra, "synced_at=")) {
          const std::string_view digits =
              extra.substr(std::string_view("synced_at=").size());
          synced_at = 0;
          for (const char c : digits) {
            if (c < '0' || c > '9') {
              return Status::ParseError("malformed synced_at token: " +
                                        std::string(extra));
            }
            synced_at = synced_at * 10 + static_cast<uint64_t>(c - '0');
          }
        } else {
          return Status::ParseError("unknown view header token: " +
                                    std::string(extra));
        }
      }
    }
    ViewState state;
    if (EqualsIgnoreCase(state_word, "active")) {
      state = ViewState::kActive;
    } else if (EqualsIgnoreCase(state_word, "disabled")) {
      state = ViewState::kDisabled;
    } else {
      return Status::ParseError("unknown view state: " +
                                std::string(state_word));
    }
    const size_t body_start = header_end + 1;
    size_t body_end = text.find(';', body_start);
    if (body_end == std::string_view::npos) {
      return Status::ParseError("view statement missing terminating ';'");
    }
    const std::string_view statement =
        Trim(text.substr(body_start, body_end - body_start));
    std::string view_name;
    if (state == ViewState::kActive) {
      EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(statement));
      view_name = parsed.name;
      EVE_RETURN_IF_ERROR(system->RegisterViewText(statement));
    } else {
      // A disabled view's definition may reference capabilities the current
      // MKB no longer has (that is usually WHY it is disabled), so it cannot
      // pass the strict binder. Restore it verbatim instead.
      EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(statement));
      view_name = parsed.name;
      EVE_ASSIGN_OR_RETURN(ViewDefinition bound, BindViewUnchecked(parsed));
      EVE_RETURN_IF_ERROR(system->RestoreView(std::move(bound),
                                              ViewState::kDisabled, synced_at));
    }
    if (!provisional.empty()) {
      EVE_RETURN_IF_ERROR(system->SetViewProvisionalSources(
          view_name, std::move(provisional)));
    }
    if (synced_at != 0) {
      // Active views re-registered above got a fresh registration stamp;
      // the saved stamp wins (it names the version the pool was frozen at).
      EVE_RETURN_IF_ERROR(system->SetViewSyncedVersion(view_name, synced_at));
    }
    pos = body_end + 1;
  }
  return Status::OK();
}

}  // namespace eve
