#include "eve/view_pool_io.h"

#include <sstream>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "esql/binder.h"
#include "sql/parser.h"

namespace eve {

std::string SaveViews(const EveSystem& system) {
  std::ostringstream os;
  for (const std::string& name : system.ViewNames()) {
    const RegisteredView* view = *system.GetView(name);
    os << "-- VIEW "
       << (view->state == ViewState::kActive ? "active" : "disabled")
       << "\n"
       << view->definition.ToString() << ";\n\n";
  }
  return os.str();
}

Status LoadViews(std::string_view text, EveSystem* system) {
  EVE_FAILPOINT(fp::kViewPoolLoadValidate);
  // Segment on "-- VIEW <state>" header lines; the statement body runs to
  // the terminating ';'.
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t header = text.find("-- VIEW ", pos);
    if (header == std::string_view::npos) break;
    const size_t header_end = text.find('\n', header);
    if (header_end == std::string_view::npos) {
      return Status::ParseError("truncated view header");
    }
    const std::string_view state_word =
        Trim(text.substr(header + 8, header_end - header - 8));
    ViewState state;
    if (EqualsIgnoreCase(state_word, "active")) {
      state = ViewState::kActive;
    } else if (EqualsIgnoreCase(state_word, "disabled")) {
      state = ViewState::kDisabled;
    } else {
      return Status::ParseError("unknown view state: " +
                                std::string(state_word));
    }
    const size_t body_start = header_end + 1;
    size_t body_end = text.find(';', body_start);
    if (body_end == std::string_view::npos) {
      return Status::ParseError("view statement missing terminating ';'");
    }
    const std::string_view statement =
        Trim(text.substr(body_start, body_end - body_start));
    if (state == ViewState::kActive) {
      EVE_RETURN_IF_ERROR(system->RegisterViewText(statement));
    } else {
      // A disabled view's definition may reference capabilities the current
      // MKB no longer has (that is usually WHY it is disabled), so it cannot
      // pass the strict binder. Restore it verbatim instead.
      EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(statement));
      EVE_ASSIGN_OR_RETURN(ViewDefinition bound, BindViewUnchecked(parsed));
      EVE_RETURN_IF_ERROR(
          system->RestoreView(std::move(bound), ViewState::kDisabled));
    }
    pos = body_end + 1;
  }
  return Status::OK();
}

}  // namespace eve
