// ShardedEveSystem: the sharded view-pool serving core.
//
// The pool of registered views is hash-partitioned (common/sharding.h) over
// N shards. Each shard is a full EveSystem replica: it holds the COMPLETE
// MKB (every MKB-evolving operation is applied to every shard in the same
// global order, so the replicas stay byte-identical — recovery asserts it)
// but only its own partition of the view pool. A capability change
// therefore runs the expensive CVS synchronization only on the shard(s)
// owning affected views; on every other shard it is a cheap no-op commit,
// so a change's cost scales with its OWN shard's pool, not the whole
// system's. Each shard has its own write-ahead journal and checkpoint
// section, and its own reader/writer lock held exclusively only for the
// short in-memory commit window (never during CVS).
//
// Reads are served RCU-style: after every committed global operation the
// coordinator publishes an immutable Snapshot (MKB tip + per-shard version
// ids) through one atomic pointer swap (common/epoch_ptr.h). Readers pin
// the current snapshot with a single atomic load and keep a whole
// consistent version alive for as long as they hold it — they never block,
// and are never blocked by, a running synchronization.
//
// Determinism: per-shard reports are byte-identical to what a single
// system holding just that partition would produce, and MergeReports
// reconstructs the exact single-system report (unaffected outcomes in
// name order, then affected outcomes in name order), so the merged report
// is byte-identical at ANY shard count and drain parallelism.
//
// Durability across N journals (docs/SHARDING.md): global operations fan
// out one record per shard journal; recovery counts completed global units
// per journal and truncates every journal to the longest prefix present on
// ALL shards (the cross-shard barrier), so the system deterministically
// recovers to the pre- or post-state of the interrupted operation, never a
// mixed state. Checkpoints are made atomic across the N section files by a
// manifest rename plus per-journal generation markers (kJournalEpoch).

#ifndef EVE_EVE_SHARDED_SYSTEM_H_
#define EVE_EVE_SHARDED_SYSTEM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/epoch_ptr.h"
#include "common/result.h"
#include "common/sharding.h"
#include "eve/eve_system.h"
#include "eve/journal.h"

namespace eve {

// One immutable published version of the whole sharded system.
struct ShardedSnapshot {
  // Monotonic publication counter (0 = never published).
  uint64_t epoch = 0;
  // The MKB tip at publication (the shard-0 replica; all replicas agree).
  std::shared_ptr<const Mkb> mkb;
  // Each shard's committed version id at publication.
  std::vector<uint64_t> shard_versions;
  // Each shard's pinned tip version node. Holding the snapshot keeps every
  // rendered segment alive and byte-stable across concurrent commits, so
  // readers (evectl SHOW VIEWS / SHOW VIEW) serve view definitions from
  // these bytes without touching any shard lock.
  std::vector<std::shared_ptr<const MkbVersion>> shard_tips;

  // The pinned VIEWS segment body of shard `i` ("" if the shard has never
  // committed a views rendering, e.g. the genesis version).
  const std::string& ViewsText(size_t i) const;
};

// Per-shard serving statistics (SHOW SHARD STATS).
struct ShardStatsRow {
  size_t shard = 0;
  size_t views = 0;
  size_t active_views = 0;
  // Committed capability changes that affected at least one view owned by
  // this shard (every shard also absorbs the no-op replica commits; those
  // are not counted here).
  uint64_t commits = 0;
  // Queued changes whose affected-view set intersects this shard.
  size_t queue_depth = 0;
  // The shard's committed version-chain tip.
  uint64_t last_synced_version = 0;
};

class ShardedEveSystem {
 public:
  explicit ShardedEveSystem(Mkb mkb, CvsOptions options = {},
                            size_t shard_count = 1);

  ShardedEveSystem(ShardedEveSystem&&) = default;
  ShardedEveSystem& operator=(ShardedEveSystem&&) = default;

  // Repartitions into `n` shards. Only allowed while the pool is empty and
  // no journals are attached — the hash placement of already-registered
  // views (and their journal records) cannot be rewritten in place.
  Status SetShardCount(size_t n);
  size_t shard_count() const { return shards_.size(); }

  // The shard that owns view `name`.
  size_t ShardOfView(const std::string& name) const {
    return ShardOf(name, shards_.size());
  }

  // Direct shard access. Shard 0 of a 1-shard system IS the classic
  // single EveSystem (evectl delegates to it for exact legacy behavior).
  EveSystem& shard(size_t i) { return shards_[i]->system; }
  const EveSystem& shard(size_t i) const { return shards_[i]->system; }

  // Configuration fan-out to every shard.
  void SetSyncParallelism(size_t threads);
  void SetReportUnaffected(bool on);
  void SetVersioningMode(VersioningMode mode);
  void SetExecutorStrategy(JoinStrategy strategy);
  JoinStrategy executor_strategy() const { return shard(0).executor_strategy(); }

  // --- Reads ---------------------------------------------------------------

  // Pins the last published snapshot: one atomic load, no shard locks, and
  // the snapshot stays byte-stable across any number of concurrent
  // commits. Null until the first PublishSnapshot().
  std::shared_ptr<const ShardedSnapshot> PinPublished() const {
    return published_->Pin();
  }

  // Publishes the current committed state. Mutating operations publish
  // internally; callers driving a shard directly (evectl's 1-shard
  // delegation) call this after each mutation.
  void PublishSnapshot();

  // Merged name-sorted view names / counts across shards.
  std::vector<std::string> ViewNames() const;
  size_t NumViews() const;
  size_t NumActiveViews() const;
  Result<const RegisteredView*> GetView(const std::string& name) const;

  // Merged name-sorted affected views (each shard answers from its own
  // inverted index, under its shared lock).
  std::vector<std::string> AffectedViews(const CapabilityChange& change) const;

  // --- Mutations (single coordinator thread) -------------------------------
  //
  // All mutating calls must come from one coordinator thread at a time
  // (readers are lock-free against them). DrainSyncQueueParallel spawns
  // its own per-shard workers internally.

  // MKB evolution, fanned out to every replica in order.
  Status ExtendMkb(std::string_view misd_text);
  Status RetractConstraint(const std::string& id);

  // View registration, routed to the owning shard.
  Status RegisterView(const ViewDefinition& view);
  Status RegisterViewText(std::string_view text);
  // Partitions the batch by owning shard; one journal record and one
  // version commit per shard touched.
  Status RegisterViewsBulk(const std::vector<ViewDefinition>& views);
  Status SetViewState(const std::string& name, ViewState state);

  // The three-step strategy across shards: prepare on EVERY shard first
  // (any prepare failure aborts cleanly with nothing committed anywhere),
  // then commit shard by shard in index order. The merged report is
  // byte-identical to the single-system report for the same pool.
  Result<ChangeReport> ApplyChange(const CapabilityChange& change);

  // Transactional batch across shards: per-shard journal batch brackets,
  // all-shards rollback on failure.
  Result<std::vector<ChangeReport>> ApplyChanges(
      const std::vector<CapabilityChange>& changes);

  // --- Admission -----------------------------------------------------------
  //
  // EnqueueChange, queued_changes and admission_stats are safe from any
  // thread (network sessions admit concurrently); drains serialize among
  // themselves and count the in-flight change as queued until its outcome
  // lands, so submitted == completed + shed + queued_now holds at every
  // sampled instant.

  void SetSyncQueueLimit(size_t limit) { sync_queue_limit_ = limit; }
  size_t sync_queue_limit() const { return sync_queue_limit_; }
  Status EnqueueChange(const CapabilityChange& change);
  // FIFO drain on the calling thread, one cross-shard commit per change.
  Result<std::vector<ChangeReport>> DrainSyncQueue();
  // One worker per shard: each applies the SAME queued change stream in
  // order to its own shard (prepare outside the shard lock, commit under
  // it), so changes whose affected views land on different shards run
  // their synchronizations concurrently. Reports are merged after the
  // join — byte-identical to the sequential drain's.
  Result<std::vector<ChangeReport>> DrainSyncQueueParallel();
  size_t queued_changes() const {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    return sync_queue_.size();
  }
  AdmissionStats admission_stats() const {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    return admission_stats_;
  }

  // --- Observability -------------------------------------------------------

  std::vector<ShardStatsRow> Stats() const;
  std::string RenderShardStats() const;

  // A commit-phase failure left the replicas potentially diverged; every
  // further mutation is refused until the system is recovered from its
  // journals (which re-converges the replicas deterministically).
  bool poisoned() const { return poisoned_; }

  // --- Durability ----------------------------------------------------------

  // Opens (creating if absent) and attaches one journal per shard:
  // "<wal_base>.shard<i>". The journals are owned by this object.
  Status AttachJournals(const std::string& wal_base);
  void DetachJournals();
  bool journals_attached() const { return !wal_base_.empty(); }

  // Checkpoints every shard and resets the journals, atomically across the
  // N files: per-shard section files "<ckpt_base>.shard<i>.g<G>" are
  // written first, then the manifest "<ckpt_base>.manifest" rename commits
  // generation G, then each journal is reset and stamped with a
  // kJournalEpoch(G) record. A crash before the manifest rename keeps
  // generation G-1; a crash after it leaves stale journals that recovery
  // detects by their missing epoch marker.
  Status WriteShardedCheckpoint(const std::string& ckpt_base);

  // Rebuilds the system from the manifest + per-shard checkpoints +
  // per-shard journals. Applies the cross-shard barrier (truncate every
  // journal to the longest globally-complete prefix), then replays each
  // shard — in parallel when `parallel_replay` is set, serially otherwise;
  // both produce byte-identical state (asserted in tests). The recovered
  // system has no journals attached.
  static Result<ShardedEveSystem> RecoverShardedFromFiles(
      const std::string& ckpt_base, const std::string& wal_base,
      RecoveryReport* report = nullptr, bool parallel_replay = true);

 private:
  struct Shard {
    explicit Shard(EveSystem sys) : system(std::move(sys)) {}
    EveSystem system;
    // Exclusive only for the in-memory commit window; readers share.
    mutable std::shared_mutex mu;
    std::unique_ptr<Journal> journal;
    uint64_t commits = 0;
  };

  ShardedEveSystem() = default;  // recovery assembles shards directly

  // Cross-shard prepare-all/commit-all for one change; does NOT publish.
  Result<ChangeReport> ApplyChangeNoPublish(const CapabilityChange& change);

  // Reconstructs the single-system report from the per-shard reports:
  // unaffected outcomes (name order), then affected outcomes (name
  // order); constraint lists must agree across shards.
  static Result<ChangeReport> MergeReports(
      const std::vector<ChangeReport>& per_shard);

  // Re-renders every replica's MKB and fails if any diverges from shard 0.
  Status CheckReplicaConvergence() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  // Behind unique_ptr: the atomic inside EpochPtr pins it in place, while
  // ShardedEveSystem itself stays movable (Result returns).
  std::unique_ptr<EpochPtr<ShardedSnapshot>> published_ =
      std::make_unique<EpochPtr<ShardedSnapshot>>();
  uint64_t epoch_ = 0;
  std::string wal_base_;
  uint64_t checkpoint_generation_ = 0;
  size_t sync_queue_limit_ = 0;
  std::deque<CapabilityChange> sync_queue_;
  AdmissionStats admission_stats_;
  // admission_mu_ guards sync_queue_ + admission_stats_; drain_mu_
  // serializes drains against each other. Drains only peek/pop under
  // admission_mu_ and apply changes outside it, so admission_mu_ is never
  // held while taking shard locks. Behind shared_ptr so the system stays
  // movable.
  std::shared_ptr<std::mutex> admission_mu_ = std::make_shared<std::mutex>();
  std::shared_ptr<std::mutex> drain_mu_ = std::make_shared<std::mutex>();
  bool poisoned_ = false;
};

// --- Cross-shard journal barrier (exposed for tests) ------------------------

// The number of COMPLETED global units in one shard journal's record list.
// A global unit is one globally-ordered operation that fans out to every
// shard journal: a kApplyChange / kExtendMkb / kRetractConstraint /
// kRollback record outside a batch, or one whole batch (counted at its
// kCommitBatch / kAbortBatch marker). Shard-local records (registrations,
// view-state flips, membership rows, version markers, epoch markers) pass
// through uncounted.
size_t CompletedGlobalUnits(const std::vector<JournalRecord>& records);

// The record-count prefix of `records` containing exactly `units`
// completed global units plus any trailing shard-local records before the
// next unit begins. Truncating every shard journal to its own
// PrefixEndForUnits(min over shards) is the cross-shard recovery barrier.
size_t PrefixEndForUnits(const std::vector<JournalRecord>& records,
                         size_t units);

}  // namespace eve

#endif  // EVE_EVE_SHARDED_SYSTEM_H_
