// EveSystem: the end-to-end EVE facade implementing the paper's three-step
// strategy (Sec. 4): on a capability change it (1) evolves the MKB,
// (2) detects affected views, (3) synchronizes each affected view with CVS,
// replacing definitions of curable views and disabling the rest.

#ifndef EVE_EVE_EVE_SYSTEM_H_
#define EVE_EVE_EVE_SYSTEM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "cvs/cvs.h"
#include "esql/view_definition.h"
#include "eve/materialization.h"
#include "federation/membership.h"
#include "mkb/capability_change.h"
#include "mkb/mkb.h"
#include "mkb/version_store.h"

namespace eve {

class Journal;
struct JournalRecord;

enum class ViewState { kActive, kDisabled };

struct RegisteredView {
  ViewDefinition definition;
  ViewState state = ViewState::kActive;
  // One line per synchronization event ("rewritten under delete-relation
  // Customer", ...).
  std::vector<std::string> history;
  // Degraded-mode marker: sources this view's current rewriting depends on
  // that were SUSPECT/QUARANTINED when the rewriting was chosen. The
  // rewriting used last-known (possibly stale) constraints from those
  // sources; the marks clear when every listed source heals to HEALTHY.
  std::set<std::string> provisional_sources;
  // The MKB version this view's definition was last validated or
  // synchronized against: the version created by its registration, by the
  // ApplyChange that last rewrote it, or carried verbatim through a
  // rollback. The scrubber checks it always names a retained version.
  uint64_t synced_at_version = 0;
};

enum class ViewOutcomeKind { kUnaffected, kRewritten, kDisabled };

struct ViewOutcome {
  std::string view_name;
  ViewOutcomeKind kind = ViewOutcomeKind::kUnaffected;
  // For kRewritten: the chosen rewriting's description; for kDisabled: the
  // failure diagnostics.
  std::string detail;
  // Degraded sources the rewriting leaned on (see
  // RegisteredView::provisional_sources). Un-marked in place when the
  // sources heal, so a healed-within-lease run's report log converges to
  // the fault-free log byte for byte.
  std::vector<std::string> provisional_sources;
};

struct ChangeReport {
  CapabilityChange change;
  std::vector<std::string> dropped_constraints;
  std::vector<std::string> weakened_constraints;
  std::vector<ViewOutcome> outcomes;

  size_t CountOutcome(ViewOutcomeKind kind) const;
  std::string ToString() const;
};

// Per-view incompleteness lists for the most recent change, plus watchdog
// accounting. Deterministic: assembled on the calling thread in view-name
// order, so the lists are byte-identical at any sync parallelism.
// Observability only — not part of ChangeReport, not journaled.
struct SyncDiagnostics {
  // Views whose candidate enumeration was cut by a count bound
  // (max_cover_combinations, candidate_budget/max_results before
  // exhaustion, or search_sets_cut) — their result may be incomplete.
  // Sorted by name.
  std::vector<std::string> truncated_views;
  // Views whose search was stopped by the deadline token (work budget,
  // wall deadline, or cancellation): their rewriting list is a valid
  // best-under-budget prefix. Sorted by name.
  std::vector<std::string> deadline_views;
  // Times the wall-clock watchdog cancelled a sync that overran its
  // deadline without reaching a cooperative check first.
  uint64_t watchdog_cancels = 0;

  // "truncated views: A, B; deadline views: C" — empty when clean.
  std::string ToString() const;
};

// Admission accounting for the bounded sync queue. The shedding invariant
// (checked by tests and the CI stress job): submitted == completed + shed
// + queued_now — every submitted change is either applied (completed,
// successfully or with an explicit per-change error), rejected with an
// explicit ResourceExhausted (shed), or still waiting. Nothing disappears
// silently.
struct AdmissionStats {
  uint64_t submitted = 0;  // EnqueueChange calls
  uint64_t shed = 0;       // rejected: queue at limit (or injected fault)
  uint64_t completed = 0;  // drained and applied (includes explicit
                           // per-change failures; see failed)
  uint64_t failed = 0;     // of completed: ApplyChange returned an error
  size_t queued_now = 0;   // currently waiting

  // "submitted 5, completed 3 (1 failed), shed 2, queued 0".
  std::string ToString() const;
};

// What Recover did with the journal, for operator diagnostics.
struct RecoveryReport {
  size_t replayed = 0;       // records applied successfully
  size_t skipped = 0;        // records whose replay failed (e.g. the change
                             // also failed in the original run)
  size_t discarded = 0;      // records in uncommitted batches
  bool torn_tail = false;    // journal ended in a torn record
  size_t torn_bytes = 0;     // bytes dropped with the torn tail
  std::vector<std::string> notes;

  std::string ToString() const;
};

// The outcome of a what-if synchronization (DryRunChange / DryRunChangeAt):
// exactly the ChangeReport a commit from `base_version` would produce, plus
// the sync diagnostics of the run — with zero side effects on the system.
struct DryRunReport {
  uint64_t base_version = 0;  // the pinned version the CVS run read
  ChangeReport report;
  SyncDiagnostics diagnostics;

  std::string ToString() const;
};

// What each committed version retains for the view pool.
enum class VersioningMode {
  // Every version carries the serialized view pool (the default): full
  // point-in-time rollback and AT VERSION reads.
  kFullSnapshots,
  // Versions share the VIEWS segment frozen at the mode switch instead of
  // re-rendering the pool — a commit costs O(MKB), not O(views). The MKB
  // chain stays fully versioned; RollbackToVersion and DryRunChangeAt are
  // unavailable. For million-view pools where rendering the pool per
  // commit would dominate every change.
  kMkbOnly,
};

class EveSystem {
 public:
  explicit EveSystem(Mkb mkb, CvsOptions options = {});

  // The live (tip) MKB. Reads through the pinned tip snapshot, so copies
  // of the returned reference stay valid while a caller holds PinTip().
  const Mkb& mkb() const { return *mkb_tip_; }

  // --- Versioning ----------------------------------------------------------
  //
  // Every journaled mutation (MKB extension/retraction, view registration
  // and state flips, capability changes, rollbacks) commits a new immutable
  // version into the copy-on-write chain; reads can pin any retained
  // version in O(1) and are never blocked (or torn) by a running
  // synchronization. Federation membership rows are deliberately NOT
  // versioned: a healed run must stay byte-identical to a fault-free run.

  const MkbVersionStore& versions() const { return versions_; }
  uint64_t current_version() const { return versions_.tip_id(); }

  // O(1) snapshot of the tip (shared_ptr swap, no copy, no parse).
  PinnedMkb PinTip() const { return versions_.Tip(); }
  // Pins an arbitrary retained version (non-tip versions reparse).
  Result<PinnedMkb> PinVersion(uint64_t version) const {
    return versions_.Pin(version);
  }
  // The serialized view pool frozen at `version` (AT VERSION n reads).
  Result<std::string> ViewsTextAt(uint64_t version) const {
    return versions_.ViewsAt(version);
  }

  // What-if synchronization: runs the full prepare phase (MKB evolution,
  // affected-view detection, CVS) against the pinned tip and ABORTS —
  // nothing is journaled, no version is created, MKB and views are
  // byte-unchanged. The report matches what ApplyChange would commit.
  Result<DryRunReport> DryRunChange(const CapabilityChange& change) const;
  // Same, against retained version `version`: the report a
  // RollbackToVersion(version) followed by ApplyChange(change) would
  // produce, again with zero side effects.
  Result<DryRunReport> DryRunChangeAt(const CapabilityChange& change,
                                      uint64_t version) const;

  // Restores MKB and view pool to retained version `version`, committed as
  // a NEW journaled version (kRollback) — history is never truncated, so a
  // rollback can itself be rolled back. Surviving views keep their full
  // history plus a rollback marker. Returns the new version's id.
  Result<uint64_t> RollbackToVersion(uint64_t version);

  // Integrity scrub: the whole version chain (segment checksums, version
  // checksums, id sequence, parent links — see MkbVersionStore::Scrub)
  // plus every view's synced_at_version naming a retained version and the
  // live MKB re-rendering byte-identically to the tip version's segments.
  VersionScrubStats ScrubVersions() const;

  // Checkpoint loading only: overrides a view's synced-at stamp verbatim.
  Status SetViewSyncedVersion(const std::string& name, uint64_t version);
  // Checkpoint loading only: replaces the version chain (the live MKB must
  // re-render to the store's tip, else the checkpoint is inconsistent).
  Status RestoreVersionStore(MkbVersionStore store);

  // Additive MKB evolution: a (new or existing) source publishes MISD
  // statements — relations, join constraints, function-of constraints, PC
  // constraints. Purely additive, so no view is affected (paper Sec. 5:
  // add-relation / add-attribute leave views valid). Atomic: on failure
  // the MKB is unchanged.
  Status ExtendMkb(std::string_view misd_text);

  // A source withdraws a published constraint. Views stay valid (they
  // never reference constraints directly), but future synchronizations
  // lose the retracted semantics.
  Status RetractConstraint(const std::string& id);

  // Registers a bound view (re-validated against the current MKB).
  Status RegisterView(const ViewDefinition& view);
  // Parses, binds and registers an E-SQL CREATE VIEW statement.
  Status RegisterViewText(std::string_view text);
  // Registers a batch of views as ONE journal record and ONE committed
  // version (all-or-nothing validation up front; nothing is journaled or
  // registered if any view fails). Bulk loading a million-view pool this
  // way is O(batch) journal fsyncs instead of O(views).
  Status RegisterViewsBulk(const std::vector<ViewDefinition>& views);

  // Selects what each committed version retains (see VersioningMode). Not
  // journaled — a configuration like sync parallelism, set before heavy
  // load; recovery replays under whatever mode the recovering process set.
  void SetVersioningMode(VersioningMode mode) { versioning_mode_ = mode; }
  VersioningMode versioning_mode() const { return versioning_mode_; }

  // Whether each ChangeReport lists a kUnaffected outcome per untouched
  // view (CvsOptions::report_unaffected): O(pool) per change when on.
  void SetReportUnaffected(bool on) { options_.report_unaffected = on; }
  bool report_unaffected() const { return options_.report_unaffected; }

  // --- Materialization (data plane) ----------------------------------------
  //
  // Optionally couples the control plane to a physical data plane: a
  // MaterializedViewStore holding view extents and the Database holding
  // the base tables (both non-owning; pass nullptr/nullptr to detach).
  // While attached, every committed capability change is propagated
  // post-commit: the change is applied to the database
  // (ApplyChangeToDatabase), each rewritten view's stored extent is
  // brought to its new definition via IncrementalRefresh — consulting the
  // CVS-inferred extent verdict, so Equal-verdict rewritings reuse the old
  // extent with zero scanning — and disabled views' extents are dropped.
  // Data-plane failures surface as the change's (deferred) error but never
  // roll back the already-committed control-plane state. The database must
  // hold every relation a change touches. Rollback and recovery do NOT
  // restore extents; re-attach and refresh after either.
  void AttachMaterialization(MaterializedViewStore* store, Database* db) {
    mat_store_ = store;
    mat_db_ = db;
    if (mat_store_ != nullptr) mat_store_->SetStrategy(executor_strategy_);
  }
  MaterializedViewStore* materialization() const { return mat_store_; }

  // Join/executor strategy for all view evaluation this system triggers
  // (incremental-refresh delta queries and full refreshes through the
  // attached store). Also forwarded to the attached store, if any.
  void SetExecutorStrategy(JoinStrategy strategy) {
    executor_strategy_ = strategy;
    if (mat_store_ != nullptr) mat_store_->SetStrategy(strategy);
  }
  JoinStrategy executor_strategy() const { return executor_strategy_; }

  Result<const RegisteredView*> GetView(const std::string& name) const;

  // Flags a registered view (used by view-pool persistence and operators
  // manually disabling a view).
  Status SetViewState(const std::string& name, ViewState state);
  std::vector<std::string> ViewNames() const;
  size_t NumViews() const { return views_.size(); }
  size_t NumActiveViews() const;

  // Detects the views step 2 flags as affected by `change` against the
  // current MKB (directly: they reference the deleted/renamed element).
  // Served from the inverted relation/attribute → views index, so the cost
  // scales with the number of dependent views, not the pool size. Returns
  // names in sorted order.
  std::vector<std::string> AffectedViews(const CapabilityChange& change) const;

  // Sets how many threads (including the calling one) step 3 uses to
  // synchronize the affected views of one change. 0 and 1 both mean fully
  // sequential. Reports, journal records and all observable state are
  // byte-identical at every setting: workers only compute per-view CVS
  // results into private slots; assembly, journaling and commit stay on
  // the calling thread in view-name order.
  void SetSyncParallelism(size_t threads);
  size_t sync_parallelism() const { return sync_parallelism_; }

  // Per-sync enumeration knobs, threaded into every CVS run (including the
  // parallel batch path — they only narrow each view's private search, so
  // reports stay byte-identical across thread counts). 0 disables either.
  void SetSyncTopK(size_t k) { options_.top_k = k; }
  size_t sync_top_k() const { return options_.top_k; }
  void SetSyncCandidateBudget(size_t budget) {
    options_.candidate_budget = budget;
  }
  size_t sync_candidate_budget() const { return options_.candidate_budget; }

  // --- Deadlines and cancellation ------------------------------------------
  //
  // Two independent stopping mechanisms, both cooperative (checked at
  // enumeration-step safe points, so a search never overruns by more than
  // one step):
  //
  //  * The logical work budget is DETERMINISTIC: it counts enumerator
  //    expansions and candidate emissions per view, each view's token is
  //    spent entirely on the thread running that view, and every stopped
  //    layer returns its best-so-far prefix. Reports, stats and journal
  //    bytes are therefore byte-identical at any sync parallelism.
  //  * The wall-clock deadline (and the watchdog backstop) are BEST
  //    EFFORT: where a run stops depends on machine speed, so results
  //    under a wall deadline are valid partial results but not
  //    reproducible bytes. Tests pin the clock with SetClockForTesting.

  // Per-view logical work budget (0 = unlimited). One unit is one join-tree
  // frontier expansion or one candidate emission.
  void SetSyncWorkBudget(uint64_t units) { sync_work_budget_ = units; }
  uint64_t sync_work_budget() const { return sync_work_budget_; }

  // Wall-clock deadline per change (0 = none), measured from the start of
  // ApplyChange on the configured clock.
  void SetSyncDeadlineMicros(uint64_t micros) { sync_deadline_micros_ = micros; }
  uint64_t sync_deadline_micros() const { return sync_deadline_micros_; }

  // Watchdog backstop (0 = off): a real-time guard thread that cancels the
  // change's whole cancellation tree if synchronization is still running
  // after this long — catches a task stuck between cooperative checks.
  // Always real time, independent of SetClockForTesting.
  void SetSyncWatchdogMicros(uint64_t micros) { sync_watchdog_micros_ = micros; }
  uint64_t sync_watchdog_micros() const { return sync_watchdog_micros_; }

  // Clock the deadline token reads (tests install a ManualClock; nullptr
  // restores the steady clock). Non-owning; must outlive the system.
  void SetClockForTesting(const Clock* clock) { sync_clock_ = clock; }

  // Cancels the change currently being synchronized (if any): the root
  // token is cancelled, and every per-view search stops at its next safe
  // point, returning its best-so-far prefix. Safe to call from any thread;
  // a no-op when no sync is active.
  void CancelActiveSync() const;

  // --- Admission control ---------------------------------------------------
  //
  // A bounded FIFO of pending changes with explicit load-shedding. Each
  // drained change runs under a fresh deadline token built from the knobs
  // above. Invariant: submitted == completed + shed + queued_now.
  //
  // Thread safety: EnqueueChange, queued_changes, admission_stats and
  // CancelActiveSync may be called concurrently from any number of threads
  // (the network front end admits from many sessions at once). Drains are
  // serialized among themselves, and a change being applied still counts
  // as queued until its outcome is recorded, so the invariant above holds
  // at EVERY observable instant, not just at rest.

  // Queue bound for EnqueueChange (0 = unbounded).
  void SetSyncQueueLimit(size_t limit) { sync_queue_limit_ = limit; }
  size_t sync_queue_limit() const { return sync_queue_limit_; }

  // Admits `change` into the pending queue. When the queue is at its
  // limit, the NEWEST submission (this one) is rejected with an explicit
  // kResourceExhausted — never silently dropped.
  Status EnqueueChange(const CapabilityChange& change);

  // Applies every queued change in FIFO order, each under its own deadline
  // built from the current knobs. Stops at the first failing change with
  // its error; the remainder stays queued for a later drain.
  Result<std::vector<ChangeReport>> DrainSyncQueue();

  size_t queued_changes() const {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    return sync_queue_.size();
  }
  // A consistent snapshot of the counters (all four fields are updated
  // under one lock, so a sampled snapshot always satisfies the invariant).
  AdmissionStats admission_stats() const {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    return admission_stats_;
  }

  // Per-view truncation/deadline lists for the most recent ApplyChange or
  // PreviewChange (same lifecycle as last_sync_stats()).
  const SyncDiagnostics& last_sync_diagnostics() const {
    return last_sync_diagnostics_;
  }

  // Enumeration counters aggregated (in view-name order, on the calling
  // thread) across the affected views of the most recent ApplyChange or
  // PreviewChange. Observability only — not part of ChangeReport, not
  // journaled, not restored by recovery.
  const EnumerationStats& last_sync_stats() const { return last_sync_stats_; }

  // The three-step strategy. On success the MKB is evolved and every
  // affected view is either rewritten in place (keeping its registered
  // name) or disabled.
  Result<ChangeReport> ApplyChange(const CapabilityChange& change);

  // What-if analysis: the report ApplyChange(change) WOULD produce, with
  // no state mutated — lets an administrator see which views a change
  // would disable before the source actually withdraws the capability.
  Result<ChangeReport> PreviewChange(const CapabilityChange& change) const;

  // An information source leaves the environment (paper Sec. 1): applies
  // delete-relation for every relation the source exports, one change at a
  // time, so views can hop between the departing source's relations while
  // some still exist. Returns one report per deleted relation. The whole
  // cascade is one transaction (journaled as a batch): a failure mid-way
  // rolls every relation back, so the source is either fully present or
  // fully departed — never half-left.
  Result<std::vector<ChangeReport>> SourceLeaves(const std::string& source);

  // --- Federation membership ----------------------------------------------
  //
  // EveSystem is the durable home of the per-source membership table (see
  // federation/membership.h); the probe scheduler that drives transitions
  // lives above it in federation/monitor.h.

  const std::map<std::string, federation::SourceMembership>&
  source_membership() const {
    return membership_;
  }

  // Journals (kSourceMembership) and commits one source's membership row.
  // When the row heals to HEALTHY, the source's provisional marks are
  // removed from every live view and every logged outcome — the degraded
  // rewritings are thereby confirmed, and the state converges to what a
  // fault-free run would have produced.
  Status SetSourceMembership(const std::string& source,
                             const federation::SourceMembership& membership);

  // Lease expiry: marks the source DEPARTED and runs the SourceLeaves
  // cascade in the same transaction (tolerating a source that exports no
  // relations). This is the only path from probe faults to rewriting churn.
  Result<std::vector<ChangeReport>> DepartSource(const std::string& source);

  // Checkpoint loading only: replaces the membership table verbatim, no
  // journaling, no heal side effects.
  void RestoreSourceMembership(
      std::map<std::string, federation::SourceMembership> table) {
    membership_ = std::move(table);
  }

  // Checkpoint loading only: restores a view's provisional marks verbatim.
  Status SetViewProvisionalSources(const std::string& name,
                                   std::set<std::string> sources);

  // Applies `changes` in order as one unit. When `transactional` is true
  // and any change fails (e.g. it references an element that is already
  // gone), the MKB, view pool and change log are restored to their state
  // before the batch; views disabled mid-batch stay disabled otherwise.
  Result<std::vector<ChangeReport>> ApplyChanges(
      const std::vector<CapabilityChange>& changes,
      bool transactional = true);

  const std::vector<ChangeReport>& change_log() const { return change_log_; }

  // --- Durability ----------------------------------------------------------

  // Attaches a write-ahead journal (non-owning; pass nullptr to detach).
  // While attached, every state mutation is journaled before it commits,
  // so RecoverFromFiles can rebuild the system after a crash.
  void AttachJournal(Journal* journal) { journal_ = journal; }
  Journal* journal() const { return journal_; }

  // Restores a view verbatim — no re-binding. Used by checkpoint/pool
  // loading, where a disabled view's definition may reference capabilities
  // the current MKB no longer has. `synced_at_version` is carried verbatim
  // (0 = unknown/legacy pools).
  Status RestoreView(ViewDefinition definition, ViewState state,
                     uint64_t synced_at_version = 0);

  // Replaces the change log wholesale (checkpoint loading only).
  void RestoreChangeLog(std::vector<ChangeReport> log) {
    change_log_ = std::move(log);
  }

  // Rebuilds a system from a checkpoint document plus scanned journal
  // records by idempotent replay: records whose application fails (they
  // failed identically before the crash) are skipped, and batch records
  // without a commit marker are discarded. The result is deterministically
  // the pre- or post-operation state of the interrupted run, never a third
  // state. The recovered system has no journal attached.
  static Result<EveSystem> Recover(std::string_view checkpoint_text,
                                   const std::vector<JournalRecord>& records,
                                   RecoveryReport* report = nullptr);

 private:
  // The sharded serving core (eve/sharded_system.h) drives the
  // prepare/commit split and per-shard internals directly.
  friend class ShardedEveSystem;
  // The incremental replay loop (eve/journal.h) feeds ReplayRecord one
  // record at a time — recovery and replication replicas share it.
  friend class JournalReplayer;

  // The abortable first phase of a capability change: MKB evolution,
  // affected-view detection and the full CVS fan-out, all against the
  // pinned tip version and all into private state. Discarding the result
  // IS the dry-run/abort path; CommitPrepared is the commit path.
  struct PreparedChange {
    CapabilityChange change;
    uint64_t base_version = 0;  // tip id the prepare ran against
    std::shared_ptr<const Mkb> next_mkb;
    // Post-sync state of ONLY the affected views (a delta, not a pool
    // copy — prepare must stay O(affected) on million-view pools).
    std::map<std::string, RegisteredView> next_views;
    std::vector<std::string> affected;
    ChangeReport report;
    // CVS-inferred extent verdict per rewritten view (absent for disabled
    // views). Consumed by the post-commit materialization hook; not
    // journaled — recovery rebuilds extents by refreshing, not by replay.
    std::map<std::string, ExtentRelation> verdicts;
  };
  Result<PreparedChange> PrepareChange(const CapabilityChange& change) const;
  // Journals (kApplyChange + kVersionCommit), swaps the tip pointer and
  // view pool, and commits the new version. Fails with kFailedPrecondition
  // if the tip advanced since the prepare.
  Result<ChangeReport> CommitPrepared(PreparedChange prepared);

  // Commits the current live state as a new version.
  uint64_t CommitVersion(const std::string& change_desc);

  // Post-commit data-plane propagation (see AttachMaterialization). Runs
  // after the in-memory commit; `old_defs` holds the affected views'
  // pre-change definitions. Returns the first failure, after attempting
  // every view.
  Status SyncMaterialization(
      const PreparedChange& prepared,
      const std::map<std::string, ViewDefinition>& old_defs);

  // Appends to the attached journal, if any.
  Status JournalAppend(const JournalRecord& record);
  // Replays one journal record onto this system (no journaling).
  Status ReplayRecord(const JournalRecord& record);

  // The transactional delete-relation cascade shared by SourceLeaves and
  // DepartSource. A tracked source's DEPARTED membership row is written
  // inside the same batch. `require_relations` makes an empty source an
  // error (an operator-invoked SourceLeaves on an unknown source is a
  // typo; a lease expiry on a relation-less source is a plain departure).
  Result<std::vector<ChangeReport>> LeaveCascade(const std::string& source,
                                                 bool require_relations);

  // Sources whose membership row is Degraded() among those owning a
  // relation `definition` references in `catalog` (sorted, deduped).
  std::vector<std::string> DegradedSourcesOf(const ViewDefinition& definition,
                                             const Catalog& catalog) const;

  // Inverted-index maintenance. Every registered view is indexed under
  // each relation and attribute it references, regardless of state
  // (AffectedViews filters on kActive, so a re-enabled view needs no
  // re-indexing).
  void IndexView(const std::string& name, const ViewDefinition& definition);
  void UnindexView(const std::string& name, const ViewDefinition& definition);
  void RebuildViewIndex();

  // The live MKB is the immutable snapshot behind the version-store tip;
  // commits swap the pointer, so pinned readers keep the old snapshot.
  MkbVersionStore versions_;
  std::shared_ptr<const Mkb> mkb_tip_;
  CvsOptions options_;
  std::map<std::string, RegisteredView> views_;
  // relation name / "rel\x1f attr" key → names of views referencing it.
  // std::set values keep AffectedViews output name-sorted.
  std::unordered_map<std::string, std::set<std::string>> views_by_relation_;
  std::unordered_map<std::string, std::set<std::string>> views_by_attribute_;
  std::vector<ChangeReport> change_log_;
  std::map<std::string, federation::SourceMembership> membership_;
  Journal* journal_ = nullptr;  // non-owning
  MaterializedViewStore* mat_store_ = nullptr;  // non-owning
  Database* mat_db_ = nullptr;                  // non-owning
  JoinStrategy executor_strategy_ = JoinStrategy::kAuto;
  // Shared (not per-copy) so PreviewChange scratch copies reuse the pool;
  // ParallelFor keeps per-call completion state, so concurrent use is safe.
  std::shared_ptr<ThreadPool> sync_pool_;
  size_t sync_parallelism_ = 1;
  // mutable: PreviewChange is logically const but still reports how much
  // of the candidate space its scratch run explored.
  mutable EnumerationStats last_sync_stats_;
  mutable SyncDiagnostics last_sync_diagnostics_;
  uint64_t sync_work_budget_ = 0;
  uint64_t sync_deadline_micros_ = 0;
  uint64_t sync_watchdog_micros_ = 0;
  const Clock* sync_clock_ = nullptr;  // non-owning; nullptr = steady clock
  VersioningMode versioning_mode_ = VersioningMode::kFullSnapshots;
  size_t sync_queue_limit_ = 0;
  std::deque<CapabilityChange> sync_queue_;
  AdmissionStats admission_stats_;
  // Guards sync_queue_ + admission_stats_ against concurrent producers
  // (EnqueueChange from many sessions) racing the drain. Shared across
  // copies — like sync_token_mu_ — so EveSystem stays copyable.
  std::shared_ptr<std::mutex> admission_mu_ = std::make_shared<std::mutex>();
  // Serializes DrainSyncQueue callers (two drains applying the same change
  // twice would corrupt the accounting; enqueues stay concurrent).
  std::shared_ptr<std::mutex> drain_mu_ = std::make_shared<std::mutex>();
  // Root token of the in-flight change. Guarded by a shared (not per-copy)
  // mutex so CancelActiveSync and the watchdog may fire from other threads
  // while EveSystem itself stays copyable.
  std::shared_ptr<std::mutex> sync_token_mu_ = std::make_shared<std::mutex>();
  mutable DeadlineToken active_sync_token_;
};

}  // namespace eve

#endif  // EVE_EVE_EVE_SYSTEM_H_
