#include "eve/sharded_system.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/thread_pool.h"
#include "mkb/serializer.h"
#include "sql/parser.h"

namespace eve {

namespace {

constexpr char kManifestHeader[] = "EVESHARDS v1";

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string ShardJournalPath(const std::string& wal_base, size_t shard) {
  return wal_base + ".shard" + std::to_string(shard);
}

std::string ShardCheckpointPath(const std::string& ckpt_base, size_t shard,
                                uint64_t generation) {
  return ckpt_base + ".shard" + std::to_string(shard) + ".g" +
         std::to_string(generation);
}

std::string RenderManifest(size_t shards, uint64_t generation) {
  std::ostringstream os;
  os << kManifestHeader << "\n"
     << "shards " << shards << "\n"
     << "generation " << generation << "\n";
  return os.str();
}

Status ParseManifest(std::string_view text, size_t* shards,
                     uint64_t* generation) {
  std::istringstream is{std::string(text)};
  std::string header;
  if (!std::getline(is, header) || header != kManifestHeader) {
    return Status::ParseError("not a shard manifest");
  }
  std::string word;
  uint64_t n = 0, g = 0;
  if (!(is >> word >> n) || word != "shards" || n == 0) {
    return Status::ParseError("shard manifest missing shard count");
  }
  if (!(is >> word >> g) || word != "generation") {
    return Status::ParseError("shard manifest missing generation");
  }
  *shards = static_cast<size_t>(n);
  *generation = g;
  return Status::OK();
}

Status PoisonedError() {
  return Status::FailedPrecondition(
      "sharded system is poisoned (a commit-phase failure may have left "
      "the shard replicas diverged): recover from the shard journals");
}

bool IsGlobalUnitHead(JournalRecordKind kind) {
  switch (kind) {
    case JournalRecordKind::kApplyChange:
    case JournalRecordKind::kExtendMkb:
    case JournalRecordKind::kRetractConstraint:
    case JournalRecordKind::kRollback:
      return true;
    default:
      return false;
  }
}

// Keeps the records after the LAST kJournalEpoch marker naming
// `generation`. A journal without that marker (generation > 0) is stale:
// a crash hit between the manifest rename and this shard's journal reset,
// so every record it holds is subsumed by the generation's checkpoint.
std::vector<JournalRecord> FilterToEpoch(std::vector<JournalRecord> records,
                                         uint64_t generation, bool* stale) {
  *stale = false;
  if (generation == 0) return records;
  const std::string marker = std::to_string(generation);
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].kind == JournalRecordKind::kJournalEpoch &&
        records[i].body == marker) {
      return std::vector<JournalRecord>(records.begin() + i + 1,
                                        records.end());
    }
  }
  *stale = true;
  return {};
}

}  // namespace

size_t CompletedGlobalUnits(const std::vector<JournalRecord>& records) {
  size_t units = 0;
  bool in_batch = false;
  for (const JournalRecord& record : records) {
    switch (record.kind) {
      case JournalRecordKind::kBeginBatch:
        in_batch = true;
        break;
      case JournalRecordKind::kCommitBatch:
      case JournalRecordKind::kAbortBatch:
        if (in_batch) ++units;
        in_batch = false;
        break;
      default:
        if (!in_batch && IsGlobalUnitHead(record.kind)) ++units;
        break;
    }
  }
  return units;
}

size_t PrefixEndForUnits(const std::vector<JournalRecord>& records,
                         size_t units) {
  size_t completed = 0;
  bool in_batch = false;
  for (size_t i = 0; i < records.size(); ++i) {
    const JournalRecordKind kind = records[i].kind;
    if (kind == JournalRecordKind::kBeginBatch) {
      if (completed == units) return i;  // the next unit starts here
      in_batch = true;
    } else if (kind == JournalRecordKind::kCommitBatch ||
               kind == JournalRecordKind::kAbortBatch) {
      if (in_batch) ++completed;
      in_batch = false;
    } else if (!in_batch && IsGlobalUnitHead(kind)) {
      if (completed == units) return i;
      ++completed;
    }
  }
  return records.size();
}

ShardedEveSystem::ShardedEveSystem(Mkb mkb, CvsOptions options,
                                   size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  EveSystem seed(std::move(mkb), std::move(options));
  shards_.reserve(shard_count);
  for (size_t i = 0; i + 1 < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(EveSystem(seed)));
  }
  shards_.push_back(std::make_unique<Shard>(std::move(seed)));
  PublishSnapshot();
}

Status ShardedEveSystem::SetShardCount(size_t n) {
  if (n == 0) return Status::InvalidArgument("shard count must be >= 1");
  if (poisoned_) return PoisonedError();
  if (journals_attached()) {
    return Status::FailedPrecondition(
        "cannot reshard with journals attached: the per-shard journal "
        "layout is fixed by the shard count");
  }
  if (NumViews() > 0) {
    return Status::FailedPrecondition(
        "shard count is fixed after the first view registration (views "
        "are placed by hash and cannot be rehashed in place)");
  }
  if (n == shards_.size()) return Status::OK();
  EveSystem seed = shards_[0]->system;
  shards_.clear();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(EveSystem(seed)));
  }
  PublishSnapshot();
  return Status::OK();
}

void ShardedEveSystem::SetSyncParallelism(size_t threads) {
  for (auto& shard : shards_) shard->system.SetSyncParallelism(threads);
}

void ShardedEveSystem::SetReportUnaffected(bool on) {
  for (auto& shard : shards_) shard->system.SetReportUnaffected(on);
}

void ShardedEveSystem::SetVersioningMode(VersioningMode mode) {
  for (auto& shard : shards_) shard->system.SetVersioningMode(mode);
}

void ShardedEveSystem::SetExecutorStrategy(JoinStrategy strategy) {
  for (auto& shard : shards_) shard->system.SetExecutorStrategy(strategy);
}

const std::string& ShardedSnapshot::ViewsText(size_t i) const {
  static const std::string kEmpty;
  if (i >= shard_tips.size() || !shard_tips[i]) return kEmpty;
  const auto& segments = shard_tips[i]->segments;
  // VIEWS is always the last of the five segments (kVersionSegmentNames).
  if (segments.size() != kNumVersionSegments) return kEmpty;
  return segments.back()->body;
}

void ShardedEveSystem::PublishSnapshot() {
  auto snapshot = std::make_shared<ShardedSnapshot>();
  snapshot->epoch = ++epoch_;
  snapshot->shard_versions.reserve(shards_.size());
  snapshot->shard_tips.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    PinnedMkb pin = shard->system.PinTip();
    if (!snapshot->mkb) snapshot->mkb = pin.mkb;
    snapshot->shard_versions.push_back(pin.id());
    snapshot->shard_tips.push_back(std::move(pin.version));
  }
  published_->Publish(std::move(snapshot));
}

std::vector<std::string> ShardedEveSystem::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    std::vector<std::string> part = shard->system.ViewNames();
    names.insert(names.end(), part.begin(), part.end());
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ShardedEveSystem::NumViews() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->system.NumViews();
  }
  return total;
}

size_t ShardedEveSystem::NumActiveViews() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->system.NumActiveViews();
  }
  return total;
}

Result<const RegisteredView*> ShardedEveSystem::GetView(
    const std::string& name) const {
  const Shard& shard = *shards_[ShardOfView(name)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.system.GetView(name);
}

std::vector<std::string> ShardedEveSystem::AffectedViews(
    const CapabilityChange& change) const {
  std::vector<std::string> affected;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    std::vector<std::string> part = shard->system.AffectedViews(change);
    affected.insert(affected.end(), part.begin(), part.end());
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

Status ShardedEveSystem::ExtendMkb(std::string_view misd_text) {
  if (poisoned_) return PoisonedError();
  // Probe on a scratch copy first: a malformed extension must fail before
  // any replica journals or commits.
  {
    Mkb probe = shards_[0]->system.mkb();
    EVE_RETURN_IF_ERROR(AppendMisd(&probe, misd_text));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
    const Status status = shards_[i]->system.ExtendMkb(misd_text);
    if (!status.ok()) {
      if (i > 0) poisoned_ = true;  // a prefix of replicas already advanced
      return status;
    }
  }
  PublishSnapshot();
  return Status::OK();
}

Status ShardedEveSystem::RetractConstraint(const std::string& id) {
  if (poisoned_) return PoisonedError();
  {
    Mkb probe = shards_[0]->system.mkb();
    EVE_RETURN_IF_ERROR(probe.RemoveConstraint(id));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
    const Status status = shards_[i]->system.RetractConstraint(id);
    if (!status.ok()) {
      if (i > 0) poisoned_ = true;
      return status;
    }
  }
  PublishSnapshot();
  return Status::OK();
}

Status ShardedEveSystem::RegisterView(const ViewDefinition& view) {
  if (poisoned_) return PoisonedError();
  Shard& shard = *shards_[ShardOfView(view.name())];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    EVE_RETURN_IF_ERROR(shard.system.RegisterView(view));
  }
  PublishSnapshot();
  return Status::OK();
}

Status ShardedEveSystem::RegisterViewText(std::string_view text) {
  if (poisoned_) return PoisonedError();
  EVE_ASSIGN_OR_RETURN(const ParsedView parsed, ParseView(text));
  Shard& shard = *shards_[ShardOf(parsed.name, shards_.size())];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    EVE_RETURN_IF_ERROR(shard.system.RegisterViewText(text));
  }
  PublishSnapshot();
  return Status::OK();
}

Status ShardedEveSystem::RegisterViewsBulk(
    const std::vector<ViewDefinition>& views) {
  if (poisoned_) return PoisonedError();
  // Partition by owning shard, preserving batch order within each shard.
  std::vector<std::vector<ViewDefinition>> per_shard(shards_.size());
  for (const ViewDefinition& view : views) {
    per_shard[ShardOfView(view.name())].push_back(view);
  }
  // Each shard's sub-batch is atomic (one record, one version); the whole
  // call is not atomic ACROSS shards — a failure leaves earlier shards'
  // sub-batches registered. Registrations are shard-local, so the
  // replicas never diverge either way.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (per_shard[i].empty()) continue;
    std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
    EVE_RETURN_IF_ERROR(shards_[i]->system.RegisterViewsBulk(per_shard[i]));
  }
  PublishSnapshot();
  return Status::OK();
}

Status ShardedEveSystem::SetViewState(const std::string& name,
                                      ViewState state) {
  if (poisoned_) return PoisonedError();
  Shard& shard = *shards_[ShardOfView(name)];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    EVE_RETURN_IF_ERROR(shard.system.SetViewState(name, state));
  }
  PublishSnapshot();
  return Status::OK();
}

Result<ChangeReport> ShardedEveSystem::MergeReports(
    const std::vector<ChangeReport>& per_shard) {
  ChangeReport merged;
  merged.change = per_shard[0].change;
  merged.dropped_constraints = per_shard[0].dropped_constraints;
  merged.weakened_constraints = per_shard[0].weakened_constraints;
  for (size_t s = 1; s < per_shard.size(); ++s) {
    if (per_shard[s].dropped_constraints != merged.dropped_constraints ||
        per_shard[s].weakened_constraints != merged.weakened_constraints) {
      return Status::Internal(
          "shard replica divergence: constraint lists disagree across "
          "shards for change " + merged.change.ToString());
    }
  }
  // Reconstruct the single-system outcome order: every unaffected view in
  // name order (a single system pushes them while walking its name-sorted
  // pool map), then every synchronized view in name order.
  std::vector<ViewOutcome> unaffected;
  std::vector<ViewOutcome> synchronized;
  for (const ChangeReport& report : per_shard) {
    for (const ViewOutcome& outcome : report.outcomes) {
      (outcome.kind == ViewOutcomeKind::kUnaffected ? unaffected
                                                    : synchronized)
          .push_back(outcome);
    }
  }
  const auto by_name = [](const ViewOutcome& a, const ViewOutcome& b) {
    return a.view_name < b.view_name;
  };
  std::sort(unaffected.begin(), unaffected.end(), by_name);
  std::sort(synchronized.begin(), synchronized.end(), by_name);
  merged.outcomes = std::move(unaffected);
  merged.outcomes.insert(merged.outcomes.end(),
                         std::make_move_iterator(synchronized.begin()),
                         std::make_move_iterator(synchronized.end()));
  return merged;
}

Result<ChangeReport> ShardedEveSystem::ApplyChangeNoPublish(
    const CapabilityChange& change) {
  if (poisoned_) return PoisonedError();
  const size_t n = shards_.size();
  // Phase 1 — prepare on EVERY shard against its own pinned tip. All
  // failures here are clean: nothing was journaled, nothing committed,
  // on any shard. Prepare is deterministic, so a change that fails on one
  // replica fails identically on all of them.
  std::vector<EveSystem::PreparedChange> prepared;
  prepared.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Result<EveSystem::PreparedChange> p =
        shards_[i]->system.PrepareChange(change);
    if (!p.ok()) return p.status();
    prepared.push_back(p.MoveValue());
  }
  // Phase 2 — commit shard by shard in index order. The exclusive lock
  // covers only the short in-memory swap; the expensive CVS work all
  // happened in phase 1 under no lock.
  std::vector<ChangeReport> per_shard(n);
  std::vector<bool> touched(n, false);
  for (size_t i = 0; i < n; ++i) {
    // Crash here models death mid-fan-out: the change is journaled on a
    // strict prefix of the shard journals, and the recovery barrier
    // truncates every journal back to the pre-change state.
    const Status gate = Failpoints::Instance().Hit(fp::kShardedCommitShard);
    if (!gate.ok()) {
      if (i > 0) poisoned_ = true;
      return gate;
    }
    touched[i] = !prepared[i].affected.empty();
    const uint64_t base = prepared[i].base_version;
    std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
    Result<ChangeReport> r =
        shards_[i]->system.CommitPrepared(std::move(prepared[i]));
    if (!r.ok()) {
      // Deferred (response-lost) errors commit before surfacing; check
      // the tip to tell them from a genuine pre-commit failure.
      const bool committed = shards_[i]->system.current_version() > base;
      if (committed || i > 0) poisoned_ = true;
      return r.status();
    }
    per_shard[i] = r.MoveValue();
  }
  for (size_t i = 0; i < n; ++i) {
    if (touched[i]) ++shards_[i]->commits;
  }
  Result<ChangeReport> merged = MergeReports(per_shard);
  if (!merged.ok()) poisoned_ = true;
  return merged;
}

Result<ChangeReport> ShardedEveSystem::ApplyChange(
    const CapabilityChange& change) {
  EVE_ASSIGN_OR_RETURN(ChangeReport report, ApplyChangeNoPublish(change));
  // Crash here: every shard journaled the change, so recovery replays to
  // the post state — only the (rebuildable) published pointer is lost. An
  // injected error is deferred past the publish: response lost, state
  // committed.
  const Status publish_hit = Failpoints::Instance().Hit(fp::kShardedPublish);
  PublishSnapshot();
  if (!publish_hit.ok()) return publish_hit;
  return report;
}

Result<std::vector<ChangeReport>> ShardedEveSystem::ApplyChanges(
    const std::vector<CapabilityChange>& changes) {
  if (poisoned_) return PoisonedError();
  const size_t n = shards_.size();
  // Snapshot every shard for the all-shards rollback (COW version chains
  // make the copies cheap relative to a CVS run).
  std::vector<EveSystem> snapshots;
  snapshots.reserve(n);
  std::vector<uint64_t> commit_counts(n);
  for (size_t i = 0; i < n; ++i) {
    snapshots.push_back(shards_[i]->system);
    commit_counts[i] = shards_[i]->commits;
  }
  for (auto& shard : shards_) {
    EVE_RETURN_IF_ERROR(
        shard->system.JournalAppend({JournalRecordKind::kBeginBatch, ""}));
  }
  const auto rollback = [&] {
    for (size_t i = 0; i < n; ++i) {
      std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
      shards_[i]->system = std::move(snapshots[i]);
      shards_[i]->commits = commit_counts[i];
    }
    poisoned_ = false;  // the rollback restored converged replicas
  };
  const auto abort = [&](const Status& cause) -> Status {
    rollback();
    for (auto& shard : shards_) {
      EVE_RETURN_IF_ERROR(
          shard->system.JournalAppend({JournalRecordKind::kAbortBatch, ""}));
    }
    PublishSnapshot();
    return cause;
  };
  std::vector<ChangeReport> reports;
  reports.reserve(changes.size());
  for (const CapabilityChange& change : changes) {
    Status injected = Status::OK();
    if (!reports.empty()) {
      injected = Failpoints::Instance().Hit(fp::kApplyChangesMidBatch);
    }
    Result<ChangeReport> report = injected.ok()
                                      ? ApplyChangeNoPublish(change)
                                      : Result<ChangeReport>(injected);
    if (!report.ok()) {
      return abort(Status(report.status().code(),
                          "batch aborted at '" + change.ToString() +
                              "': " + report.status().message()));
    }
    reports.push_back(report.MoveValue());
  }
  for (auto& shard : shards_) {
    const Status committed =
        shard->system.JournalAppend({JournalRecordKind::kCommitBatch, ""});
    if (!committed.ok()) {
      // Some journals may already carry their commit marker: those shards
      // would replay the batch, the others would discard it. Replay can
      // no longer be trusted to converge — poison until recovery (whose
      // barrier counts the batch complete only on marker-bearing shards
      // and truncates to the minimum).
      rollback();
      poisoned_ = true;
      return committed;
    }
  }
  PublishSnapshot();
  return reports;
}

Status ShardedEveSystem::EnqueueChange(const CapabilityChange& change) {
  // Whole admission decision under one lock: concurrent submitters each
  // see a consistent submitted/shed/queued_now triple.
  std::lock_guard<std::mutex> lock(*admission_mu_);
  ++admission_stats_.submitted;
  const Status injected = Failpoints::Instance().Hit(fp::kAdmissionEnqueue);
  if (!injected.ok()) {
    ++admission_stats_.shed;
    return injected;
  }
  if (sync_queue_limit_ != 0 && sync_queue_.size() >= sync_queue_limit_) {
    ++admission_stats_.shed;
    return Status::ResourceExhausted(
        "sync queue full (limit " + std::to_string(sync_queue_limit_) +
        "): change shed — drain the queue or raise the limit");
  }
  sync_queue_.push_back(change);
  admission_stats_.queued_now = sync_queue_.size();
  return Status::OK();
}

Result<std::vector<ChangeReport>> ShardedEveSystem::DrainSyncQueue() {
  // Peek under admission_mu_, apply outside it, pop + account afterwards:
  // the in-flight change stays counted as queued until its outcome lands,
  // so submitted == completed + shed + queued_now at every instant an
  // observer can sample. drain_mu_ keeps the front stable across the
  // unlocked apply (only the serialized drainer pops).
  std::lock_guard<std::mutex> drain_lock(*drain_mu_);
  std::vector<ChangeReport> reports;
  while (true) {
    CapabilityChange change;
    {
      std::lock_guard<std::mutex> lock(*admission_mu_);
      if (sync_queue_.empty()) break;
      const Status injected = Failpoints::Instance().Hit(fp::kAdmissionDrain);
      if (!injected.ok()) {
        admission_stats_.queued_now = sync_queue_.size();
        return injected;
      }
      change = sync_queue_.front();
    }
    Result<ChangeReport> report = ApplyChange(change);
    {
      std::lock_guard<std::mutex> lock(*admission_mu_);
      sync_queue_.pop_front();
      ++admission_stats_.completed;
      if (!report.ok()) ++admission_stats_.failed;
      admission_stats_.queued_now = sync_queue_.size();
    }
    if (!report.ok()) return report.status();
    reports.push_back(report.MoveValue());
  }
  return reports;
}

Result<std::vector<ChangeReport>> ShardedEveSystem::DrainSyncQueueParallel() {
  if (poisoned_) return PoisonedError();
  const size_t n = shards_.size();
  if (n <= 1) return DrainSyncQueue();
  // Serialize against other drains, then snapshot the stream. Changes
  // admitted after the snapshot stay queued for the next drain; the
  // snapshot itself stays counted as queued until the accounting below.
  std::lock_guard<std::mutex> drain_lock(*drain_mu_);
  std::vector<CapabilityChange> stream;
  {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    stream.assign(sync_queue_.begin(), sync_queue_.end());
  }
  const size_t m = stream.size();
  if (m == 0) return std::vector<ChangeReport>{};

  // One worker per shard, each applying the SAME change stream in order to
  // its own shard: all order-dependent state is per-shard, so per-shard
  // reports (and their merge) are byte-identical to the sequential drain.
  // slots[s][k] is written only by shard s's worker — no sharing.
  std::vector<std::vector<ChangeReport>> slots(
      n, std::vector<ChangeReport>(m));
  std::vector<std::vector<char>> touched(n, std::vector<char>(m, 0));
  // First change index that must not commit anywhere. Prepare failures are
  // deterministic across replicas (every shard fails the same change), so
  // no shard can commit a change another shard refuses.
  std::atomic<size_t> stop_at{m};
  std::mutex error_mu;
  Status first_error = Status::OK();
  size_t error_at = m;
  const auto record_error = [&](size_t k, const Status& status) {
    size_t expected = stop_at.load(std::memory_order_acquire);
    while (k < expected && !stop_at.compare_exchange_weak(
                               expected, k, std::memory_order_acq_rel)) {
    }
    std::lock_guard<std::mutex> lock(error_mu);
    if (k < error_at) {
      error_at = k;
      first_error = status;
    }
  };
  std::vector<std::exception_ptr> crashes(n);
  std::vector<char> poisons(n, 0);
  ThreadPool drain_pool(n - 1);
  ParallelFor(&drain_pool, n, [&](size_t s) {
    try {
      for (size_t k = 0; k < m; ++k) {
        if (k >= stop_at.load(std::memory_order_acquire)) break;
        if (s == 0) {
          // Admission failpoint parity with the sequential drain: one hit
          // per change, on the shard-0 worker.
          const Status injected =
              Failpoints::Instance().Hit(fp::kAdmissionDrain);
          if (!injected.ok()) {
            record_error(k, injected);
            break;
          }
        }
        Result<EveSystem::PreparedChange> p =
            shards_[s]->system.PrepareChange(stream[k]);
        if (!p.ok()) {
          record_error(k, p.status());
          break;
        }
        if (k >= stop_at.load(std::memory_order_acquire)) break;
        EveSystem::PreparedChange prep = p.MoveValue();
        touched[s][k] = prep.affected.empty() ? 0 : 1;
        std::unique_lock<std::shared_mutex> lock(shards_[s]->mu);
        Result<ChangeReport> r =
            shards_[s]->system.CommitPrepared(std::move(prep));
        if (!r.ok()) {
          // A commit-phase failure is shard-local (journal I/O): other
          // shards may commit this change — divergence until recovery.
          poisons[s] = 1;
          record_error(k, r.status());
          break;
        }
        slots[s][k] = r.MoveValue();
      }
    } catch (...) {
      // Simulated crash: park and rethrow on the caller (lowest shard
      // first) once every worker has drained, like the sync fan-out.
      crashes[s] = std::current_exception();
    }
  });
  for (std::exception_ptr& crash : crashes) {
    if (crash != nullptr) std::rethrow_exception(crash);
  }
  for (size_t s = 0; s < n; ++s) {
    if (poisons[s] != 0) poisoned_ = true;
  }

  const size_t applied = stop_at.load(std::memory_order_acquire);
  std::vector<ChangeReport> merged;
  merged.reserve(applied);
  Status merge_failure = Status::OK();
  for (size_t k = 0; k < applied; ++k) {
    std::vector<ChangeReport> per_shard;
    per_shard.reserve(n);
    for (size_t s = 0; s < n; ++s) per_shard.push_back(std::move(slots[s][k]));
    Result<ChangeReport> one = MergeReports(per_shard);
    if (!one.ok()) {
      poisoned_ = true;
      merge_failure = one.status();
      break;
    }
    merged.push_back(one.MoveValue());
    for (size_t s = 0; s < n; ++s) {
      if (touched[s][k] != 0) ++shards_[s]->commits;
    }
  }
  // Sequential-drain accounting: applied changes completed; a failing
  // change is consumed (completed + failed); the rest stays queued.
  const bool failed = error_at < m;
  const size_t consumed = std::min(m, applied + (failed ? 1 : 0));
  {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    for (size_t k = 0; k < consumed; ++k) sync_queue_.pop_front();
    admission_stats_.completed += consumed;
    if (failed) ++admission_stats_.failed;
    admission_stats_.queued_now = sync_queue_.size();
  }
  PublishSnapshot();
  if (!merge_failure.ok()) return merge_failure;
  if (failed) return first_error;
  return merged;
}

std::vector<ShardStatsRow> ShardedEveSystem::Stats() const {
  // Snapshot the queue once so shard locks are never held while touching
  // admission state (and vice versa).
  std::vector<CapabilityChange> queued;
  {
    std::lock_guard<std::mutex> lock(*admission_mu_);
    queued.assign(sync_queue_.begin(), sync_queue_.end());
  }
  std::vector<ShardStatsRow> rows;
  rows.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStatsRow row;
    row.shard = i;
    std::shared_lock<std::shared_mutex> lock(shards_[i]->mu);
    row.views = shards_[i]->system.NumViews();
    row.active_views = shards_[i]->system.NumActiveViews();
    row.commits = shards_[i]->commits;
    row.last_synced_version = shards_[i]->system.current_version();
    for (const CapabilityChange& change : queued) {
      if (!shards_[i]->system.AffectedViews(change).empty()) {
        ++row.queue_depth;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

std::string ShardedEveSystem::RenderShardStats() const {
  std::ostringstream os;
  for (const ShardStatsRow& row : Stats()) {
    os << "shard " << row.shard << ": views " << row.views << " ("
       << row.active_views << " active), commits " << row.commits
       << ", queue " << row.queue_depth << ", version "
       << row.last_synced_version << "\n";
  }
  return os.str();
}

Status ShardedEveSystem::AttachJournals(const std::string& wal_base) {
  if (wal_base.empty()) {
    return Status::InvalidArgument("journal base path must be non-empty");
  }
  if (journals_attached()) {
    return Status::FailedPrecondition("journals already attached");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Result<Journal> opened = Journal::Open(ShardJournalPath(wal_base, i));
    if (!opened.ok()) {
      DetachJournals();
      return opened.status();
    }
    shards_[i]->journal = std::make_unique<Journal>(opened.MoveValue());
    shards_[i]->system.AttachJournal(shards_[i]->journal.get());
  }
  wal_base_ = wal_base;
  return Status::OK();
}

void ShardedEveSystem::DetachJournals() {
  for (auto& shard : shards_) {
    shard->system.AttachJournal(nullptr);
    shard->journal.reset();
  }
  wal_base_.clear();
}

Status ShardedEveSystem::WriteShardedCheckpoint(const std::string& ckpt_base) {
  if (poisoned_) return PoisonedError();
  const uint64_t generation = checkpoint_generation_ + 1;
  // 1. Section files for the NEW generation — old-generation files and the
  // manifest are untouched, so a crash anywhere in this loop is invisible.
  for (size_t i = 0; i < shards_.size(); ++i) {
    EVE_RETURN_IF_ERROR(
        AtomicWriteFile(ShardCheckpointPath(ckpt_base, i, generation),
                        RenderCheckpoint(shards_[i]->system)));
  }
  // 2. The manifest rename is the commit point of the whole checkpoint.
  EVE_FAILPOINT(fp::kShardedCheckpointManifest);
  EVE_RETURN_IF_ERROR(AtomicWriteFile(
      ckpt_base + ".manifest",
      RenderManifest(shards_.size(), generation)));
  checkpoint_generation_ = generation;
  // 3. Reset each journal and stamp the new generation. A crash mid-loop
  // leaves later journals stale (no epoch marker for this generation);
  // recovery detects that and treats their records as subsumed.
  for (size_t i = 0; i < shards_.size(); ++i) {
    EVE_FAILPOINT(fp::kShardedJournalReset);
    if (shards_[i]->journal != nullptr) {
      EVE_RETURN_IF_ERROR(shards_[i]->journal->Reset());
      EVE_RETURN_IF_ERROR(shards_[i]->journal->Append(
          JournalRecordKind::kJournalEpoch, std::to_string(generation)));
    }
  }
  // 4. Best-effort cleanup of the superseded generation's section files.
  if (generation > 1) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::remove(
          ShardCheckpointPath(ckpt_base, i, generation - 1).c_str());
    }
  }
  return Status::OK();
}

Status ShardedEveSystem::CheckReplicaConvergence() const {
  const std::string reference = SaveMkb(shards_[0]->system.mkb());
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (SaveMkb(shards_[i]->system.mkb()) != reference) {
      return Status::Internal(
          "shard replica divergence: shard " + std::to_string(i) +
          "'s MKB does not re-render to shard 0's");
    }
  }
  return Status::OK();
}

Result<ShardedEveSystem> ShardedEveSystem::RecoverShardedFromFiles(
    const std::string& ckpt_base, const std::string& wal_base,
    RecoveryReport* report, bool parallel_replay) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;

  // The manifest names the shard count and committed checkpoint
  // generation; without one the system never checkpointed and the journals
  // alone (from genesis) are the durable state.
  size_t shard_count = 0;
  uint64_t generation = 0;
  const Result<std::string> manifest =
      ReadFileToString(ckpt_base + ".manifest");
  if (manifest.ok()) {
    EVE_RETURN_IF_ERROR(
        ParseManifest(manifest.value(), &shard_count, &generation));
  } else if (manifest.status().code() != StatusCode::kNotFound) {
    return manifest.status();
  } else {
    while (FileExists(ShardJournalPath(wal_base, shard_count))) {
      ++shard_count;
    }
    if (shard_count == 0) {
      return Status::InvalidArgument(
          "nothing to recover: no manifest at " + ckpt_base +
          ".manifest and no shard journals at " + wal_base + ".shard*");
    }
  }

  // Per-shard: checkpoint text + epoch-filtered journal records.
  std::vector<std::string> checkpoint_texts(shard_count);
  std::vector<std::vector<JournalRecord>> records(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (generation > 0) {
      EVE_ASSIGN_OR_RETURN(
          checkpoint_texts[i],
          ReadFileToString(ShardCheckpointPath(ckpt_base, i, generation)));
    }
    EVE_ASSIGN_OR_RETURN(JournalScan scan,
                         ReadJournal(ShardJournalPath(wal_base, i)));
    out.torn_tail = out.torn_tail || scan.torn_tail;
    out.torn_bytes += scan.dropped_bytes;
    bool stale = false;
    records[i] =
        FilterToEpoch(std::move(scan.records), generation, &stale);
    if (stale) {
      out.notes.push_back(
          "shard " + std::to_string(i) +
          ": journal predates checkpoint generation " +
          std::to_string(generation) + " — records subsumed");
    }
  }

  // Cross-shard barrier: truncate every journal to the longest prefix of
  // global units present on ALL shards, so the replicas replay to the
  // same point — the interrupted operation lands wholly before or wholly
  // after recovery, never mixed.
  size_t min_units = SIZE_MAX;
  for (const std::vector<JournalRecord>& shard_records : records) {
    min_units = std::min(min_units, CompletedGlobalUnits(shard_records));
  }
  for (size_t i = 0; i < shard_count; ++i) {
    const size_t keep = PrefixEndForUnits(records[i], min_units);
    if (keep < records[i].size()) {
      out.discarded += records[i].size() - keep;
      out.notes.push_back("shard " + std::to_string(i) + ": truncated " +
                          std::to_string(records[i].size() - keep) +
                          " record(s) past the cross-shard barrier");
      records[i].resize(keep);
    }
  }

  // Replay every shard — concurrently when asked (the shards share no
  // state), serially otherwise; both orders produce byte-identical shards.
  std::vector<std::optional<Result<EveSystem>>> recovered(shard_count);
  std::vector<RecoveryReport> shard_reports(shard_count);
  const auto replay_shard = [&](size_t i) {
    recovered[i].emplace(EveSystem::Recover(checkpoint_texts[i], records[i],
                                            &shard_reports[i]));
  };
  if (parallel_replay && shard_count > 1) {
    ThreadPool replay_pool(shard_count - 1);
    ParallelFor(&replay_pool, shard_count, replay_shard);
  } else {
    for (size_t i = 0; i < shard_count; ++i) replay_shard(i);
  }
  ShardedEveSystem system;
  system.shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    EVE_RETURN_IF_ERROR(recovered[i]->status());
    system.shards_.push_back(
        std::make_unique<Shard>(recovered[i]->MoveValue()));
    out.replayed += shard_reports[i].replayed;
    out.skipped += shard_reports[i].skipped;
    out.discarded += shard_reports[i].discarded;
    for (const std::string& note : shard_reports[i].notes) {
      out.notes.push_back("shard " + std::to_string(i) + ": " + note);
    }
  }
  system.checkpoint_generation_ = generation;
  EVE_RETURN_IF_ERROR(system.CheckReplicaConvergence());

  // Repair the journals on disk to exactly the replayed state (atomic
  // write-temp + rename per shard): barrier-truncated tails and stale
  // pre-checkpoint records are gone, and each journal re-carries its
  // generation marker so the next recovery filters identically.
  for (size_t i = 0; i < shard_count; ++i) {
    std::vector<JournalRecord> repaired;
    repaired.reserve(records[i].size() + 1);
    if (generation > 0) {
      repaired.push_back(JournalRecord{JournalRecordKind::kJournalEpoch,
                                       std::to_string(generation)});
    }
    repaired.insert(repaired.end(), records[i].begin(), records[i].end());
    EVE_RETURN_IF_ERROR(AtomicWriteFile(ShardJournalPath(wal_base, i),
                                        RenderJournalBytes(repaired)));
  }

  system.PublishSnapshot();
  return system;
}

}  // namespace eve
