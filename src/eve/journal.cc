#include "eve/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "eve/view_pool_io.h"
#include "federation/membership.h"
#include "mkb/serializer.h"
#include "mkb/version_store.h"

namespace eve {

namespace {

constexpr char kJournalMagic[] = "EVEJRNL1";
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 crc
// Journal records are short texts; anything larger than this is framing
// corruption, not a record.
constexpr uint32_t kMaxRecordSize = 64u << 20;

constexpr char kCheckpointHeader[] = "-- EVE CHECKPOINT v1";
constexpr char kSectionMkb[] = "-- SECTION MKB";
constexpr char kSectionViews[] = "-- SECTION VIEWS";
constexpr char kSectionChangeLog[] = "-- SECTION CHANGELOG";
// Optional (absent in pre-federation checkpoints): membership rows.
constexpr char kSectionFederation[] = "-- SECTION FEDERATION";
// Optional (absent in pre-versioning checkpoints): the serialized MKB
// version chain (MkbVersionStore::Serialize).
constexpr char kSectionVersions[] = "-- SECTION VERSIONS";
constexpr char kSectionEnd[] = "-- SECTION END";

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(std::string_view bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]))
             << 24;
}

bool IsKnownRecordKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(JournalRecordKind::kExtendMkb) &&
         kind <= static_cast<uint8_t>(JournalRecordKind::kJournalEpoch);
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot append to", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<Journal> Journal::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open journal", path);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    const Status status =
        WriteAll(fd, std::string_view(kJournalMagic, kMagicSize), path);
    if (!status.ok() || ::fsync(fd) != 0) {
      ::close(fd);
      return status.ok() ? Errno("cannot fsync journal", path) : status;
    }
  } else {
    // Validate the magic so we never append records to an arbitrary file.
    char magic[kMagicSize];
    const int read_fd = ::open(path.c_str(), O_RDONLY);
    const bool magic_ok =
        read_fd >= 0 &&
        ::read(read_fd, magic, kMagicSize) ==
            static_cast<ssize_t>(kMagicSize) &&
        std::memcmp(magic, kJournalMagic, kMagicSize) == 0;
    if (read_fd >= 0) ::close(read_fd);
    if (!magic_ok) {
      ::close(fd);
      return Status::ParseError("not a journal file: " + path);
    }
  }
  return Journal(path, fd);
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      observer_(std::move(other.observer_)) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    observer_ = std::move(other.observer_);
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Journal::Append(JournalRecordKind kind, std::string_view body) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  EVE_FAILPOINT(fp::kJournalAppendBeforeWrite);
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(kind));
  payload.append(body);
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  // The frame is written in two halves with a failpoint between them: a
  // crash there leaves a torn final record for recovery to detect and drop.
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  const size_t half = frame.size() / 2;
  const Status written = [&]() -> Status {
    EVE_RETURN_IF_ERROR(
        WriteAll(fd_, std::string_view(frame).substr(0, half), path_));
    EVE_FAILPOINT(fp::kJournalAppendPartialWrite);
    EVE_RETURN_IF_ERROR(
        WriteAll(fd_, std::string_view(frame).substr(half), path_));
    EVE_FAILPOINT(fp::kJournalAppendBeforeFsync);
    if (::fsync(fd_) != 0) return Errno("cannot fsync journal", path_);
    return Status::OK();
  }();
  if (!written.ok()) {
    // Reported failure (not a crash): drop whatever part of the frame made
    // it out, so a later append cannot bury a torn record mid-journal.
    if (start >= 0 && ::ftruncate(fd_, start) == 0) ::fsync(fd_);
    return written;
  }
  // The record is durable: let the replication tail ship it.
  if (observer_) observer_(kind, body);
  return Status::OK();
}

Status Journal::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  if (::ftruncate(fd_, static_cast<off_t>(kMagicSize)) != 0) {
    return Errno("cannot truncate journal", path_);
  }
  if (::fsync(fd_) != 0) return Errno("cannot fsync journal", path_);
  return Status::OK();
}

std::string RenderJournalBytes(const std::vector<JournalRecord>& records) {
  std::string out(kJournalMagic, kMagicSize);
  for (const JournalRecord& record : records) {
    std::string payload;
    payload.reserve(1 + record.body.size());
    payload.push_back(static_cast<char>(record.kind));
    payload.append(record.body);
    PutU32(&out, static_cast<uint32_t>(payload.size()));
    PutU32(&out, Crc32(payload));
    out.append(payload);
  }
  return out;
}

Result<JournalScan> ScanJournalBytes(std::string_view bytes) {
  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), kJournalMagic, kMagicSize) != 0) {
    return Status::ParseError("missing journal magic");
  }
  JournalScan scan;
  size_t pos = kMagicSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderSize) {
      scan.torn_tail = true;  // torn frame header
      break;
    }
    const uint32_t length = GetU32(bytes, pos);
    const uint32_t crc = GetU32(bytes, pos + 4);
    if (length == 0 || length > kMaxRecordSize ||
        length > bytes.size() - pos - kFrameHeaderSize) {
      scan.torn_tail = true;  // torn or corrupt payload length
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kFrameHeaderSize, length);
    if (Crc32(payload) != crc ||
        !IsKnownRecordKind(static_cast<uint8_t>(payload[0]))) {
      scan.torn_tail = true;  // corrupted record: stop at the valid prefix
      break;
    }
    scan.records.push_back(
        JournalRecord{static_cast<JournalRecordKind>(payload[0]),
                      std::string(payload.substr(1))});
    pos += kFrameHeaderSize + length;
  }
  if (scan.torn_tail) scan.dropped_bytes = bytes.size() - pos;
  return scan;
}

Result<JournalScan> ReadJournal(const std::string& path) {
  const Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return JournalScan{};
    return bytes.status();
  }
  return ScanJournalBytes(bytes.value());
}

std::string SaveFederation(const EveSystem& system) {
  std::ostringstream os;
  // std::map: name-sorted, so the section is deterministic.
  for (const auto& [source, membership] : system.source_membership()) {
    os << federation::SerializeMembership(source, membership) << "\n";
  }
  return os.str();
}

std::string RenderCheckpoint(const EveSystem& system) {
  std::ostringstream os;
  os << kCheckpointHeader << "\n";
  os << kSectionMkb << "\n" << SaveMkb(system.mkb());
  os << kSectionViews << "\n" << SaveViews(system);
  os << kSectionChangeLog << "\n";
  for (const ChangeReport& report : system.change_log()) {
    os << SerializeChange(report.change) << "\n";
  }
  os << kSectionFederation << "\n" << SaveFederation(system);
  os << kSectionVersions << "\n" << system.versions().Serialize();
  os << kSectionEnd << "\n";
  return os.str();
}

namespace {

// Finds marker line `marker` in `text` at a line start, returning the
// offset just past its newline, or npos.
size_t FindSection(std::string_view text, std::string_view marker,
                   size_t from, size_t* content_start) {
  size_t pos = from;
  while (pos <= text.size()) {
    const size_t hit = text.find(marker, pos);
    if (hit == std::string_view::npos) return std::string_view::npos;
    const bool at_line_start = hit == 0 || text[hit - 1] == '\n';
    const size_t line_end = text.find('\n', hit);
    if (at_line_start &&
        Trim(text.substr(hit, (line_end == std::string_view::npos
                                   ? text.size()
                                   : line_end) -
                                  hit)) == marker) {
      *content_start =
          line_end == std::string_view::npos ? text.size() : line_end + 1;
      return hit;
    }
    pos = hit + 1;
  }
  return std::string_view::npos;
}

}  // namespace

Result<EveSystem> LoadCheckpoint(std::string_view text) {
  EVE_FAILPOINT(fp::kCheckpointLoadValidate);
  if (Trim(text).empty()) return EveSystem(Mkb());  // bootstrap: no state yet
  if (!StartsWith(std::string(Trim(text.substr(0, text.find('\n')))),
                  kCheckpointHeader)) {
    return Status::ParseError("not an EVE checkpoint");
  }
  size_t mkb_start = 0, views_start = 0, log_start = 0, end_start = 0;
  const size_t mkb_at = FindSection(text, kSectionMkb, 0, &mkb_start);
  if (mkb_at == std::string_view::npos) {
    return Status::ParseError("checkpoint missing MKB section");
  }
  const size_t views_at =
      FindSection(text, kSectionViews, mkb_start, &views_start);
  if (views_at == std::string_view::npos) {
    return Status::ParseError("checkpoint missing VIEWS section");
  }
  const size_t log_at =
      FindSection(text, kSectionChangeLog, views_start, &log_start);
  if (log_at == std::string_view::npos) {
    return Status::ParseError("checkpoint missing CHANGELOG section");
  }
  // FEDERATION and VERSIONS are optional: older checkpoints go straight
  // from CHANGELOG to END.
  size_t federation_start = 0;
  const size_t federation_at =
      FindSection(text, kSectionFederation, log_start, &federation_start);
  const size_t versions_from =
      federation_at == std::string_view::npos ? log_start : federation_start;
  size_t versions_start = 0;
  const size_t versions_at =
      FindSection(text, kSectionVersions, versions_from, &versions_start);
  const size_t end_from =
      versions_at == std::string_view::npos ? versions_from : versions_start;
  const size_t end_at = FindSection(text, kSectionEnd, end_from, &end_start);
  if (end_at == std::string_view::npos) {
    return Status::ParseError(
        "checkpoint missing END section (torn checkpoint?)");
  }
  const size_t versions_end = end_at;
  const size_t federation_end =
      versions_at == std::string_view::npos ? end_at : versions_at;
  const size_t log_end =
      federation_at != std::string_view::npos
          ? federation_at
          : (versions_at != std::string_view::npos ? versions_at : end_at);

  EVE_ASSIGN_OR_RETURN(Mkb mkb,
                       LoadMkb(text.substr(mkb_start, views_at - mkb_start)));
  EveSystem system(std::move(mkb));
  EVE_RETURN_IF_ERROR(
      LoadViews(text.substr(views_start, log_at - views_start), &system));
  std::vector<ChangeReport> log;
  for (const std::string& line :
       Split(text.substr(log_start, log_end - log_start), '\n')) {
    if (Trim(line).empty()) continue;
    ChangeReport report;
    EVE_ASSIGN_OR_RETURN(report.change, ParseChange(line));
    log.push_back(std::move(report));
  }
  system.RestoreChangeLog(std::move(log));
  if (federation_at != std::string_view::npos) {
    std::map<std::string, federation::SourceMembership> table;
    for (const std::string& line :
         Split(text.substr(federation_start, federation_end - federation_start),
               '\n')) {
      if (Trim(line).empty()) continue;
      EVE_ASSIGN_OR_RETURN(const federation::NamedMembership named,
                           federation::ParseMembership(line));
      table[named.source] = named.membership;
    }
    system.RestoreSourceMembership(std::move(table));
  }
  if (versions_at != std::string_view::npos) {
    EVE_ASSIGN_OR_RETURN(
        MkbVersionStore store,
        MkbVersionStore::Deserialize(
            text.substr(versions_start, versions_end - versions_start)));
    EVE_RETURN_IF_ERROR(system.RestoreVersionStore(std::move(store)));
  }
  return system;
}

Status WriteCheckpoint(const EveSystem& system, const std::string& path) {
  return AtomicWriteFile(path, RenderCheckpoint(system));
}

void JournalReplayer::ApplyTolerant(EveSystem* system,
                                    const JournalRecord& record,
                                    RecoveryReport* report) {
  const Status status = system->ReplayRecord(record);
  if (report == nullptr) return;
  if (status.ok()) {
    ++report->replayed;
  } else {
    ++report->skipped;
    report->notes.push_back("skipped record: " + status.ToString());
  }
}

void JournalReplayer::Apply(EveSystem* system, const JournalRecord& record,
                            RecoveryReport* report) {
  switch (record.kind) {
    case JournalRecordKind::kBeginBatch:
      if (in_batch_) {
        if (report != nullptr) {
          report->discarded += batch_.size();
          report->notes.push_back("discarded unterminated batch");
        }
        batch_.clear();
      }
      in_batch_ = true;
      break;
    case JournalRecordKind::kCommitBatch:
      for (const JournalRecord& buffered : batch_) {
        ApplyTolerant(system, buffered, report);
      }
      batch_.clear();
      in_batch_ = false;
      break;
    case JournalRecordKind::kAbortBatch:
      if (report != nullptr) report->discarded += batch_.size();
      batch_.clear();
      in_batch_ = false;
      break;
    default:
      if (in_batch_) {
        batch_.push_back(record);
      } else {
        ApplyTolerant(system, record, report);
      }
      break;
  }
}

void JournalReplayer::Finish(RecoveryReport* report) {
  if (in_batch_) {
    // Crash (or stream loss) mid-batch: no commit marker, so the batch
    // never happened.
    if (report != nullptr) {
      report->discarded += batch_.size();
      report->notes.push_back("discarded uncommitted trailing batch");
    }
  }
  batch_.clear();
  in_batch_ = false;
}

Result<EveSystem> RecoverFromFiles(const std::string& checkpoint_path,
                                   const std::string& journal_path,
                                   RecoveryReport* report) {
  std::string checkpoint_text;
  const Result<std::string> read = ReadFileToString(checkpoint_path);
  if (read.ok()) {
    checkpoint_text = read.value();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }
  EVE_ASSIGN_OR_RETURN(const JournalScan scan, ReadJournal(journal_path));
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  out.torn_tail = scan.torn_tail;
  out.torn_bytes = scan.dropped_bytes;
  return EveSystem::Recover(checkpoint_text, scan.records, &out);
}

}  // namespace eve
