// Persistence for the registered view pool: E-SQL text with one
// "-- VIEW [state]" header per view, so an EveSystem can be rebuilt from
// (MISD text, views text) — the complete durable state of the paper's
// architecture.

#ifndef EVE_EVE_VIEW_POOL_IO_H_
#define EVE_EVE_VIEW_POOL_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "eve/eve_system.h"

namespace eve {

// Renders every registered view as
//   -- VIEW active|disabled
//   CREATE VIEW ... ;
// Disabled views are emitted too (their last definition), so a reload
// preserves the pool exactly.
std::string SaveViews(const EveSystem& system);

// Parses the SaveViews format and registers each view into `system`
// (definitions are re-bound against the system's current MKB). Views
// marked disabled are registered and then flagged disabled. Fails on the
// first view that no longer binds.
Status LoadViews(std::string_view text, EveSystem* system);

}  // namespace eve

#endif  // EVE_EVE_VIEW_POOL_IO_H_
