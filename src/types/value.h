// Value: the dynamically-typed scalar flowing through the relational
// evaluator. SQL three-valued NULL semantics are handled at comparison
// sites (see Compare below).

#ifndef EVE_TYPES_VALUE_H_
#define EVE_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/data_type.h"
#include "types/date.h"

namespace eve {

class Value {
 public:
  // NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value MakeDate(Date v) { return Value(Rep(v)); }

  DataType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  // Accessors abort on type mismatch (callers check type() first or rely on
  // typed plans).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  const Date& date_value() const { return std::get<Date>(rep_); }

  // Numeric view: int or double widened to double; error otherwise.
  Result<double> AsDouble() const;

  // Renders for display; strings are single-quoted, NULL prints as "NULL".
  std::string ToString() const;

  // Strict equality: same type and same value (NULL == NULL here; SQL
  // NULL semantics are applied by Compare / the evaluator, not here).
  bool operator==(const Value& other) const { return rep_ == other.rep_; }

  // Total order over same-kind values for sorting/dedup within a column:
  // NULL < bool < numeric < string < date.
  bool operator<(const Value& other) const;

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

enum class CompareResult {
  kLess,
  kEqual,
  kGreater,
  kNull,         // at least one operand is NULL (SQL: unknown)
  kIncomparable  // type mismatch (e.g. string vs int)
};

// SQL-style comparison with numeric widening; never aborts.
CompareResult Compare(const Value& a, const Value& b);

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace eve

#endif  // EVE_TYPES_VALUE_H_
