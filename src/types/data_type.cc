#include "types/data_type.h"

#include "common/str_util.h"

namespace eve {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "null") return DataType::kNull;
  if (lower == "bool" || lower == "boolean") return DataType::kBool;
  if (lower == "int" || lower == "integer") return DataType::kInt;
  if (lower == "double" || lower == "float" || lower == "real") {
    return DataType::kDouble;
  }
  if (lower == "string" || lower == "varchar" || lower == "text") {
    return DataType::kString;
  }
  if (lower == "date") return DataType::kDate;
  return Status::InvalidArgument("unknown data type name: " +
                                 std::string(name));
}

bool IsImplicitlyConvertible(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kNull) return true;  // NULL fits any column type
  return from == DataType::kInt && to == DataType::kDouble;
}

bool IsOrdered(DataType type) {
  switch (type) {
    case DataType::kInt:
    case DataType::kDouble:
    case DataType::kString:
    case DataType::kDate:
      return true;
    case DataType::kNull:
    case DataType::kBool:
      return false;
  }
  return false;
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt || type == DataType::kDouble;
}

}  // namespace eve
