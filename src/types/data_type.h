// Scalar data types used by MISD type-integrity constraints (Fig. 1 of the
// paper) and by the relational evaluator.

#ifndef EVE_TYPES_DATA_TYPE_H_
#define EVE_TYPES_DATA_TYPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace eve {

enum class DataType {
  kNull = 0,  // type of the SQL NULL literal only; not a column type
  kBool,
  kInt,
  kDouble,
  kString,
  kDate,
};

// "int", "double", "string", "date", "bool", "null".
std::string_view DataTypeToString(DataType type);

// Parses the names produced by DataTypeToString (case-insensitive).
Result<DataType> DataTypeFromString(std::string_view name);

// True if a value of `from` can be used where `to` is expected
// (exact match, or int widening to double).
bool IsImplicitlyConvertible(DataType from, DataType to);

// True for types with a total order usable in comparisons.
bool IsOrdered(DataType type);

// True for types usable in arithmetic (+ - * /).
bool IsNumeric(DataType type);

}  // namespace eve

#endif  // EVE_TYPES_DATA_TYPE_H_
