// Schema and Tuple: the row model for relation extents. Attribute names are
// unqualified here; qualification (IS.R.A) lives in catalog/.

#ifndef EVE_TYPES_SCHEMA_H_
#define EVE_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace eve {

struct AttributeDef {
  std::string name;
  DataType type = DataType::kString;

  bool operator==(const AttributeDef&) const = default;
};

// An ordered list of named, typed attributes with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  static Result<Schema> Create(std::vector<AttributeDef> attributes);

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  // Index of `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  // "(Name: string, Age: int)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

// A row of values positionally matching some Schema.
using Tuple = std::vector<Value>;

// Verifies arity and per-column type compatibility of `tuple` against
// `schema` (NULLs always allowed).
Status ValidateTuple(const Schema& schema, const Tuple& tuple);

// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

}  // namespace eve

#endif  // EVE_TYPES_SCHEMA_H_
