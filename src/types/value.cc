#include "types/value.h"

namespace eve {

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
    case 5:
      return DataType::kDate;
  }
  return DataType::kNull;
}

Result<double> Value::AsDouble() const {
  if (type() == DataType::kInt) return static_cast<double>(int_value());
  if (type() == DataType::kDouble) return double_value();
  return Status::TypeError("value is not numeric: " + ToString());
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt:
      return std::to_string(int_value());
    case DataType::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case DataType::kString:
      return "'" + string_value() + "'";
    case DataType::kDate:
      return date_value().ToString();
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  const CompareResult cmp = Compare(*this, other);
  if (cmp == CompareResult::kLess) return true;
  if (cmp == CompareResult::kEqual || cmp == CompareResult::kGreater) {
    return false;
  }
  // Fall back to ordering by variant kind, NULL first.
  return rep_.index() < other.rep_.index();
}

CompareResult Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return CompareResult::kNull;
  const DataType ta = a.type();
  const DataType tb = b.type();
  if (IsNumeric(ta) && IsNumeric(tb)) {
    const double da = ta == DataType::kInt
                          ? static_cast<double>(a.int_value())
                          : a.double_value();
    const double db = tb == DataType::kInt
                          ? static_cast<double>(b.int_value())
                          : b.double_value();
    if (da < db) return CompareResult::kLess;
    if (da > db) return CompareResult::kGreater;
    return CompareResult::kEqual;
  }
  if (ta != tb) return CompareResult::kIncomparable;
  switch (ta) {
    case DataType::kBool: {
      const int ia = a.bool_value() ? 1 : 0;
      const int ib = b.bool_value() ? 1 : 0;
      if (ia < ib) return CompareResult::kLess;
      if (ia > ib) return CompareResult::kGreater;
      return CompareResult::kEqual;
    }
    case DataType::kString: {
      const int cmp = a.string_value().compare(b.string_value());
      if (cmp < 0) return CompareResult::kLess;
      if (cmp > 0) return CompareResult::kGreater;
      return CompareResult::kEqual;
    }
    case DataType::kDate: {
      if (a.date_value() < b.date_value()) return CompareResult::kLess;
      if (b.date_value() < a.date_value()) return CompareResult::kGreater;
      return CompareResult::kEqual;
    }
    default:
      return CompareResult::kIncomparable;
  }
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace eve
