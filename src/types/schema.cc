#include "types/schema.h"

#include "common/str_util.h"

namespace eve {

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
  }
}

Result<Schema> Schema::Create(std::vector<AttributeDef> attributes) {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has an empty name");
    }
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (attributes[i].name == attributes[j].name) {
        return Status::AlreadyExists("duplicate attribute name: " +
                                     attributes[i].name);
      }
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const AttributeDef& attr : attributes_) {
    parts.push_back(attr.name + ": " +
                    std::string(DataTypeToString(attr.type)));
  }
  return "(" + Join(parts, ", ") + ")";
}

Status ValidateTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.size() != schema.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (!IsImplicitlyConvertible(tuple[i].type(),
                                 schema.attribute(i).type)) {
      return Status::TypeError(
          "value " + tuple[i].ToString() + " does not fit attribute " +
          schema.attribute(i).name + " of type " +
          std::string(DataTypeToString(schema.attribute(i).type)));
    }
  }
  return Status::OK();
}

std::string TupleToString(const Tuple& tuple) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (const Value& v : tuple) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace eve
