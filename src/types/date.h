// Calendar date stored as days since 1970-01-01 (proleptic Gregorian).
// Needed because MISD function-of constraints compute with dates, e.g. the
// paper's F3: Customer.Age = (today - Accident-Ins.Birthday) / 365.

#ifndef EVE_TYPES_DATE_H_
#define EVE_TYPES_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace eve {

class Date {
 public:
  Date() : days_since_epoch_(0) {}
  explicit Date(int64_t days_since_epoch)
      : days_since_epoch_(days_since_epoch) {}

  // Builds a Date from a calendar triple; rejects invalid dates
  // (e.g. 2001-02-30).
  static Result<Date> FromYmd(int year, int month, int day);

  // Parses "YYYY-MM-DD".
  static Result<Date> Parse(std::string_view text);

  int64_t days_since_epoch() const { return days_since_epoch_; }

  int year() const;
  int month() const;
  int day() const;

  // Formats as "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int64_t days) const {
    return Date(days_since_epoch_ + days);
  }

  bool operator==(const Date& other) const {
    return days_since_epoch_ == other.days_since_epoch_;
  }
  auto operator<=>(const Date& other) const {
    return days_since_epoch_ <=> other.days_since_epoch_;
  }

 private:
  int64_t days_since_epoch_;
};

}  // namespace eve

#endif  // EVE_TYPES_DATE_H_
