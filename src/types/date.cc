#include "types/date.h"

#include <cstdio>

namespace eve {

namespace {

// Civil-from-days / days-from-civil conversions, after Howard Hinnant's
// public-domain chrono algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yr + (*m <= 2));
}

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " +
                                   std::to_string(day));
  }
  return Date(DaysFromCivil(year, month, day));
}

Result<Date> Date::Parse(std::string_view text) {
  int y = 0;
  int m = 0;
  int d = 0;
  char tail = '\0';
  const std::string buf(text);
  if (std::sscanf(buf.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail) != 3) {
    return Status::ParseError("expected YYYY-MM-DD, got '" + buf + "'");
  }
  return FromYmd(y, m, d);
}

int Date::year() const {
  int y;
  unsigned m, d;
  CivilFromDays(days_since_epoch_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y;
  unsigned m, d;
  CivilFromDays(days_since_epoch_, &y, &m, &d);
  return static_cast<int>(m);
}

int Date::day() const {
  int y;
  unsigned m, d;
  CivilFromDays(days_since_epoch_, &y, &m, &d);
  return static_cast<int>(d);
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year(), month(), day());
  return buf;
}

}  // namespace eve
