# Empty compiler generated dependencies file for evectl.
# This may be replaced when dependencies are built.
