file(REMOVE_RECURSE
  "CMakeFiles/evectl.dir/evectl.cc.o"
  "CMakeFiles/evectl.dir/evectl.cc.o.d"
  "evectl"
  "evectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
