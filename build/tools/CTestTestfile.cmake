# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(evectl_demo "/root/repo/build/tools/evectl" "/root/repo/tools/demo.evectl")
set_tests_properties(evectl_demo PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
