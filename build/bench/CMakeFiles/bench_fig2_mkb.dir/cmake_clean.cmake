file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mkb.dir/bench_fig2_mkb.cc.o"
  "CMakeFiles/bench_fig2_mkb.dir/bench_fig2_mkb.cc.o.d"
  "bench_fig2_mkb"
  "bench_fig2_mkb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mkb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
