# Empty dependencies file for bench_cvs_vs_svs.
# This may be replaced when dependencies are built.
