file(REMOVE_RECURSE
  "CMakeFiles/bench_cvs_vs_svs.dir/bench_cvs_vs_svs.cc.o"
  "CMakeFiles/bench_cvs_vs_svs.dir/bench_cvs_vs_svs.cc.o.d"
  "bench_cvs_vs_svs"
  "bench_cvs_vs_svs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cvs_vs_svs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
