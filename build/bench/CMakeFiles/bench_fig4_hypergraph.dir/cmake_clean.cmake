file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hypergraph.dir/bench_fig4_hypergraph.cc.o"
  "CMakeFiles/bench_fig4_hypergraph.dir/bench_fig4_hypergraph.cc.o.d"
  "bench_fig4_hypergraph"
  "bench_fig4_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
