# Empty dependencies file for bench_fig4_hypergraph.
# This may be replaced when dependencies are built.
