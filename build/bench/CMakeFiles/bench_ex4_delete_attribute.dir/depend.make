# Empty dependencies file for bench_ex4_delete_attribute.
# This may be replaced when dependencies are built.
