file(REMOVE_RECURSE
  "CMakeFiles/bench_ex4_delete_attribute.dir/bench_ex4_delete_attribute.cc.o"
  "CMakeFiles/bench_ex4_delete_attribute.dir/bench_ex4_delete_attribute.cc.o.d"
  "bench_ex4_delete_attribute"
  "bench_ex4_delete_attribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex4_delete_attribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
