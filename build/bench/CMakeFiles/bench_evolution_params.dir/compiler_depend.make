# Empty compiler generated dependencies file for bench_evolution_params.
# This may be replaced when dependencies are built.
