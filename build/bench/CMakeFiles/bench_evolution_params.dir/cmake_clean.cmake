file(REMOVE_RECURSE
  "CMakeFiles/bench_evolution_params.dir/bench_evolution_params.cc.o"
  "CMakeFiles/bench_evolution_params.dir/bench_evolution_params.cc.o.d"
  "bench_evolution_params"
  "bench_evolution_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evolution_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
