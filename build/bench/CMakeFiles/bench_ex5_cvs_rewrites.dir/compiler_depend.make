# Empty compiler generated dependencies file for bench_ex5_cvs_rewrites.
# This may be replaced when dependencies are built.
