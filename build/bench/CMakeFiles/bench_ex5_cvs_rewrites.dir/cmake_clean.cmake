file(REMOVE_RECURSE
  "CMakeFiles/bench_ex5_cvs_rewrites.dir/bench_ex5_cvs_rewrites.cc.o"
  "CMakeFiles/bench_ex5_cvs_rewrites.dir/bench_ex5_cvs_rewrites.cc.o.d"
  "bench_ex5_cvs_rewrites"
  "bench_ex5_cvs_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex5_cvs_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
