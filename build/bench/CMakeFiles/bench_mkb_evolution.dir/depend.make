# Empty dependencies file for bench_mkb_evolution.
# This may be replaced when dependencies are built.
