file(REMOVE_RECURSE
  "CMakeFiles/bench_mkb_evolution.dir/bench_mkb_evolution.cc.o"
  "CMakeFiles/bench_mkb_evolution.dir/bench_mkb_evolution.cc.o.d"
  "bench_mkb_evolution"
  "bench_mkb_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mkb_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
