
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_journal.cc" "bench/CMakeFiles/bench_journal.dir/bench_journal.cc.o" "gcc" "bench/CMakeFiles/bench_journal.dir/bench_journal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eve/CMakeFiles/eve_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eve_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cvs/CMakeFiles/eve_cvs.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/eve_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/mkb/CMakeFiles/eve_mkb.dir/DependInfo.cmake"
  "/root/repo/build/src/esql/CMakeFiles/eve_esql.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/eve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eve_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eve_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eve_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
