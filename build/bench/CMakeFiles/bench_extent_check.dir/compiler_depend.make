# Empty compiler generated dependencies file for bench_extent_check.
# This may be replaced when dependencies are built.
