file(REMOVE_RECURSE
  "CMakeFiles/bench_extent_check.dir/bench_extent_check.cc.o"
  "CMakeFiles/bench_extent_check.dir/bench_extent_check.cc.o.d"
  "bench_extent_check"
  "bench_extent_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extent_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
