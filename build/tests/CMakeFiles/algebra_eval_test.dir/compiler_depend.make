# Empty compiler generated dependencies file for algebra_eval_test.
# This may be replaced when dependencies are built.
