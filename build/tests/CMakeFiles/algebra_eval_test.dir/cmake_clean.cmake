file(REMOVE_RECURSE
  "CMakeFiles/algebra_eval_test.dir/algebra_eval_test.cc.o"
  "CMakeFiles/algebra_eval_test.dir/algebra_eval_test.cc.o.d"
  "algebra_eval_test"
  "algebra_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
