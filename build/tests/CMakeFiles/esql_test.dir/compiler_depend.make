# Empty compiler generated dependencies file for esql_test.
# This may be replaced when dependencies are built.
