file(REMOVE_RECURSE
  "CMakeFiles/esql_test.dir/esql_test.cc.o"
  "CMakeFiles/esql_test.dir/esql_test.cc.o.d"
  "esql_test"
  "esql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
