# Empty dependencies file for mkb_evolution_test.
# This may be replaced when dependencies are built.
