file(REMOVE_RECURSE
  "CMakeFiles/mkb_evolution_test.dir/mkb_evolution_test.cc.o"
  "CMakeFiles/mkb_evolution_test.dir/mkb_evolution_test.cc.o.d"
  "mkb_evolution_test"
  "mkb_evolution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkb_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
