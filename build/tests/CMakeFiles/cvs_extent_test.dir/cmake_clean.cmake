file(REMOVE_RECURSE
  "CMakeFiles/cvs_extent_test.dir/cvs_extent_test.cc.o"
  "CMakeFiles/cvs_extent_test.dir/cvs_extent_test.cc.o.d"
  "cvs_extent_test"
  "cvs_extent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_extent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
