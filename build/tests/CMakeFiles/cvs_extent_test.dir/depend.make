# Empty dependencies file for cvs_extent_test.
# This may be replaced when dependencies are built.
