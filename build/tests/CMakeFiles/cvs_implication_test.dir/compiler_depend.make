# Empty compiler generated dependencies file for cvs_implication_test.
# This may be replaced when dependencies are built.
