file(REMOVE_RECURSE
  "CMakeFiles/cvs_implication_test.dir/cvs_implication_test.cc.o"
  "CMakeFiles/cvs_implication_test.dir/cvs_implication_test.cc.o.d"
  "cvs_implication_test"
  "cvs_implication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_implication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
