file(REMOVE_RECURSE
  "CMakeFiles/mkb_serializer_test.dir/mkb_serializer_test.cc.o"
  "CMakeFiles/mkb_serializer_test.dir/mkb_serializer_test.cc.o.d"
  "mkb_serializer_test"
  "mkb_serializer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkb_serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
