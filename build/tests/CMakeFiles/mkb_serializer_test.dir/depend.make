# Empty dependencies file for mkb_serializer_test.
# This may be replaced when dependencies are built.
