file(REMOVE_RECURSE
  "CMakeFiles/algebra_expr_test.dir/algebra_expr_test.cc.o"
  "CMakeFiles/algebra_expr_test.dir/algebra_expr_test.cc.o.d"
  "algebra_expr_test"
  "algebra_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
