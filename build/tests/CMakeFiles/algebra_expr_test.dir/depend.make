# Empty dependencies file for algebra_expr_test.
# This may be replaced when dependencies are built.
