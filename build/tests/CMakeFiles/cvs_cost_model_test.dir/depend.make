# Empty dependencies file for cvs_cost_model_test.
# This may be replaced when dependencies are built.
