file(REMOVE_RECURSE
  "CMakeFiles/cvs_cost_model_test.dir/cvs_cost_model_test.cc.o"
  "CMakeFiles/cvs_cost_model_test.dir/cvs_cost_model_test.cc.o.d"
  "cvs_cost_model_test"
  "cvs_cost_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
