# Empty dependencies file for view_pool_io_test.
# This may be replaced when dependencies are built.
