file(REMOVE_RECURSE
  "CMakeFiles/view_pool_io_test.dir/view_pool_io_test.cc.o"
  "CMakeFiles/view_pool_io_test.dir/view_pool_io_test.cc.o.d"
  "view_pool_io_test"
  "view_pool_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_pool_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
