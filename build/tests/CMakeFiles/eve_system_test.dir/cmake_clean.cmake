file(REMOVE_RECURSE
  "CMakeFiles/eve_system_test.dir/eve_system_test.cc.o"
  "CMakeFiles/eve_system_test.dir/eve_system_test.cc.o.d"
  "eve_system_test"
  "eve_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
