# Empty dependencies file for eve_system_test.
# This may be replaced when dependencies are built.
