file(REMOVE_RECURSE
  "CMakeFiles/cvs_rewriting_test.dir/cvs_rewriting_test.cc.o"
  "CMakeFiles/cvs_rewriting_test.dir/cvs_rewriting_test.cc.o.d"
  "cvs_rewriting_test"
  "cvs_rewriting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_rewriting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
