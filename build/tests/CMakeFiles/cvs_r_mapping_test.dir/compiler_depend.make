# Empty compiler generated dependencies file for cvs_r_mapping_test.
# This may be replaced when dependencies are built.
