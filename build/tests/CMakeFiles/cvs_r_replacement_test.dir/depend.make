# Empty dependencies file for cvs_r_replacement_test.
# This may be replaced when dependencies are built.
