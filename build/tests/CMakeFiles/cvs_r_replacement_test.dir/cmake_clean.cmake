file(REMOVE_RECURSE
  "CMakeFiles/cvs_r_replacement_test.dir/cvs_r_replacement_test.cc.o"
  "CMakeFiles/cvs_r_replacement_test.dir/cvs_r_replacement_test.cc.o.d"
  "cvs_r_replacement_test"
  "cvs_r_replacement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_r_replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
