# Empty compiler generated dependencies file for cvs_explain_test.
# This may be replaced when dependencies are built.
