file(REMOVE_RECURSE
  "CMakeFiles/cvs_explain_test.dir/cvs_explain_test.cc.o"
  "CMakeFiles/cvs_explain_test.dir/cvs_explain_test.cc.o.d"
  "cvs_explain_test"
  "cvs_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
