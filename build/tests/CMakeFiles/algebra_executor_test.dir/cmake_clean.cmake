file(REMOVE_RECURSE
  "CMakeFiles/algebra_executor_test.dir/algebra_executor_test.cc.o"
  "CMakeFiles/algebra_executor_test.dir/algebra_executor_test.cc.o.d"
  "algebra_executor_test"
  "algebra_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
