# Empty compiler generated dependencies file for algebra_executor_test.
# This may be replaced when dependencies are built.
