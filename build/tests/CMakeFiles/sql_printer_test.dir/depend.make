# Empty dependencies file for sql_printer_test.
# This may be replaced when dependencies are built.
