file(REMOVE_RECURSE
  "CMakeFiles/cvs_legality_test.dir/cvs_legality_test.cc.o"
  "CMakeFiles/cvs_legality_test.dir/cvs_legality_test.cc.o.d"
  "cvs_legality_test"
  "cvs_legality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_legality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
