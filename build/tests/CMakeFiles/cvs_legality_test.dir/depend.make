# Empty dependencies file for cvs_legality_test.
# This may be replaced when dependencies are built.
